# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-fast test-all bench bench-quick examples clean

install:
	$(PYTHON) setup.py develop

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -q

test:
	$(PYTHON) -m pytest tests/ -q

test-all: test

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_QUICK=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	REPRO_QUICK=1 $(PYTHON) examples/quickstart.py
	REPRO_QUICK=1 $(PYTHON) examples/membership_partition.py
	REPRO_QUICK=1 $(PYTHON) examples/fme_in_action.py
	REPRO_QUICK=1 $(PYTHON) examples/bookstore_failover.py
	REPRO_QUICK=1 $(PYTHON) examples/auction_read_write.py

clean:
	rm -rf .pytest_cache .benchmarks results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
