# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-fast test-all lint docs-check perflint sanitize racecheck bench bench-quick bench-kernel reproduce reproduce-quick examples clean

install:
	$(PYTHON) setup.py develop

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -q

test:
	$(PYTHON) -m pytest tests/ -q

test-all: test

# Static analysis: reprolint always runs (stdlib-only); ruff and mypy run
# when installed (`pip install -e .[lint]`) and are skipped otherwise so
# the target works in a bare checkout.
lint:
	$(PYTHON) -m repro lint src/repro --strict
	$(PYTHON) -m repro lint src/repro --flow \
		--callgraph-out results/callgraph.json
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src tests \
		|| echo "ruff not installed; skipping (pip install -e .[lint])"
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "mypy not installed; skipping (pip install -e .[lint])"

# Docs cross-reference gate: every file path, CLI subcommand, make
# target, BENCH_* document, and rule id referenced in README.md /
# ARTIFACTS.md / docs/*.md must exist.
docs-check:
	$(PYTHON) -m repro lint --docs

# Hot-path cost analysis: kernel hot set + REP017-021 (allocation,
# __slots__, telemetry formatting, attribute reloads, linear scans),
# with the static hot set cross-checked against dynamic TimingProfiler
# attribution (--validate runs the steady bench scenario once).
perflint:
	$(PYTHON) -m repro lint src/repro --perf --strict \
		--format json --out results/reprolint-perf.json
	$(PYTHON) -m repro lint src/repro --validate

# Runtime determinism check: the same quick campaign under two
# PYTHONHASHSEED values must produce identical trace digests.
sanitize:
	$(PYTHON) -m repro sanitize --seed 7

# Race detector: static shared-state effect analysis (REP014/REP015)
# plus the schedule-perturbation sanitizer — the same quick campaign
# re-run with seeded randomized same-instant tie-break must keep its
# trace, metrics (within float tolerance), and stage timeline.
racecheck:
	$(PYTHON) -m repro racecheck --out results/racecheck.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_QUICK=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Kernel speed + observability overhead vs the committed baseline,
# then the provenance-stamped trajectory (benchmarks/TREND.jsonl).
bench-kernel:
	$(PYTHON) -m repro bench --gate --out results/BENCH_kernel.json
	$(PYTHON) -m repro bench --trend

# One-command artifact regeneration: every registered artifact (paper
# figures/tables, BENCH_* documents, analysis reports) is rebuilt into
# results/reproduce/ with a SHA-256 + provenance manifest
# (results/MANIFEST.json) and diffed against the committed baselines.
# See ARTIFACTS.md for the registry.
reproduce:
	$(PYTHON) -m repro reproduce-all --check

reproduce-quick:
	$(PYTHON) -m repro reproduce-all --quick --check

examples:
	REPRO_QUICK=1 $(PYTHON) examples/quickstart.py
	REPRO_QUICK=1 $(PYTHON) examples/membership_partition.py
	REPRO_QUICK=1 $(PYTHON) examples/fme_in_action.py
	REPRO_QUICK=1 $(PYTHON) examples/bookstore_failover.py
	REPRO_QUICK=1 $(PYTHON) examples/auction_read_write.py

clean:
	rm -rf .pytest_cache .benchmarks results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
