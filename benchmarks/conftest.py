"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper and prints the
rows it reports.  The experiments are long (minutes, not microseconds),
so every benchmark uses ``benchmark.pedantic`` with a single round —
pytest-benchmark then reports the wall time of regenerating the artifact.

Set ``REPRO_QUICK=1`` for shorter campaign windows (smoke mode: shapes
are coarser but every pipeline still runs end to end).

A single :class:`~repro.experiments.figures.Evaluation` cache is shared
across the whole benchmark session so that versions quantified for one
figure are reused by the others.
"""

from __future__ import annotations

import pytest

from repro.core.quantify import QuantifyConfig
from repro.experiments.figures import Evaluation

_EVALUATION = None


@pytest.fixture(scope="session")
def evaluation() -> Evaluation:
    global _EVALUATION
    if _EVALUATION is None:
        _EVALUATION = Evaluation(QuantifyConfig.from_env())
    return _EVALUATION


def run_figure(benchmark, fig_fn, evaluation, **kwargs):
    """Run a figure exactly once under the benchmark timer, print it, and
    persist it under results/."""
    result = benchmark.pedantic(
        lambda: fig_fn(evaluation, **kwargs) if kwargs else fig_fn(evaluation),
        rounds=1, iterations=1,
    )
    print()
    print(result)
    from pathlib import Path

    from repro.experiments.artifacts import write_figure

    write_figure(result, Path(__file__).resolve().parent.parent / "results")
    return result
