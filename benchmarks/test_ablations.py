"""Ablations over the design choices DESIGN.md calls out.

These do not reproduce a specific figure; they quantify the sensitivity
of the reproduced results to the paper's parameter choices (heartbeat
period, queue-monitoring thresholds, operator response time, Mon
detection mode, cache size).  Each runs a small set of single-fault
experiments with the knob varied.
"""

from dataclasses import replace

import pytest

from repro.core.model import EnvironmentParams
from repro.core.quantify import QuantifyConfig, quantify_version, run_single_fault
from repro.core.template import TemplateFitter
from repro.experiments.configs import version
from repro.experiments.profiles import SMALL
from repro.faults.types import FaultKind


def _quick(**overrides):
    return QuantifyConfig.quick(**overrides)


def test_ablation_heartbeat_period(benchmark):
    """Detection latency scales with the heartbeat period (stage A)."""

    def run():
        out = {}
        for interval in (2.5, 5.0, 10.0):
            profile = replace(SMALL, press=SMALL.press.with_(heartbeat_interval=interval))
            cfg = _quick(profile=profile)
            trace, _ = run_single_fault(version("COOP"), FaultKind.NODE_CRASH, cfg)
            tpl = TemplateFitter(cfg.fit).fit(trace)
            out[interval] = tpl.stage("A").duration
        return out

    stage_a = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nstage-A duration by heartbeat interval:", stage_a)
    assert stage_a[2.5] < stage_a[10.0]


def test_ablation_qmon_thresholds(benchmark):
    """Lower queue thresholds detect a stalled peer sooner."""

    def run():
        out = {}
        for fail_req in (8, 32):
            profile = replace(SMALL, press=SMALL.press.with_(
                qmon_reroute_threshold=fail_req // 2,
                qmon_fail_requests=fail_req))
            cfg = _quick(profile=profile)
            trace, _ = run_single_fault(version("QMON"), FaultKind.NODE_FREEZE, cfg)
            detect = trace.t_detect
            out[fail_req] = (detect - trace.t_inject) if detect else float("inf")
        return out

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nqmon detection latency by fail threshold:", latency)
    assert latency[8] <= latency[32]


def test_ablation_operator_response(benchmark):
    """COOP's unavailability is dominated by how long splintered
    configurations persist before an operator resets them."""

    def run():
        cfg_fast = _quick(environment=EnvironmentParams(operator_response=120.0))
        cfg_slow = _quick(environment=EnvironmentParams(operator_response=1200.0))
        kinds = (FaultKind.NODE_FREEZE,)
        fast = quantify_version("COOP", QuantifyConfig.quick(
            environment=EnvironmentParams(operator_response=120.0), kinds=kinds))
        slow = quantify_version("COOP", QuantifyConfig.quick(
            environment=EnvironmentParams(operator_response=1200.0), kinds=kinds))
        return fast.unavailability, slow.unavailability

    fast_u, slow_u = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nCOOP freeze unavailability: operator@2min={fast_u:.5f} "
          f"operator@20min={slow_u:.5f}")
    assert slow_u > fast_u


def test_ablation_mon_detection_mode(benchmark):
    """C-MON's 2 s connection probes vs Mon's 15 s pings for app crashes."""

    def run():
        cfg = _quick()
        ping, _ = run_single_fault(version("FME"), FaultKind.APP_CRASH, cfg)
        conn, _ = run_single_fault(version("C-MON"), FaultKind.APP_CRASH, cfg)
        fitter = TemplateFitter(cfg.fit)
        return fitter.fit(ping), fitter.fit(conn)

    ping_tpl, conn_tpl = benchmark.pedantic(run, rounds=1, iterations=1)
    ping_c, conn_c = ping_tpl.stage("C").throughput, conn_tpl.stage("C").throughput
    print(f"\napp-crash degraded throughput: ping-Mon={ping_c:.0f} C-MON={conn_c:.0f}")
    # With connection monitoring the front-end routes around the dead
    # application, so the degraded level is clearly higher.
    assert conn_c > ping_c


def test_ablation_cache_size(benchmark):
    """Per-node memory (64MB vs 128MB analog) trades throughput for the
    amount of re-warming each fault causes."""

    def run():
        out = {}
        for label, cache_files in (("64MB", 60), ("128MB", 120)):
            cfg = _quick(profile=SMALL.with_cache_files(cache_files))
            from repro.core.quantify import measure_fault_free

            out[label] = measure_fault_free(version("COOP"), cfg)["throughput"]
        return out

    tput = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nCOOP fault-free throughput by cache size:", tput)
    assert tput["128MB"] >= 0.9 * tput["64MB"]
