"""Availability/throughput regression gate.

Quantifies a fixed (version, fault-kind) matrix on the SMALL profile and
compares per-version average availability (AA) and average throughput
(AT) against the checked-in baseline ``benchmarks/BENCH_availability.json``.
CI fails when either metric regresses beyond tolerance; the current
numbers are always written to ``results/BENCH_availability.json`` so a
legitimate change can refresh the baseline by copying the file.

The config is pinned (explicit quick campaign, seed 0, two fault kinds)
rather than taken from ``REPRO_QUICK`` so both CI jobs measure the same
experiment.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import QuantifyConfig, quantify_version
from repro.faults.types import FaultKind

BASELINE = Path(__file__).resolve().parent / "BENCH_availability.json"
RESULTS = Path(__file__).resolve().parent.parent / "results"

VERSIONS = ("INDEP", "COOP")
KINDS = (FaultKind.NODE_CRASH, FaultKind.APP_CRASH)

#: AA is compared on the unavailability axis (relative — 0.999 vs 0.9992
#: is a 25% swing in downtime, not a 0.02% one); AT relatively.
UNAVAILABILITY_RTOL = 0.35
THROUGHPUT_RTOL = 0.10


def measure_current() -> dict:
    config = QuantifyConfig.quick(kinds=KINDS, seed=0)
    rows = {}
    for name in VERSIONS:
        va = quantify_version(name, config)
        rows[name] = {
            "AA": va.availability,
            "AT": va.normal_tput,
            "unavailability": va.unavailability,
        }
    return {
        "profile": config.profile.name,
        "seed": config.seed,
        "kinds": [k.value for k in KINDS],
        "versions": rows,
    }


def test_availability_baseline(benchmark):
    current = benchmark.pedantic(measure_current, rounds=1, iterations=1)

    RESULTS.mkdir(parents=True, exist_ok=True)
    out = RESULTS / "BENCH_availability.json"
    out.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")

    if not BASELINE.exists():
        pytest.fail(f"missing baseline {BASELINE}; copy {out} there to seed it")

    baseline = json.loads(BASELINE.read_text())
    assert baseline["kinds"] == current["kinds"]
    assert baseline["profile"] == current["profile"]

    failures = []
    for name in VERSIONS:
        base, now = baseline["versions"][name], current["versions"][name]
        print(f"{name}: AA {now['AA']:.6f} (baseline {base['AA']:.6f}), "
              f"AT {now['AT']:.1f} (baseline {base['AT']:.1f})")
        # regression = more downtime than the baseline allows
        ceiling = base["unavailability"] * (1.0 + UNAVAILABILITY_RTOL)
        if now["unavailability"] > ceiling:
            failures.append(
                f"{name}: unavailability {now['unavailability']:.3e} exceeds "
                f"baseline {base['unavailability']:.3e} by more than "
                f"{UNAVAILABILITY_RTOL:.0%}")
        floor = base["AT"] * (1.0 - THROUGHPUT_RTOL)
        if now["AT"] < floor:
            failures.append(
                f"{name}: throughput {now['AT']:.1f} below baseline "
                f"{base['AT']:.1f} by more than {THROUGHPUT_RTOL:.0%}")
    assert not failures, "; ".join(failures)

    # the ordering Figure 1a hinges on must hold in any baseline refresh
    assert (current["versions"]["COOP"]["AT"]
            > current["versions"]["INDEP"]["AT"])
    assert (current["versions"]["COOP"]["unavailability"]
            > current["versions"]["INDEP"]["unavailability"])
