"""Template generality: the methodology applied to the 3-tier bookstore.

The paper: "we have also applied the same template to a 3-tier on-line
bookstore based on the TPC-W benchmark".  This benchmark fits templates
for the bookstore's characteristic faults and evaluates the analytic
model under the bookstore's fault catalog.
"""

from repro.bookstore import build_bookstore
from repro.core.model import AvailabilityModel, EnvironmentParams
from repro.core.template import TemplateFitter
from repro.faults.campaign import CampaignConfig, SingleFaultCampaign
from repro.faults.types import FaultKind

CAMPAIGN = CampaignConfig(warmup=40.0, normal_window=15.0, fault_active=60.0,
                          post_repair_observe=45.0, post_reset_observe=30.0)

KINDS = (FaultKind.NODE_CRASH, FaultKind.NODE_FREEZE, FaultKind.APP_CRASH,
         FaultKind.APP_HANG, FaultKind.SCSI_TIMEOUT)


def quantify_bookstore(db_faults: bool):
    fitter = TemplateFitter()
    templates = {}
    normals = []
    for kind in KINDS:
        world = build_bookstore(rate=120.0, seed=13)
        target = world.db_target(kind) if db_faults else world.default_target(kind)
        trace = SingleFaultCampaign(world, CAMPAIGN).run(kind, target)
        templates[kind] = fitter.fit(trace)
        normals.append(trace.normal_tput)
    world = build_bookstore(rate=120.0, seed=13)
    model = AvailabilityModel(world.catalog, EnvironmentParams())
    label = "BOOKSTORE-db" if db_faults else "BOOKSTORE-app"
    result = model.evaluate(templates, sum(normals) / len(normals),
                            world.offered_rate, version=label)
    return result, templates


def test_bookstore_availability_quantified(benchmark):
    result, templates = benchmark.pedantic(
        lambda: quantify_bookstore(db_faults=True), rounds=1, iterations=1)
    print()
    from repro.core.report import format_model_result

    print(format_model_result(result))
    # Failover makes db-node crashes short outages: availability stays high.
    assert result.availability > 0.995
    # The template structure holds: crash = stall (A) then failover (C).
    crash = templates[FaultKind.NODE_CRASH]
    assert crash.stage("A").throughput < 0.5 * crash.normal_tput
    assert crash.stage("C").throughput > 0.7 * crash.normal_tput
    # The disk fault is the worst per-fault contributor relative to its
    # MTTR: nothing detects it, so the whole MTTR is degraded.
    scsi = templates[FaultKind.SCSI_TIMEOUT]
    assert scsi.stage("C").throughput < 0.6 * scsi.normal_tput


def test_bookstore_app_tier_faults_are_cheaper(benchmark):
    result, templates = benchmark.pedantic(
        lambda: quantify_bookstore(db_faults=False), rounds=1, iterations=1)
    print(f"\napp-tier fault load: availability {result.availability:.5f}")
    # App-tier nodes are replicated and stateless: crashes barely dent
    # the service compared to database faults.
    crash = templates[FaultKind.NODE_CRASH]
    assert crash.stage("C").throughput > 0.8 * crash.normal_tput
