"""Figure 1: the paper's headline — cooperation's performance/availability
trade-off (a) and the HW/SW improvement extrapolation (b)."""

from benchmarks.conftest import run_figure
from repro.experiments.figures import fig1a, fig1b


def test_fig1a_indep_vs_coop(benchmark, evaluation):
    out = run_figure(benchmark, fig1a, evaluation)
    rows = {r["version"]: r for r in out.rows}
    # COOP trades ~an order of magnitude of availability for ~3x throughput.
    assert rows["COOP"]["throughput"] > 2.0 * rows["INDEP"]["throughput"]
    assert rows["COOP"]["unavailability"] > 3.0 * rows["INDEP"]["unavailability"]
    # The front-end + extra node keep the independent version at least as
    # available as plain INDEP.
    assert rows["FE-X-INDEP"]["unavailability"] <= 1.5 * rows["INDEP"]["unavailability"]


def test_fig1b_hw_vs_sw(benchmark, evaluation):
    out = run_figure(benchmark, fig1b, evaluation)
    rows = {r["config"]: r["unavailability"] for r in out.rows}
    # Hardware alone does not change the availability class...
    assert rows["HW"] > 0.5 * rows["COOP"]
    # ...software recovers most of it, and SW+HW beats SW alone.
    assert rows["SW"] < rows["COOP"]
    assert rows["SW+HW"] < rows["HW"]
    assert rows["SW+HW"] < 0.2 * rows["COOP"]
