"""Figure 2 (the 7-stage template) and Figure 4 (disk-fault timeline)."""

from benchmarks.conftest import run_figure
from repro.experiments.figures import fig2, fig4


def test_fig2_template(benchmark, evaluation):
    out = run_figure(benchmark, fig2, evaluation)
    stages = {r["stage"]: r for r in out.rows}
    # A (undetected) and C (degraded until repair) must both be present
    # for a COOP disk fault; C's duration is supplied from the 1 h MTTR.
    assert stages["A"]["duration"] > 0
    assert stages["C"]["duration"] > 0
    assert stages["C"]["provenance"] == "supplied"
    total = sum(r["duration"] for r in out.rows)
    assert total > 3600.0  # dominated by the one-hour MTTR


def test_fig4_disk_fault_timeline(benchmark, evaluation):
    out = run_figure(benchmark, fig4, evaluation)
    rates = [r["rate"] for r in out.rows]
    peak = max(rates)
    # The paper's shape: normal -> drop to ~0 while undetected -> partial
    # recovery after exclusion (the cluster splinters, so it does NOT
    # return to normal until the operator reset).
    assert min(rates) < 0.05 * peak
    mid = rates[len(rates) // 2]
    assert 0.2 * peak < mid < 0.9 * peak
