"""Figures 6 and 7: hardware-only vs the HA-technique ladder."""

from benchmarks.conftest import run_figure
from repro.experiments.figures import fig6, fig7


def test_fig6_additional_hardware(benchmark, evaluation):
    out = run_figure(benchmark, fig6, evaluation)
    rows = {r["config"]: r["unavailability"] for r in out.rows}
    # RAID + backup switch shave only the (rare) disk/switch classes:
    # a modest reduction, same availability class (paper: ~25%).
    assert rows["RAID+switch"] < rows["COOP"]
    assert rows["RAID+switch"] > 0.5 * rows["COOP"]
    assert rows["All HW"] <= rows["FE-X"]


def test_fig7_ha_ladder(benchmark, evaluation):
    out = run_figure(benchmark, fig7, evaluation)
    rows = {r["version"]: r for r in out.rows}
    coop = rows["COOP"]["measured_unavail"]
    # The paper's two headline reductions: MQ ~87%, FME ~94%.
    mq_reduction = 1 - rows["MQ"]["measured_unavail"] / coop
    fme_reduction = 1 - rows["FME"]["measured_unavail"] / coop
    assert mq_reduction > 0.75
    assert fme_reduction > 0.85
    assert rows["FME"]["measured_unavail"] <= rows["MQ"]["measured_unavail"] * 1.1
    # No single technique suffices: each partial version retains at least
    # a few times FME's unavailability.
    for partial in ("FE-X", "MEM", "QMON"):
        assert rows[partial]["measured_unavail"] > 1.5 * rows["FME"]["measured_unavail"]
    # Phase-2 predictions from COOP measurements land within ~3x of the
    # measured implementations (the paper reports close agreement).
    for name in ("MEM", "MQ", "FME"):
        pred, meas = rows[name]["predicted_unavail"], rows[name]["measured_unavail"]
        assert pred < coop
        assert pred / meas < 5 and meas / pred < 5


def test_fig7_per_fault_structure(benchmark, evaluation):
    """The per-fault-class signatures Section 6.1 describes."""
    def check():
        mem = evaluation.va("MEM").result.by_kind()
        qmon = evaluation.va("QMON").result.by_kind()
        fme = evaluation.va("FME").result.by_kind()
        coop = evaluation.va("COOP").result.by_kind()
        return mem, qmon, fme, coop

    mem, qmon, fme, coop = benchmark.pedantic(check, rounds=1, iterations=1)
    from repro.faults.types import FaultKind as F

    # Membership cannot handle SCSI errors (they stop the app, not the node).
    assert mem[F.SCSI_TIMEOUT] > qmon[F.SCSI_TIMEOUT]
    # Membership handles node crash/freeze well.
    assert mem[F.NODE_CRASH] < coop[F.NODE_CRASH]
    assert mem[F.NODE_FREEZE] < coop[F.NODE_FREEZE]
    # Queue monitoring alone does not re-integrate frozen nodes: freeze
    # remains expensive relative to its crash handling.
    assert qmon[F.NODE_FREEZE] > qmon[F.NODE_CRASH]
    # FME converts hangs into crash-restarts: hang cost collapses.
    assert fme[F.APP_HANG] < 0.5 * qmon[F.APP_HANG]
    assert fme[F.APP_HANG] < 0.2 * coop[F.APP_HANG]
