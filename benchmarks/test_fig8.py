"""Figure 8: S-FME, C-MON and extra hardware on top of FME."""

from benchmarks.conftest import run_figure
from repro.experiments.figures import fig8


def test_fig8_stronger_variants(benchmark, evaluation):
    out = run_figure(benchmark, fig8, evaluation)
    rows = {r["config"]: r for r in out.rows}
    # S-FME (isolated nodes taken out of rotation) does not hurt overall
    # and sharply cuts the class it targets (isolated nodes still routed
    # to: link faults).
    assert rows["S-FME"]["unavailability"] <= rows["FME"]["unavailability"] * 1.2
    assert (rows["S-FME"]["by_kind"]["link_down"]
            <= rows["FME"]["by_kind"]["link_down"])
    # C-MON's fast connection monitoring targets application crashes the
    # ping-based Mon cannot see, without hurting the total.
    assert (rows["C-MON"]["by_kind"]["app_crash"]
            < 0.8 * rows["FME"]["by_kind"]["app_crash"])
    assert rows["C-MON"]["unavailability"] <= rows["FME"]["unavailability"] * 1.25
    # The backup switch removes most of the remaining switch exposure...
    assert rows["X-SW"]["unavailability"] <= rows["C-MON"]["unavailability"]
    # ...pushing the cooperative server into the four-nines class.
    assert rows["X-SW"]["availability"] > 0.9995
    # RAID on top contributes little (paper: "does not improve much").
    # RAID on top only touches the (already small) disk class.
    assert rows["X-SW-RAID"]["unavailability"] <= rows["X-SW"]["unavailability"]
    non_disk = {k: u for k, u in rows["X-SW"]["by_kind"].items()
                if k != "scsi_timeout"}
    assert rows["X-SW-RAID"]["unavailability"] >= 0.9 * sum(non_disk.values())
