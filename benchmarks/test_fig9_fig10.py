"""Figures 9-10: availability vs cluster size (Section 6.3)."""

import os

from benchmarks.conftest import run_figure
from repro.experiments.figures import fig9, fig10


def test_fig9_fme_scaling(benchmark, evaluation):
    # Direct 8-node measurements are the most expensive experiments in
    # the paper; skip them in quick mode (the scaled model still runs).
    direct = not os.environ.get("REPRO_QUICK")
    out = run_figure(benchmark, fig9, evaluation, measure_direct=direct)
    u = {r["config"]: r["unavailability"] for r in out.rows}
    base = u["FME-4 (measured)"]
    # FME's unavailability stays roughly constant with cluster size.
    assert u["FME-8 (scaled model)"] < 3.0 * base
    assert u["FME-16 (scaled model)"] < 4.0 * base
    if direct:
        # Scaled model vs the like-for-like direct measurement (memory
        # scaled linearly, as the model's base was): the paper reports
        # agreement within ~25%; allow a looser band for the noisier
        # substrate.
        ratio = u["FME-8 (scaled model)"] / max(u["FME-8 128MB (direct)"], 1e-9)
        assert 0.2 < ratio < 5.0
        # Constant total memory (64MB/node at 8 nodes) hurts relative to
        # linear scaling, as in the paper's Figure 9(a); our tighter
        # memory/working-set margin amplifies the gap.
        assert u["FME-8 64MB (direct)"] >= 0.8 * u["FME-8 128MB (direct)"]


def test_fig10_coop_scaling(benchmark, evaluation):
    out = run_figure(benchmark, fig10, evaluation)
    u = {r["config"]: r["unavailability"] for r in out.rows}
    # COOP's unavailability grows steeply with cluster size (paper:
    # doubles at 8 nodes and doubles again at 16).
    assert u["COOP-8"] > 1.5 * u["COOP-4"]
    assert u["COOP-16"] > 1.5 * u["COOP-8"]
