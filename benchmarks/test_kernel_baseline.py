"""Kernel benchmark: events/sec, obs overhead, and digest equality.

Runs the standard ``repro bench`` scenario suite (steady / crash / grid)
under every observability mode, asserts the cross-mode digests are
**identical** (the "observability never perturbs simulation" contract —
unconditional), writes the full report to ``results/BENCH_kernel.json``,
and gates events/sec and overhead ratios against the committed
``benchmarks/BENCH_kernel.json`` baseline.  Mirroring the parallel
benchmark's convention, the speed/overhead gates only fire on hosts with
at least 4 cores: raw throughput is a hardware property, determinism is
a code property, and only the latter can gate every environment.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import (
    MIN_CORES_FOR_GATE,
    REGRESSION_TOLERANCE,
    append_trend,
    gate,
    run_bench,
)

BASELINE = Path(__file__).resolve().parent / "BENCH_kernel.json"
TREND = Path(__file__).resolve().parent / "TREND.jsonl"
RESULTS = Path(__file__).resolve().parent.parent / "results"


def test_kernel_baseline(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    RESULTS.mkdir(parents=True, exist_ok=True)
    out = RESULTS / "BENCH_kernel.json"
    out.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")
    for name, sc in sorted(report.scenarios.items()):
        print(f"{name}: {sc.events_per_sec:,.0f} ev/s, "
              f"{sc.wall_per_cell:.3f} s/cell, "
              f"overhead unsub {sc.overhead('unsub'):.2f}x / "
              f"on {sc.overhead('on'):.2f}x")

    # The determinism half of the contract gates everywhere.
    for name, sc in sorted(report.scenarios.items()):
        assert sc.digests_equal, (
            f"{name}: observability perturbed the simulation — digests "
            f"diverged across obs modes: {sc.digests}")

    if not BASELINE.exists():
        pytest.fail(f"missing baseline {BASELINE}; copy {out} there to seed it")
    baseline = json.loads(BASELINE.read_text())
    assert set(baseline["scenarios"]) == set(report.scenarios), (
        "baseline and suite cover different scenarios — re-seed the baseline")

    verdict = gate(report, baseline, tolerance=REGRESSION_TOLERANCE,
                   min_cores=MIN_CORES_FOR_GATE)
    print(verdict.describe())
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_GATE:
        print(f"(speed/overhead gates skipped: {cores} core(s) < "
              f"{MIN_CORES_FOR_GATE})")
    assert verdict.ok, verdict.describe()

    append_trend(report, str(TREND))
    print(f"appended trend record to {TREND}")
