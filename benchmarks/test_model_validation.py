"""Beyond-paper: empirical validation of the phase-2 analytic model.

The simulator lets us check what the paper could only assume: inject a
*random* exponential fault load over a long horizon and compare the
directly measured availability with the phase-1+2 prediction under the
same (compressed) catalog.
"""

import os

import pytest

from repro.core.validation import validate_model


@pytest.mark.parametrize("version_name", ["COOP", "FME"])
def test_model_predicts_measured_availability(benchmark, version_name):
    horizon = 2400.0 if os.environ.get("REPRO_QUICK") else 7200.0

    result = benchmark.pedantic(
        lambda: validate_model(version_name, horizon=horizon),
        rounds=1, iterations=1,
    )
    print(f"\n{version_name}: predicted availability "
          f"{result.predicted_availability:.4f}, measured "
          f"{result.measured_availability:.4f} over {result.horizon:.0f}s "
          f"({result.faults_injected} faults); measured/predicted "
          f"unavailability ratio {result.ratio:.2f}")
    assert result.faults_injected >= 1
    # The model should land within a small factor of the truth; with a
    # handful of random faults the sampling noise itself is ~2x.
    assert 0.25 < result.ratio < 4.0
