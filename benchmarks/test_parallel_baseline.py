"""Parallel-executor benchmark: speedup accounting + digest equality.

Runs the default INDEP quick grid serially and with ``jobs=4``, asserts
the merged artifacts are **byte-identical** (the determinism contract —
this part is unconditional), and records wall times to
``results/BENCH_parallel.json``.  The ≥1.5x speedup floor is only
asserted on hosts with at least 4 cores: parallel overlap is a property
of the hardware, digest equality is a property of the code, and only the
latter can gate every environment.

The config is pinned (explicit quick campaign, seed 0) so every CI run
measures the same grid.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.quantify import QuantifyConfig, quantify_version

BASELINE = Path(__file__).resolve().parent / "BENCH_parallel.json"
RESULTS = Path(__file__).resolve().parent.parent / "results"

VERSION = "INDEP"
JOBS = 4
SPEEDUP_FLOOR = 1.5
#: cores needed before the speedup floor is enforceable
MIN_CORES_FOR_SPEEDUP = 4


def canonical(obj) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def artifact_digest(va) -> str:
    """Chained SHA-256 over the run's flight records, in fault order."""
    digest = hashlib.sha256(b"repro-parallel-bench")
    for kind in sorted(va.records, key=lambda k: k.value):
        digest.update(hashlib.sha256(
            canonical(va.records[kind].to_dict())).digest())
    return digest.hexdigest()


def measure_current() -> dict:
    config = QuantifyConfig.quick(seed=0)

    t0 = time.perf_counter()
    serial = quantify_version(VERSION, config, keep_records=True)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = quantify_version(VERSION, config, keep_records=True, jobs=JOBS)
    parallel_wall = time.perf_counter() - t0

    serial_digest = artifact_digest(serial)
    parallel_digest = artifact_digest(parallel)
    return {
        "version": VERSION,
        "profile": config.profile.name,
        "seed": config.seed,
        "jobs": JOBS,
        "cells": len(serial.records),
        "cores": os.cpu_count(),
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "serial_digest": serial_digest,
        "parallel_digest": parallel_digest,
        "digests_equal": serial_digest == parallel_digest,
        "availability": serial.availability,
    }


def test_parallel_baseline(benchmark):
    current = benchmark.pedantic(measure_current, rounds=1, iterations=1)

    RESULTS.mkdir(parents=True, exist_ok=True)
    out = RESULTS / "BENCH_parallel.json"
    out.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")
    print(f"serial {current['serial_wall_seconds']:.1f}s, "
          f"parallel({JOBS}) {current['parallel_wall_seconds']:.1f}s, "
          f"speedup {current['speedup']:.2f}x on {current['cores']} cores")

    # The determinism half of the contract gates everywhere.
    assert current["digests_equal"], (
        f"parallel artifacts diverged from serial: "
        f"{current['parallel_digest']} != {current['serial_digest']}")

    if not BASELINE.exists():
        pytest.fail(f"missing baseline {BASELINE}; copy {out} there to seed it")
    baseline = json.loads(BASELINE.read_text())
    assert baseline["version"] == current["version"]
    assert baseline["profile"] == current["profile"]
    assert baseline["jobs"] == current["jobs"]
    # the availability number itself is the serial pipeline's output and
    # must match the baseline exactly under a pinned seed
    assert current["availability"] == pytest.approx(
        baseline["availability"], rel=1e-12)

    # The performance half gates only where the hardware can deliver it.
    cores = current["cores"] or 1
    if cores >= MIN_CORES_FOR_SPEEDUP:
        assert current["speedup"] >= SPEEDUP_FLOOR, (
            f"speedup {current['speedup']:.2f}x below the {SPEEDUP_FLOOR}x "
            f"floor on {cores} cores")
    else:
        print(f"(speedup floor skipped: {cores} core(s) < "
              f"{MIN_CORES_FOR_SPEEDUP})")
