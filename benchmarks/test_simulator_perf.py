"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these track the cost of the kernel primitives and
the end-to-end event rate of a running PRESS cluster, so performance
regressions in the simulator are caught alongside the reproduction.
"""

from repro.experiments.configs import version
from repro.experiments.profiles import SMALL
from repro.experiments.runner import build_world
from repro.obs.kernelprof import KernelProfiler
from repro.obs.telemetry import Telemetry
from repro.sim.kernel import Environment
from repro.sim.store import Store


def test_kernel_timeout_churn(benchmark):
    """Schedule-and-fire cost for a ping-pong of timeouts."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(20_000):
                yield env.timeout(0.001)

        env.process(ticker())
        env.run()
        return env.now

    assert benchmark(run) > 0


def test_store_handoff(benchmark):
    """Producer/consumer handoff through a bounded store."""

    def run():
        env = Environment()
        q = Store(env, capacity=16)
        done = []

        def producer():
            for i in range(10_000):
                yield q.put(i)

        def consumer():
            for _ in range(10_000):
                item = yield q.get()
            done.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        return done[0]

    assert benchmark(run) == 9_999


def test_kernel_profiled_churn(benchmark):
    """The same timeout ping-pong with a kernel monitor attached.

    Tracks the cost of the opt-in profiling hooks relative to
    ``test_kernel_timeout_churn`` (the monitor-free fast path).
    """

    def run():
        env = Environment(monitor=KernelProfiler())

        def ticker():
            for _ in range(20_000):
                yield env.timeout(0.001)

        env.process(ticker())
        env.run()
        return env.monitor.events_processed

    assert benchmark(run) > 20_000


def test_coop_cluster_simulation_rate(benchmark):
    """Wall-clock cost of simulating 30 s of a loaded 4-node COOP cluster."""

    def run():
        world = build_world(version("COOP"), SMALL)
        world.env.run(until=30.0)
        return world.stats.issued

    issued = benchmark.pedantic(run, rounds=1, iterations=1)
    assert issued > 1000


def test_coop_cluster_rate_telemetry_off(benchmark):
    """The same cluster with telemetry fully disabled (null instruments).

    Compared against ``test_coop_cluster_simulation_rate`` this bounds
    the end-to-end cost of the always-on counters and trace events.
    """

    def run():
        world = build_world(version("COOP"), SMALL,
                            telemetry=Telemetry.disabled())
        world.env.run(until=30.0)
        return world.stats.issued

    issued = benchmark.pedantic(run, rounds=1, iterations=1)
    assert issued > 1000
