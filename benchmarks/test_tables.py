"""Tables 1 and 2."""

from benchmarks.conftest import run_figure
from repro.experiments.figures import table1, table2


def test_table1_fault_loads(benchmark, evaluation):
    out = run_figure(benchmark, table1, evaluation)
    rows = {r["fault"]: r for r in out.rows}
    assert rows["node crash"]["mttf_days"] == 14.0
    assert rows["scsi timeout"]["count"] == 8
    assert rows["internal switch"]["mttr_minutes"] == 60.0
    assert len(out.rows) == 8


def test_table2_effort_vs_reduction(benchmark, evaluation):
    out = run_figure(benchmark, table2, evaluation)
    rows = {r["enhancement"]: r for r in out.rows}
    full = rows["Queue Monitoring + Membership + FME"]
    # A small amount of code buys an order-of-magnitude improvement
    # (paper: 1638 NCSL for 94%).
    assert full["ncsl"] < 2500
    assert full["reduction"] > 0.85
    # Effort and payoff both increase monotonically down the table.
    ncsls = [r["ncsl"] for r in out.rows]
    assert ncsls == sorted(ncsls)
