#!/usr/bin/env python
"""Per-operation-class availability: the auction service under a master
crash.

The methodology measures availability as the fraction of requests served
— but for services with asymmetric operations the *same fault* can have
wildly different per-class impact. The auction's data tier is a master
with read replicas: crash the master and bids (writes) fail until the
election completes, while browsing (reads) barely notices.

Run:  python examples/auction_read_write.py
"""

from repro.auction import build_auction
from repro.faults import FaultKind


def window(stats, t0, t1):
    return stats.window(t0, t1)["availability"]


def main() -> None:
    world = build_auction(read_rate=100.0, write_rate=25.0, seed=2)
    env = world.env

    env.run(until=30.0)
    print(f"steady state ({world.data_cluster.master.host.name} is master):")
    print(f"  read availability:  {window(world.read_stats, 15, 30):.3f}")
    print(f"  write availability: {window(world.write_stats, 15, 30):.3f}")

    master = world.data_cluster.master.host.name
    print(f"\ncrashing the data master ({master})...")
    fault = world.injector.inject(FaultKind.NODE_CRASH, master)
    env.run(until=60.0)
    election = world.markers.first("auction_election")
    print(f"  election won by {world.data_cluster.master.host.name} "
          f"at t={election:.1f}s")
    print(f"  during detection+election [30..46]:")
    print(f"    read availability:  {window(world.read_stats, 32, 46):.3f}"
          "   <- replicas keep serving")
    print(f"    write availability: {window(world.write_stats, 32, 46):.3f}"
          "   <- no master to accept bids")

    world.injector.repair(fault)
    env.run(until=90.0)
    print(f"  after election [60..90]:")
    print(f"    read availability:  {window(world.read_stats, 60, 90):.3f}")
    print(f"    write availability: {window(world.write_stats, 60, 90):.3f}")
    print(f"  rebooted node rejoined as replica; no failback "
          f"(master: {world.data_cluster.master.host.name})")

    print("\nper-5s write availability timeline:")
    t = 25.0
    while t < 70.0:
        issued = world.write_stats.issued_series.count(t, t + 5)
        ok = world.write_stats.series.count(t, t + 5)
        avail = ok / issued if issued else 1.0
        print(f"  t={t:4.0f}s  {avail:5.2f}  {'#' * int(avail * 40)}")
        t += 5.0


if __name__ == "__main__":
    main()
