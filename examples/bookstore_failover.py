#!/usr/bin/env python
"""The methodology beyond PRESS: a 3-tier bookstore under database faults.

The paper notes that the same 7-stage template fits a TPC-W-style 3-tier
on-line bookstore.  This walkthrough builds the bookstore (web tier, app
tier, primary/replica database), crashes the database primary, watches
heartbeat-driven failover, then shows the blind spot: a database *disk*
fault wedges the service while the failover monitor sees nothing —
the same divergence that motivates Fault Model Enforcement.

Run:  python examples/bookstore_failover.py
"""

from repro.bookstore import build_bookstore
from repro.core.template import TemplateFitter
from repro.faults import CampaignConfig, FaultKind, SingleFaultCampaign


def timeline(world, start, end, label):
    print(f"\n{label} (4 s buckets):")
    times, rates = world.stats.series.bucketize(4.0, start, end)
    for t, r in zip(times, rates):
        print(f"  t={t:5.0f}s {r:6.1f} req/s {'#' * int(r / 4)}")


def main() -> None:
    print("=== database primary crash: detected and failed over ===")
    world = build_bookstore(rate=120.0, seed=11)
    env = world.env
    env.run(until=40.0)
    print(f"steady state: {world.stats.series.mean_rate(25, 40):.0f} req/s, "
          f"primary={world.db_cluster.primary.host.name}")
    fault = world.injector.inject(FaultKind.NODE_CRASH, world.db[0].host.name)
    env.run(until=90.0)
    world.injector.repair(fault)
    env.run(until=110.0)
    timeline(world, 36, 110, "throughput around the crash")
    print(f"failover at t={world.markers.first('db_failover'):.1f}s; "
          f"primary is now {world.db_cluster.primary.host.name}; the rebooted "
          f"node serves as replica")

    print("\n=== database disk fault: the blind spot ===")
    world = build_bookstore(rate=120.0, seed=11)
    env = world.env
    env.run(until=40.0)
    fault = world.injector.inject(
        FaultKind.SCSI_TIMEOUT, world.db_target(FaultKind.SCSI_TIMEOUT))
    env.run(until=100.0)
    world.injector.repair(fault)
    env.run(until=130.0)
    timeline(world, 36, 130, "throughput around the disk fault")
    failover = world.markers.first("db_failover")
    print(f"failover triggered: {failover is not None} "
          "(the wedged database still heartbeats, so nothing acts — "
          "exactly what FME's direct disk probing fixes in PRESS)")

    print("\n=== the 7-stage template fits the bookstore too ===")
    world = build_bookstore(rate=120.0, seed=11)
    campaign = SingleFaultCampaign(world, CampaignConfig(
        warmup=40.0, normal_window=15.0, fault_active=60.0,
        post_repair_observe=40.0, post_reset_observe=30.0))
    trace = campaign.run(FaultKind.NODE_CRASH, world.db[0].host.name)
    template = TemplateFitter().fit(trace)
    for name in "ABCDEFG":
        stage = template.stage(name)
        print(f"  stage {name}: {stage.duration:6.1f}s @ {stage.throughput:6.1f} req/s"
              f"  [{stage.provenance}]")


if __name__ == "__main__":
    main()
