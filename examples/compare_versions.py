#!/usr/bin/env python
"""Availability ladder: quantify several system versions side by side.

Reproduces the paper's overall narrative in one run: base cooperation is
fast but an order of magnitude less available than independent servers;
each HA technique recovers part of it; the full stack recovers all of it
and more.

Run:  REPRO_QUICK=1 python examples/compare_versions.py        (fast)
      python examples/compare_versions.py INDEP COOP MQ FME    (custom)
"""

import sys

from repro.core import QuantifyConfig, format_comparison, quantify_version

DEFAULT = ("INDEP", "COOP", "FE-X", "MQ", "FME")


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT)
    config = QuantifyConfig.from_env()
    results = []
    for name in names:
        print(f"quantifying {name}...", flush=True)
        va = quantify_version(name, config)
        results.append(va.result)
        print(f"  unavailability {va.unavailability:.5f} "
              f"(availability {va.availability:.5f})")
    print()
    print(format_comparison(results, "per-fault-class unavailability"))


if __name__ == "__main__":
    main()
