#!/usr/bin/env python
"""Fault Model Enforcement resolving a view divergence, live.

Scenario (paper Sections 4.4-4.5): the application on one node hangs.
The membership daemon on that node is a separate process, so the
published membership view still lists the node; queue monitoring on the
peers keeps kicking it out; the reconciliation thread keeps re-adding
it.  This script shows the oscillation on an MQ deployment, then reruns
the same fault on an FME deployment, where the per-node FME daemon
probes the application over HTTP, finds the disks healthy, and enforces
the fault model by restarting the app — a fault everything already
knows how to handle.

Run:  python examples/fme_in_action.py
"""

from repro.experiments import SMALL, build_world, version
from repro.faults import FaultKind


def run_scenario(version_name: str) -> None:
    print(f"--- {version_name} deployment, application hang on n1 ---")
    world = build_world(version(version_name), SMALL, seed=7)
    env = world.env
    env.run(until=90.0)
    world.injector.inject_for(FaultKind.APP_HANG, "n1", duration=120.0)
    env.run(until=240.0)

    churn = [(t, d) for t, d in world.markers.all("excluded") if t >= 90.0]
    readds = [(t, d) for t, d in world.markers.all("reintegrated") if t >= 90.0]
    fme_restarts = world.markers.all("fme_restart")
    served = world.stats.window(90.0, 210.0)

    print(f"  exclusions of n1 after the hang: {len(churn)}")
    print(f"  re-additions:                    {len(readds)}")
    if fme_restarts:
        t0 = fme_restarts[0][0]
        print(f"  FME enforced crash-restart at t={t0:.1f}s "
              f"({t0 - 90.0:.1f}s after the hang)")
    print(f"  throughput during the fault window: "
          f"{served['success_rate']:.0f} req/s "
          f"(availability {served['availability']:.3f})")
    print()


def main() -> None:
    # MQ: membership + queue monitoring but no FME -> remove/re-add churn.
    run_scenario("MQ")
    # FME: the same fault is converted to an application crash-restart.
    run_scenario("FME")
    print("note how FME turns minutes of churn into one quick restart —")
    print("the un-modeled fault was transformed into a modeled one.")


if __name__ == "__main__":
    main()
