#!/usr/bin/env python
"""The three-round membership service under a network partition.

Builds the membership daemons standalone (no web server on top), cuts
one node's link, watches the group split into consistent sub-groups,
heals the link, and watches the groups merge back — the re-integration
capability that base PRESS lacks and Section 4.2 adds.

Run:  python examples/membership_partition.py
"""

from repro.ha.membership import (
    MembershipConfig,
    MembershipDaemon,
    MembershipNetwork,
    bootstrap_membership,
)
from repro.hardware.host import Host
from repro.net.network import ClusterNetwork
from repro.sim.kernel import Environment


def show(label: str, daemons) -> None:
    views = {f"n{d.node_id}": sorted(d.view) for d in daemons}
    print(f"{label:<28} {views}")


def main() -> None:
    env = Environment()
    net = ClusterNetwork(env)
    hosts, daemons = [], []
    mnet = MembershipNetwork(net)
    for i in range(5):
        host = Host(env, f"n{i}", i)
        net.attach(host)
        daemon = MembershipDaemon(host, i, mnet, MembershipConfig())
        daemon.start()
        hosts.append(host)
        daemons.append(daemon)
    bootstrap_membership(daemons)

    env.run(until=20.0)
    show("steady state:", daemons)

    print("\ncutting n3's and n4's links (partition {0,1,2} | {3} | {4})...")
    net.link(hosts[3]).up = False
    net.link(hosts[4]).up = False
    env.run(until=90.0)
    show("after detection + 2PC:", daemons)

    print("\nhealing the links...")
    net.link(hosts[3]).up = True
    net.link(hosts[4]).up = True
    env.run(until=260.0)
    show("after multicast-join merge:", daemons)

    versions = {d.node_id: d.version for d in daemons}
    print(f"\nview versions: {versions}")
    assert all(sorted(d.view) == [0, 1, 2, 3, 4] for d in daemons), \
        "groups failed to re-merge"
    print("all daemons converged back to the full group.")


if __name__ == "__main__":
    main()
