#!/usr/bin/env python
"""Parallel campaigns: fan a multi-version study out over worker
processes, then prove the results are byte-identical to a serial run.

`quantify_grid` shards every (version, fault, seed) cell of a
four-version study into one shared process pool. The merge is keyed on
grid order — never completion order — so the parallel artifacts digest
identically to the serial ones; this script verifies that with a
chained SHA-256 over every fitted template.

The default run restricts the campaign to two fault kinds so the
serial verification pass stays cheap; `FULL=1` runs every kind.

Run:  python examples/parallel_quantify.py        (~2 min incl. serial check)
      JOBS=2 python examples/parallel_quantify.py
      FULL=1 python examples/parallel_quantify.py  (full grids, ~10 min serial)

The `__main__` guard is load-bearing: workers are spawned, so the
module must be importable without re-running the study.
"""

import hashlib
import json
import os

from repro.core import QuantifyConfig, quantify_version
from repro.faults import FaultKind
from repro.parallel import quantify_grid

VERSIONS = ("INDEP", "COOP", "MQ", "FME")
QUICK_KINDS = (FaultKind.APP_CRASH, FaultKind.NODE_CRASH)


def study_digest(results):
    """Chained SHA-256 over every version's fitted templates and model
    numbers, in study order."""
    digest = hashlib.sha256(b"parallel-quantify-example")
    for name in VERSIONS:
        va = results[name]
        doc = {
            "availability": va.availability,
            "normal_tput": va.normal_tput,
            "stages": {
                kind.value: [[n, t.stages[n].duration, t.stages[n].throughput]
                             for n in sorted(t.stages)]
                for kind, t in sorted(va.templates.items(),
                                      key=lambda kv: kv[0].value)
            },
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        digest.update(hashlib.sha256(payload.encode("utf-8")).digest())
    return digest.hexdigest()


def main() -> None:
    config = QuantifyConfig.quick(
        kinds=None if os.environ.get("FULL") else QUICK_KINDS)
    jobs = int(os.environ.get("JOBS", "4"))

    print(f"parallel study: {', '.join(VERSIONS)} on {jobs} workers")
    stats = []
    parallel = quantify_grid(VERSIONS, config, jobs=jobs, retries=1,
                             stats_out=stats)
    s = stats[0]
    print(f"  {s.cells} cells in {s.wall_seconds:.1f}s wall "
          f"({s.cell_seconds:.1f}s of cell work, {s.speedup:.2f}x overlap)")

    print("serial rerun for the determinism check...")
    serial = {name: quantify_version(name, config) for name in VERSIONS}

    print(f"\n{'version':<8}{'availability':>14}{'unavailability':>16}")
    for name in VERSIONS:
        va = parallel[name]
        print(f"{name:<8}{va.availability:>14.5f}{va.unavailability:>16.5f}")

    d_par, d_ser = study_digest(parallel), study_digest(serial)
    print(f"\nparallel digest: {d_par}")
    print(f"serial digest:   {d_ser}")
    if d_par != d_ser:
        raise SystemExit("DIVERGED: parallel run is not byte-identical!")
    print("identical — jobs=%d changed nothing but the wall clock." % jobs)


if __name__ == "__main__":
    main()
