#!/usr/bin/env python
"""The paper's closing question, made computable.

Section 8 asks whether the evolutionary approach can push the cooperative
server from four nines toward five (the availability of the telephone
system). The analytic model lets us rank every remaining lever — harden a
component class, repair it faster, respond faster — and greedily search
for a path to a target.

Run:  REPRO_QUICK=1 python examples/path_to_five_nines.py   (~2 min)
"""

from repro.core import QuantifyConfig, quantify_version
from repro.core.sensitivity import SensitivityAnalysis, format_levers
from repro.experiments import build_world


def main() -> None:
    config = QuantifyConfig.from_env()
    print("quantifying the full FME stack first (phase 1 campaigns)...\n")
    va = quantify_version("C-MON", config)
    world = build_world(va.spec, config.profile, seed=config.seed)
    analysis = SensitivityAnalysis(
        va.templates, world.catalog, config.environment,
        va.normal_tput, va.offered_rate, version="C-MON")

    print(f"C-MON availability: {analysis.baseline.availability:.5f} "
          f"({analysis.nines():.2f} nines)\n")
    print("single levers, ranked by payoff:")
    print(format_levers(analysis.ranked_levers()[:8],
                        analysis.baseline.unavailability))

    print("\ngreedy path toward five nines (0.99999):")
    steps = analysis.path_to(0.99999)
    if not steps:
        print("  already at/above the target")
    for i, step in enumerate(steps, 1):
        print(f"  {i}. {step.description:<34} -> "
              f"unavailability {step.new_unavailability:.2e}")
    print("\n(the paper's own answer — a backup switch — is usually the "
          "first or second lever on this list)")


if __name__ == "__main__":
    main()
