#!/usr/bin/env python
"""The paper's methodology, end to end, for one system version.

Phase 1: for each fault type of Table 1, build a fresh deployment, warm
it, inject exactly one fault, observe through repair (and an operator
reset if the service stays degraded), and fit the measured throughput
timeline to the 7-stage template.

Phase 2: combine the fitted templates with the expected fault load
(MTTF/MTTR per component) into expected average throughput and
availability.

Run:  python examples/quantify_availability.py [VERSION]
      (VERSION defaults to MQ; see repro.experiments.VERSIONS for names)

Tip: set REPRO_QUICK=1 for a faster, lower-fidelity pass.
"""

import sys

from repro.core import QuantifyConfig, format_model_result, quantify_version
from repro.core.template import STAGE_NAMES


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "MQ"
    config = QuantifyConfig.from_env()
    print(f"quantifying version {name!r} "
          f"(phase-1 campaigns take a couple of minutes)...\n")
    va = quantify_version(name, config)

    print("fitted 7-stage templates (duration s @ req/s):")
    for kind, tpl in va.templates.items():
        cells = " ".join(
            f"{n}:{tpl.stage(n).duration:.0f}@{tpl.stage(n).throughput:.0f}"
            for n in STAGE_NAMES
            if tpl.stage(n).duration > 0 or n in ("C", "E")
        )
        recov = "self-recovers" if tpl.self_recovered else "needs operator"
        print(f"  {kind.value:<18} {cells}  [{recov}]")

    print("\nphase-2 model:")
    print(format_model_result(va.result))
    nines = -__import__("math").log10(max(va.unavailability, 1e-12))
    print(f"\n=> expected availability {va.availability:.5f} "
          f"({nines:.1f} nines)")


if __name__ == "__main__":
    main()
