#!/usr/bin/env python
"""Quickstart: build a 4-node cooperative PRESS cluster, run it under a
Poisson client load, inject one disk fault, and watch the paper's
Figure-4 dynamics unfold (whole-cluster stall, heartbeat detection,
splintering, operator reset).

Run:  python examples/quickstart.py
"""

from repro.experiments import SMALL, build_world, version
from repro.faults import FaultKind


def main() -> None:
    # A World bundles the simulated cluster, the workload, the fault
    # injector and all instrumentation for one named system version.
    world = build_world(version("COOP"), SMALL, seed=42)
    env = world.env

    print("warming up a 4-node cooperative PRESS cluster...")
    env.run(until=90.0)
    normal = world.stats.series.mean_rate(70.0, 90.0)
    print(f"  fault-free throughput: {normal:.0f} req/s "
          f"(offered {world.offered_rate:.0f} req/s)")

    print("\ninjecting a SCSI timeout on node n1's first disk...")
    fault = world.injector.inject(FaultKind.SCSI_TIMEOUT, "n1.disk0")
    env.run(until=150.0)
    world.injector.repair(fault)
    print("  fault repaired after 60 s; observing the aftermath...")
    env.run(until=210.0)

    print("\nthroughput timeline (5 s buckets):")
    times, rates = world.stats.series.bucketize(5.0, 80.0, 210.0)
    for t, r in zip(times, rates):
        mark = ""
        if t <= 90 < t + 5:
            mark = "  <- fault injected"
        elif t <= 150 < t + 5:
            mark = "  <- fault repaired"
        print(f"  t={t:5.0f}s  {r:6.1f} req/s  {'#' * int(r / 6)}{mark}")

    print("\ncooperation sets after repair (note the splinter!):")
    for server in world.servers:
        print(f"  node {server.node_id}: {sorted(server.coop)}")

    print("\noperator resets the service...")
    world.operator_reset()
    env.run(until=330.0)
    print(f"  throughput after recovery: "
          f"{world.stats.series.mean_rate(300.0, 330.0):.0f} req/s")
    for server in world.servers:
        print(f"  node {server.node_id}: {sorted(server.coop)}")

    stats = world.stats
    print(f"\ntotals: {stats.issued} requests issued, "
          f"{stats.succeeded} served, {stats.failed} failed "
          f"(measured availability {stats.availability():.4f})")


if __name__ == "__main__":
    main()
