#!/usr/bin/env python
"""Section 6.3: extrapolating availability to larger clusters.

Fits 4-node templates for COOP and FME, applies the scaling rules to
predict 8- and 16-node unavailability, and (optionally) checks the COOP
prediction against a direct 8-node simulation.

Run:  REPRO_QUICK=1 python examples/scaling_study.py          (~4 min)
      REPRO_QUICK=1 DIRECT=1 python examples/scaling_study.py (+ direct 8-node)
"""

import os

from repro.core import QuantifyConfig, quantify_version
from repro.core.model import AvailabilityModel
from repro.core.scaling import scale_catalog, scale_template
from repro.experiments import version
from repro.faults.faultload import table1_catalog


def scaled(va, k, config):
    spec = va.spec
    catalog = scale_catalog(
        spec.transform_catalog(table1_catalog(spec.server_count,
                                              with_frontend=spec.frontend)), k)
    templates = {kind: scale_template(t, float(k))
                 for kind, t in va.templates.items()}
    model = AvailabilityModel(catalog, config.environment)
    return model.evaluate(templates, va.normal_tput * k, va.offered_rate * k,
                          version=f"{spec.name}x{k}")


def main() -> None:
    config = QuantifyConfig.from_env()
    rows = {}
    for name in ("COOP", "FME"):
        print(f"fitting 4-node templates for {name}...")
        va = quantify_version(name, config)
        rows[name] = [va.unavailability,
                      scaled(va, 2, config).unavailability,
                      scaled(va, 4, config).unavailability]

    print(f"\n{'version':<8}{'4 nodes':>12}{'8 (model)':>12}{'16 (model)':>12}")
    for name, (u4, u8, u16) in rows.items():
        print(f"{name:<8}{u4:>12.5f}{u8:>12.5f}{u16:>12.5f}"
              f"   growth x{u8 / u4:.2f}, x{u16 / u8:.2f}")
    print("\npaper: COOP roughly doubles at each step; FME stays flat —")
    print("cooperation's availability cost grows with scale unless the")
    print("fault-propagation problem is attacked directly.")

    if os.environ.get("DIRECT"):
        print("\ndirect 8-node COOP measurement (the data set scales with the")
        print("cluster so the working set keeps overflowing the global cache):")
        va8 = quantify_version(version("COOP").with_nodes(8), config)
        print(f"  direct COOP-8 unavailability: {va8.unavailability:.5f} "
              f"(scaled model said {rows['COOP'][1]:.5f})")


if __name__ == "__main__":
    main()
