#!/usr/bin/env python
"""Standalone entry point for the docs cross-reference checker.

Equivalent to ``python -m repro lint --docs``; exists so the docs gate
can run without remembering the CLI flag spelling:

    python scripts/check_docs.py [--root DIR] [--json] [--out FILE]

Exit status 0 means every checkable reference in README.md,
ARTIFACTS.md, and docs/*.md resolves; 1 means at least one is stale.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.doccheck import check_docs, format_doccheck  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=str(Path(__file__).resolve()
                                              .parent.parent),
                        help="repo root to resolve references against")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report to this file")
    args = parser.parse_args()

    result = check_docs(root=args.root)
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(result.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_doccheck(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
