#!/usr/bin/env sh
# One-command artifact regeneration: every registered artifact (paper
# figures/tables, BENCH_* baseline documents, analysis reports) is
# rebuilt into results/reproduce/ and digested into
# results/MANIFEST.json with git/host provenance.
#
# Usage:
#   scripts/reproduce_all.sh                 # full-fidelity regeneration
#   scripts/reproduce_all.sh --quick --check # CI mode: short windows,
#                                            # diff against baselines
#   scripts/reproduce_all.sh --only 'fig*'   # just the paper figures
#
# All arguments are forwarded to `repro reproduce-all` (see
# ARTIFACTS.md for the registry and docs/REPRODUCIBILITY.md for
# manifest semantics).
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec "${PYTHON:-python}" -m repro reproduce-all "$@"
