"""repro: reproduction of "Quantifying and Improving the Availability of
High-Performance Cluster-Based Internet Services" (SC 2003).

Public API tour:

* :mod:`repro.core` — the quantification methodology (template fitting,
  analytic model, scaling rules, end-to-end pipeline, model validation).
* :mod:`repro.experiments` — named system versions, deployment profiles,
  the world builder, and per-figure reproduction entry points.
* :mod:`repro.press` — the PRESS cooperative server and INDEP baseline.
* :mod:`repro.ha` — front-end+Mon, membership, queue monitoring, FME.
* :mod:`repro.faults` — Table-1 fault catalog, injector, campaigns.
* :mod:`repro.bookstore` — the 3-tier TPC-W-style service the paper also
  applied the template to.
* :mod:`repro.sim`, :mod:`repro.hardware`, :mod:`repro.net`,
  :mod:`repro.workload` — the simulation substrate.

Quick start::

    from repro.core import quantify_version, QuantifyConfig
    va = quantify_version("FME", QuantifyConfig())
    print(va.availability)
"""

__version__ = "1.0.0"
