"""Repo-native static analysis and runtime determinism checking.

The availability numbers this repository produces (AT/AA, the 7-stage
templates, the error budgets) are only evidence if the simulator is
bit-reproducible and the fault-handling code never silently swallows or
reorders events.  This package makes those invariants machine-checked:

``reprolint`` (:mod:`repro.analysis.lint`)
    An AST-based lint pass with repo-specific rules (REP001..REP007)
    covering wall-clock use, unregistered RNGs, swallowed exceptions,
    unsafe trace payloads, unordered-iteration hazards, mutable default
    arguments, and suspicious scheduler delays.

determinism sanitizer (:mod:`repro.analysis.sanitize`)
    Runs the same campaign twice under different ``PYTHONHASHSEED``
    values and diffs the chained trace-event digests and final metrics,
    pinpointing the first diverging event.

Both are wired into the CLI as ``repro lint`` and ``repro sanitize``.
"""

from repro.analysis.lint import Finding, LintResult, lint_paths, lint_source
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import RULES, Rule, Severity

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "Severity",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
