"""Repo-native static analysis and runtime determinism checking.

The availability numbers this repository produces (AT/AA, the 7-stage
templates, the error budgets) are only evidence if the simulator is
bit-reproducible and the fault-handling code never silently swallows or
reorders events.  This package makes those invariants machine-checked:

``reprolint`` (:mod:`repro.analysis.lint`)
    An AST-based lint pass with repo-specific rules (REP001..REP007,
    REP013) covering wall-clock use, unregistered RNGs, swallowed
    exceptions, unsafe trace payloads, unordered-iteration hazards,
    mutable default arguments, suspicious scheduler delays, and trace
    contexts dropped on the floor in span-aware code.

flow analysis (:mod:`repro.analysis.flow`, :mod:`repro.analysis.callgraph`)
    A whole-program pass over the module/call graph: interprocedural
    sim-scope propagation for REP001/REP002, message-protocol
    consistency (REP008..REP010 — kinds sent but never handled, dead
    handler branches, undispatched droppables), and lost-generator
    detection (REP011..REP012).

determinism sanitizer (:mod:`repro.analysis.sanitize`)
    Runs the same campaign twice under different ``PYTHONHASHSEED``
    values and diffs the chained trace-event digests and final metrics,
    pinpointing the first diverging event.

All are wired into the CLI as ``repro lint`` (``--flow`` for the
whole-program pass) and ``repro sanitize``.
"""

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.flow import FlowResult, analyze_flow
from repro.analysis.lint import Finding, LintResult, lint_paths, lint_source
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import RULES, Rule, Severity

__all__ = [
    "CallGraph",
    "Finding",
    "FlowResult",
    "LintResult",
    "RULES",
    "Rule",
    "Severity",
    "analyze_flow",
    "build_callgraph",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
