"""Whole-program module and call-graph builder for ``repro.analysis.flow``.

One parse per module, three passes:

1. **Index** — every module, class (with base names), and function
   (including methods and nested functions) gets a stable qualified name
   derived from its path, e.g. ``repro.press.server.PressServer._forward``
   or ``repro.ha.frontend.FrontEnd.fail.<locals>._takeover``.
2. **Typing** — a deliberately small type inference: parameter and
   ``self.attr`` annotations, ``x = ClassName(...)`` constructor
   assignments, and return annotations of project functions.  Just enough
   to resolve the attribute calls this codebase actually makes
   (``self.fabric.control_send(...)``, ``self.mnet.multicast(...)``).
3. **Edges** — call edges from each function to every project function it
   can invoke: direct names, ``self`` methods (through project base
   classes), typed attribute calls, module-alias calls, constructor
   calls (→ ``__init__``), function objects passed as arguments
   (callbacks), and — as a last resort — attribute calls whose method
   name is defined by exactly **one** project class (unique-name CHA).

Every resolved call site is kept (caller, callee, AST node) so the flow
layer can map arguments onto callee parameters — that is how literal
message kinds are traced through helpers like ``ClusterFabric.control_send``
into ``Message(kind=...)``.

The graph is queryable in process and exportable as a stable JSON
document (``repro lint --flow --callgraph-out graph.json``).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Dict, Iterable, List, Optional, Sequence, Set, Tuple

CALLGRAPH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FunctionInfo:
    """One project function (or method, or nested function)."""

    qualname: str
    module: str
    path: str
    lineno: int
    end_lineno: int
    #: parameter names in positional order (``self`` included for methods)
    params: Tuple[str, ...]
    is_generator: bool
    #: unqualified name of the enclosing class, if this is a method
    class_name: Optional[str]
    node: ast.AST = field(repr=False, compare=False, hash=False)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def covers(self, line: int) -> bool:
        return self.lineno <= line <= self.end_lineno


@dataclass(frozen=True)
class ClassInfo:
    """One project class: methods, base names, and inferred attr types."""

    qualname: str
    module: str
    name: str
    lineno: int
    #: base-class names as written (resolved lazily through imports)
    bases: Tuple[str, ...]
    #: method name -> function qualname
    methods: Dict[str, str] = field(hash=False)
    #: ``self.<attr>`` -> class qualname (from annotations/constructors)
    attr_types: Dict[str, str] = field(hash=False)
    node: ast.AST = field(repr=False, compare=False, hash=False)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who calls whom, and the AST node doing it."""

    caller: str
    callee: str
    node: ast.Call = field(repr=False, compare=False, hash=False)
    path: str = ""
    #: True when the callee is invoked bound (``obj.m()`` / constructor),
    #: i.e. the callee's leading ``self`` parameter is implicit.
    bound: bool = True


class CallGraph:
    """The queryable whole-program graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}  # module name -> path
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.call_sites: List[CallSite] = []
        self.trees: Dict[str, ast.Module] = {}
        self.sources: Dict[str, str] = {}  # path -> source text
        # indexes
        self.class_by_name: Dict[str, List[str]] = {}
        self.methods_by_name: Dict[str, List[str]] = {}

    # -- queries ---------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def functions_in_path(self, path: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.path == path]

    def reachable_from(self, seeds: Iterable[str]) -> Set[str]:
        """BFS closure over call edges (cycle-safe)."""
        seen: Set[str] = set()
        frontier = [s for s in seeds if s in self.functions]
        seen.update(frontier)
        while frontier:
            nxt: List[str] = []
            for fn in frontier:
                for callee in self.edges.get(fn, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.append(callee)
            frontier = nxt
        return seen

    def add_edge(self, caller: str, callee: str, node: ast.Call,
                 path: str, bound: bool = True) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.call_sites.append(
            CallSite(caller=caller, callee=callee, node=node, path=path, bound=bound))

    # -- export ----------------------------------------------------------
    def to_json(self, sim_seeds: Optional[Set[str]] = None,
                sim_reachable: Optional[Set[str]] = None) -> dict:
        seeds = sim_seeds or set()
        reach = sim_reachable or set()
        return {
            "schema": CALLGRAPH_SCHEMA_VERSION,
            "modules": dict(sorted(self.modules.items())),
            "functions": [
                {
                    "qualname": f.qualname,
                    "module": f.module,
                    "path": f.path,
                    "line": f.lineno,
                    "generator": f.is_generator,
                    "class": f.class_name,
                    "sim_seed": f.qualname in seeds,
                    "sim_reachable": f.qualname in reach,
                }
                for _, f in sorted(self.functions.items())
            ],
            "edges": sorted(
                [caller, callee]
                for caller, callees in self.edges.items()
                for callee in callees
            ),
        }

    def write_json(self, fp: IO[str], sim_seeds: Optional[Set[str]] = None,
                   sim_reachable: Optional[Set[str]] = None) -> None:
        json.dump(self.to_json(sim_seeds, sim_reachable), fp, indent=2,
                  sort_keys=True)
        fp.write("\n")


# ---------------------------------------------------------------------------
# module naming


def module_name_for(path: str, root: Path) -> str:
    """Dotted module name for ``path`` rooted at package dir ``root``.

    ``src/repro/press/server.py`` under root ``src/repro`` becomes
    ``repro.press.server``; a package ``__init__.py`` names the package.
    """
    rel = Path(path).resolve().relative_to(root.resolve())
    parts = [root.name] + list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _iter_module_files(paths: Sequence[str]) -> List[Tuple[str, Path]]:
    """(file, package-root) pairs for every ``*.py`` under ``paths``."""
    out: List[Tuple[str, Path]] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend((str(f), path) for f in sorted(path.rglob("*.py"))
                       if "__pycache__" not in f.parts)
        elif path.suffix == ".py":
            out.append((str(path), path.parent))
    return out


# ---------------------------------------------------------------------------
# pass 1: indexing


class _ModuleRecord:
    """Everything pass 2/3 needs to know about one module."""

    def __init__(self, name: str, path: str, tree: ast.Module) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.imports: Dict[str, str] = {}  # alias -> dotted target
        self.top_functions: Dict[str, str] = {}  # name -> qualname
        self.top_classes: Dict[str, str] = {}  # name -> class qualname


def _annotation_name(ann: Optional[ast.AST]) -> Optional[str]:
    """The class name an annotation refers to, if it is a simple one.

    Handles ``Host``, ``"Endpoint"`` (string forward refs) and
    ``Optional[Host]`` / ``mod.Cls``; returns the trailing name.
    """
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.split(".")[-1].strip("'\" ") or None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Subscript) and isinstance(ann.slice, (ast.Name, ast.Constant)):
        value = ann.value
        name = _annotation_name(value)
        if name in ("Optional",):
            return _annotation_name(ann.slice)
        return None
    return None


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    args = getattr(node, "args", None)
    if args is None:
        return ()
    return tuple(a.arg for a in (args.posonlyargs + args.args))


def _is_generator(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            # yields inside *nested* functions don't count
            if _enclosing_function(child) is node:
                return True
    return False


def _attach_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._cg_parent = node  # type: ignore[attr-defined]


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    cur = getattr(node, "_cg_parent", None)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = getattr(cur, "_cg_parent", None)
    return None


class _Indexer(ast.NodeVisitor):
    """Pass 1: name every function/class in a module."""

    def __init__(self, record: _ModuleRecord, graph: CallGraph) -> None:
        self.record = record
        self.graph = graph
        self._stack: List[str] = [record.name]
        self._class_stack: List[Optional[ClassInfo]] = [None]

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.record.imports[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.record.imports[head] = head

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.record.imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = f"{self._stack[-1]}.{node.name}"
        bases = tuple(
            b for b in (_annotation_name(base) for base in node.bases)
            if b is not None
        )
        info = ClassInfo(
            qualname=qualname, module=self.record.name, name=node.name,
            lineno=node.lineno, bases=bases, methods={}, attr_types={},
            node=node,
        )
        self.graph.classes[qualname] = info
        self.graph.class_by_name.setdefault(node.name, []).append(qualname)
        if len(self._stack) == 1:
            self.record.top_classes[node.name] = qualname
        self._stack.append(qualname)
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()
        self._stack.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        parent = self._stack[-1]
        in_class = self._class_stack[-1] is not None and parent == \
            self._class_stack[-1].qualname  # type: ignore[union-attr]
        qualname = f"{parent}.{name}"
        cls = self._class_stack[-1]
        info = FunctionInfo(
            qualname=qualname,
            module=self.record.name,
            path=self.record.path,
            lineno=getattr(node, "lineno", 0),
            end_lineno=getattr(node, "end_lineno", getattr(node, "lineno", 0)),
            params=_param_names(node),
            is_generator=_is_generator(node),
            class_name=cls.name if (cls is not None and in_class) else None,
            node=node,
        )
        self.graph.functions[qualname] = info
        self.graph.methods_by_name.setdefault(name, []).append(qualname)
        if in_class and cls is not None:
            cls.methods[name] = qualname
        elif len(self._stack) == 1:
            self.record.top_functions[name] = qualname
        self._stack.append(f"{qualname}.<locals>")
        self._class_stack.append(None)
        self.generic_visit(node)
        self._class_stack.pop()
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)


# ---------------------------------------------------------------------------
# pass 2 + 3: typing and edges


class _Resolver:
    """Name/type resolution within one module, shared by passes 2 and 3."""

    def __init__(self, graph: CallGraph, records: Dict[str, _ModuleRecord]) -> None:
        self.graph = graph
        self.records = records

    # -- class lookup ----------------------------------------------------
    def class_named(self, name: str, module: str) -> Optional[str]:
        """Resolve a bare class name as seen from ``module``."""
        record = self.records.get(module)
        if record is not None:
            if name in record.top_classes:
                return record.top_classes[name]
            target = record.imports.get(name)
            if target is not None and target in self.graph.classes:
                return target
            if target is not None:
                # ``from x import C`` where x re-exports C: match by suffix
                tail = target.rsplit(".", 1)[-1]
                for qual in self.graph.class_by_name.get(tail, []):
                    return qual
        quals = self.graph.class_by_name.get(name, [])
        if len(quals) == 1:
            return quals[0]
        return None

    def method_of(self, class_qual: str, method: str,
                  _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Method lookup through project base classes (simple MRO walk)."""
        seen = _seen if _seen is not None else set()
        if class_qual in seen:
            return None
        seen.add(class_qual)
        cls = self.graph.classes.get(class_qual)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            base_qual = self.class_named(base, cls.module)
            if base_qual is not None:
                found = self.method_of(base_qual, method, seen)
                if found is not None:
                    return found
        return None

    def function_named(self, name: str, module: str) -> Optional[str]:
        """Resolve a bare function name as seen from ``module``."""
        record = self.records.get(module)
        if record is None:
            return None
        if name in record.top_functions:
            return record.top_functions[name]
        target = record.imports.get(name)
        if target is not None and target in self.graph.functions:
            return target
        return None

    def return_type(self, func_qual: str) -> Optional[str]:
        info = self.graph.functions.get(func_qual)
        if info is None:
            return None
        ann = getattr(info.node, "returns", None)
        name = _annotation_name(ann)
        if name is None:
            return None
        return self.class_named(name, info.module)


def _infer_attr_types(graph: CallGraph, records: Dict[str, _ModuleRecord],
                      resolver: _Resolver) -> None:
    """Pass 2: fill ``ClassInfo.attr_types`` from annotations and ctors."""
    for cls in graph.classes.values():
        for method_qual in cls.methods.values():
            fn = graph.functions[method_qual]
            node = fn.node
            ann_of_param: Dict[str, Optional[str]] = {}
            args = getattr(node, "args", None)
            if args is not None:
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    ann_of_param[arg.arg] = _annotation_name(arg.annotation)
            for stmt in ast.walk(node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann_name: Optional[str] = None
                if isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    ann_name = _annotation_name(stmt.annotation)
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                type_name: Optional[str] = ann_name
                if type_name is None and isinstance(value, ast.Name):
                    type_name = ann_of_param.get(value.id)
                if type_name is None and isinstance(value, ast.Call) \
                        and isinstance(value.func, ast.Name):
                    type_name = value.func.id
                if type_name is None:
                    continue
                qual = resolver.class_named(type_name, cls.module)
                if qual is not None:
                    cls.attr_types.setdefault(target.attr, qual)


class _EdgeBuilder:
    """Pass 3: emit call edges for one function."""

    def __init__(self, graph: CallGraph, resolver: _Resolver,
                 fn: FunctionInfo, record: _ModuleRecord) -> None:
        self.graph = graph
        self.resolver = resolver
        self.fn = fn
        self.record = record
        self.local_types: Dict[str, str] = {}
        self.local_funcs: Dict[str, str] = {}
        self._collect_locals()

    def _collect_locals(self) -> None:
        node = self.fn.node
        args = getattr(node, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                name = _annotation_name(arg.annotation)
                if name is not None:
                    qual = self.resolver.class_named(name, self.fn.module)
                    if qual is not None:
                        self.local_types[arg.arg] = qual
        for stmt in self._own_statements():
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_funcs[stmt.name] = \
                    f"{self.fn.qualname}.<locals>.{stmt.name}"
                continue
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                ann = _annotation_name(stmt.annotation)
                if ann is not None and isinstance(target, ast.Name):
                    qual = self.resolver.class_named(ann, self.fn.module)
                    if qual is not None:
                        self.local_types[target.id] = qual
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                qual = self._type_of_call(value)
                if qual is not None:
                    self.local_types[target.id] = qual

    def _own_statements(self) -> Iterable[ast.AST]:
        """This function's nodes, without descending into nested defs."""
        stack = list(getattr(self.fn.node, "body", []))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- expression typing -----------------------------------------------
    def _type_of_call(self, call: ast.Call) -> Optional[str]:
        """Type of a call expression: a constructed class or a project
        function's annotated return type."""
        callee, _bound = self._resolve_call(call)
        if callee is None:
            return None
        if callee.endswith(".__init__"):
            return callee.rsplit(".", 1)[0]
        return self.resolver.return_type(callee)

    def _type_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.fn.class_name is not None:
                return self.resolver.class_named(self.fn.class_name, self.fn.module)
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is not None:
                cls = self.graph.classes.get(base)
                if cls is not None:
                    return cls.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            return self._type_of_call(expr)
        return None

    # -- call resolution ---------------------------------------------------
    def _resolve_call(self, call: ast.Call) -> Tuple[Optional[str], bool]:
        """(callee qualname, bound) or (None, True) when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_funcs:
                return self.local_funcs[name], False
            fn = self.resolver.function_named(name, self.fn.module)
            if fn is not None:
                return fn, False
            cls = self.resolver.class_named(name, self.fn.module)
            if cls is not None:
                init = self.resolver.method_of(cls, "__init__")
                return init, True
            return None, True
        if isinstance(func, ast.Attribute):
            attr = func.attr
            # Class.method(...) unbound
            if isinstance(func.value, ast.Name):
                cls = self.resolver.class_named(func.value.id, self.fn.module)
                if cls is not None and func.value.id not in self.local_types \
                        and func.value.id != "self":
                    method = self.resolver.method_of(cls, attr)
                    if method is not None:
                        return method, False
                # module_alias.func(...)
                target = self.record.imports.get(func.value.id)
                if target is not None:
                    dotted = f"{target}.{attr}"
                    if dotted in self.graph.functions:
                        return dotted, False
                    if dotted in self.graph.classes:
                        return self.resolver.method_of(dotted, "__init__"), True
            base_type = self._type_of(func.value)
            if base_type is not None:
                method = self.resolver.method_of(base_type, attr)
                if method is not None:
                    return method, True
            # unique-name CHA fallback: one project class defines ``attr``
            candidates = [
                q for q in self.graph.methods_by_name.get(attr, [])
                if self.graph.functions[q].class_name is not None
            ]
            owners = {q.rsplit(".", 1)[0] for q in candidates}
            if len(owners) == 1 and candidates:
                return candidates[0], True
        return None, True

    def build(self) -> None:
        for node in self._own_statements():
            if not isinstance(node, ast.Call):
                continue
            callee, bound = self._resolve_call(node)
            if callee is not None and callee in self.graph.functions:
                self.graph.add_edge(self.fn.qualname, callee, node,
                                    self.fn.path, bound=bound)
            # callbacks: function objects passed as arguments
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                ref = self._resolve_reference(arg)
                if ref is not None:
                    self.graph.add_edge(self.fn.qualname, ref, node,
                                        self.fn.path, bound=True)

    def _resolve_reference(self, expr: ast.AST) -> Optional[str]:
        """A function *object* (not a call): local def, module function,
        or ``self._method`` passed as a callback."""
        if isinstance(expr, ast.Name):
            if expr.id in self.local_funcs:
                return self.local_funcs[expr.id]
            fn = self.resolver.function_named(expr.id, self.fn.module)
            if fn is not None:
                return fn
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and self.fn.class_name is not None:
            cls = self.resolver.class_named(self.fn.class_name, self.fn.module)
            if cls is not None:
                return self.resolver.method_of(cls, expr.attr)
        return None


# ---------------------------------------------------------------------------
# entry point


def build_callgraph(paths: Sequence[str]) -> CallGraph:
    """Parse every module under ``paths`` and build the call graph."""
    graph = CallGraph()
    records: Dict[str, _ModuleRecord] = {}
    for file_path, root in _iter_module_files(paths):
        source = Path(file_path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=file_path)
        _attach_parents(tree)
        name = module_name_for(file_path, root)
        record = _ModuleRecord(name, file_path, tree)
        records[name] = record
        graph.modules[name] = file_path
        graph.trees[name] = tree
        graph.sources[file_path] = source
        _Indexer(record, graph).visit(tree)
    resolver = _Resolver(graph, records)
    _infer_attr_types(graph, records, resolver)
    for record in records.values():
        for fn in list(graph.functions.values()):
            if fn.module != record.name:
                continue
            _EdgeBuilder(graph, resolver, fn, record).build()
    return graph
