"""Docs cross-reference checker (``repro lint --docs``).

Documentation rots faster than code: a renamed file, a retired CLI
subcommand, or a renumbered lint rule silently turns README examples
into lies.  This pass makes the docs layer self-verifying — every
*checkable* reference in the markdown corpus (``README.md``,
``ARTIFACTS.md``, ``docs/*.md``) is resolved against the tree:

* **file paths** in inline code spans, fenced command lines, and
  markdown link targets must exist — resolved against the repo root,
  the referencing document's directory, and ``src``/``src/repro`` (so
  ``press/server.py`` and ``src/repro/press/server.py`` both resolve).
  Paths under ``results/`` are generated at run time and are skipped;
  placeholder tokens (``<version>``, globs, ``$VAR``) are skipped.
* **CLI subcommands** — ``repro X`` / ``python -m repro X`` — must be
  registered in :func:`repro.cli.build_parser`.
* **make targets** — ``make X`` — must exist in the ``Makefile``.
* **``BENCH_*.json`` documents** must exist under ``benchmarks/``
  (unless explicitly referenced under ``results/``, where bench runs
  write their regenerated copies).
* **rule ids** (``REP001``...) must exist in the reprolint registry.

Findings are errors: a stale reference either gets fixed or the doc
gets corrected.  CI runs this as a blocking job, and the
``docs-check`` artifact in ``repro reproduce-all`` records the report
in the manifest.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: documents scanned by default (relative to the repo root)
DOC_GLOBS: Tuple[str, ...] = ("README.md", "ARTIFACTS.md", "docs/*.md")

#: report layout version (the ``docs-check`` artifact)
DOCCHECK_SCHEMA = 1

_INLINE_CODE = re.compile(r"`([^`\n]+)`")
_LINK_TARGET = re.compile(r"\[[^\]]*\]\(([^)\s#]+)[^)]*\)")
_FENCE = re.compile(r"^\s*(```|~~~)")
_CLI = re.compile(
    r"(?<!from )(?:python3? -m repro|(?<![\w./`-])repro)"
    r"\s+(?:--?[\w-]+\s+)*([a-z][a-z0-9-]*)")
_MAKE = re.compile(r"(?<![\w./-])make\s+([a-z][A-Za-z0-9_-]+)")
_BENCH = re.compile(r"\bBENCH_[A-Za-z_]+\.json\b")
_RULE_ID = re.compile(r"\bREP\d{3}\b")
_PATHLIKE = re.compile(r"^[\w.\-]+(?:/[\w.\-]+)+/?$|^[\w.\-]+/$")

#: extensions a bare token must carry to be treated as a file reference
_FILE_EXTENSIONS = (".py", ".md", ".json", ".jsonl", ".yml", ".yaml",
                    ".toml", ".cff", ".sh", ".txt", ".csv", ".ini", ".cfg")

#: tokens containing any of these are templates/globs, not references
_PLACEHOLDER_CHARS = ("<", ">", "*", "{", "}", "$", "|")


@dataclass(frozen=True)
class DocFinding:
    """One stale reference."""

    doc: str
    line: int
    category: str  # path | cli | make | bench | rule | link
    token: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"doc": self.doc, "line": self.line,
                "category": self.category,
                "token": self.token, "message": self.message}


@dataclass
class DocCheckResult:
    """Outcome of one docs sweep."""

    docs_scanned: int = 0
    refs_checked: int = 0
    findings: List[DocFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": DOCCHECK_SCHEMA,
            "ok": self.ok,
            "docs_scanned": self.docs_scanned,
            "refs_checked": self.refs_checked,
            "findings": [f.to_dict() for f in sorted(
                self.findings, key=lambda f: (f.doc, f.line, f.token))],
        }


def _make_targets(root: Path) -> Set[str]:
    makefile = root / "Makefile"
    targets: Set[str] = set()
    if not makefile.exists():
        return targets
    for line in makefile.read_text(encoding="utf-8").splitlines():
        match = re.match(r"^([A-Za-z][\w-]*)\s*:", line)
        if match:
            targets.add(match.group(1))
    return targets


def _cli_subcommands() -> Set[str]:
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return {str(choice) for choice in action.choices or ()}
    return set()


def _rule_ids() -> Set[str]:
    from repro.analysis.rules import RULES

    return set(RULES)


def _iter_reference_lines(text: str) -> Iterator[Tuple[int, str, bool]]:
    """(line number, text to scan, in_fence) for every line; inline code
    spans are extracted outside fences, whole lines inside fences."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        yield lineno, line, in_fence


def _is_pathlike(token: str) -> bool:
    if any(ch in token for ch in _PLACEHOLDER_CHARS) or "://" in token:
        return False
    if not _PATHLIKE.match(token):
        return False
    return token.endswith("/") or token.endswith(_FILE_EXTENSIONS)


def _resolve(token: str, root: Path, doc_dir: Path) -> bool:
    candidates = (root / token, doc_dir / token,
                  root / "src" / token, root / "src" / "repro" / token)
    return any(c.exists() for c in candidates)


class _DocScanner:
    """One sweep over one markdown document."""

    def __init__(self, root: Path, doc: Path, subcommands: Set[str],
                 targets: Set[str], rules: Set[str],
                 result: DocCheckResult) -> None:
        self.root = root
        self.doc = doc
        self.rel = str(doc.relative_to(root))
        self.subcommands = subcommands
        self.targets = targets
        self.rules = rules
        self.result = result

    def _finding(self, line: int, category: str, token: str,
                 message: str) -> None:
        self.result.findings.append(DocFinding(
            doc=self.rel, line=line, category=category, token=token,
            message=message))

    def _check_path(self, line: int, token: str,
                    category: str = "path") -> None:
        token = token.rstrip(".,;:")
        if not _is_pathlike(token):
            return
        if token.startswith("results/") or token.startswith("/"):
            return  # run-time outputs / absolute paths are not committed
        self.result.refs_checked += 1
        if not _resolve(token, self.root, self.doc.parent):
            self._finding(line, category, token,
                          f"referenced path {token!r} does not exist")

    def _check_commands(self, line: int, text: str) -> None:
        for match in _CLI.finditer(text):
            sub = match.group(1)
            self.result.refs_checked += 1
            if sub not in self.subcommands:
                self._finding(line, "cli", sub,
                              f"`repro {sub}` is not a CLI subcommand "
                              f"(have: {', '.join(sorted(self.subcommands))})")
        for match in _MAKE.finditer(text):
            target = match.group(1)
            self.result.refs_checked += 1
            if target not in self.targets:
                self._finding(line, "make", target,
                              f"`make {target}` is not a Makefile target")

    def _check_identifiers(self, line: int, text: str) -> None:
        """Bench documents and rule ids are unambiguous patterns —
        checked everywhere, prose included."""
        for match in _BENCH.finditer(text):
            name = match.group(0)
            # results/BENCH_*.json are regenerated copies; the committed
            # twin must still exist under benchmarks/
            self.result.refs_checked += 1
            if not (self.root / "benchmarks" / name).exists():
                self._finding(line, "bench", name,
                              f"{name} does not exist under benchmarks/")
        for match in _RULE_ID.finditer(text):
            rule = match.group(0)
            self.result.refs_checked += 1
            if rule not in self.rules:
                self._finding(line, "rule", rule,
                              f"{rule} is not a registered lint rule")

    def scan(self) -> None:
        text = self.doc.read_text(encoding="utf-8")
        for lineno, line, in_fence in _iter_reference_lines(text):
            self._check_identifiers(lineno, line)
            if in_fence:
                self._check_commands(lineno, line)
                for word in line.split():
                    self._check_path(lineno, word)
                continue
            for match in _LINK_TARGET.finditer(line):
                target = match.group(1)
                if "://" in target or target.startswith("mailto:"):
                    continue
                self.result.refs_checked += 1
                if not _resolve(target, self.root, self.doc.parent):
                    self._finding(lineno, "link", target,
                                  f"link target {target!r} does not exist")
            for match in _INLINE_CODE.finditer(line):
                span = match.group(1)
                self._check_commands(lineno, span)
                if " " not in span:
                    self._check_path(lineno, span)


def default_docs(root: Path) -> List[Path]:
    docs: List[Path] = []
    for pattern in DOC_GLOBS:
        docs.extend(sorted(root.glob(pattern)))
    return [d for d in docs if d.is_file()]


def check_docs(root: str = ".",
               docs: Optional[Sequence[str]] = None) -> DocCheckResult:
    """Sweep the markdown corpus; every finding is a stale reference."""
    root_path = Path(root).resolve()
    doc_paths = ([root_path / d for d in docs] if docs
                 else default_docs(root_path))
    result = DocCheckResult()
    subcommands = _cli_subcommands()
    targets = _make_targets(root_path)
    rules = _rule_ids()
    for doc in doc_paths:
        if not doc.exists():
            result.findings.append(DocFinding(
                doc=str(doc), line=0, category="path", token=str(doc),
                message=f"document {doc} does not exist"))
            continue
        result.docs_scanned += 1
        _DocScanner(root_path, doc, subcommands, targets, rules,
                    result).scan()
    return result


def format_doccheck(result: DocCheckResult) -> str:
    lines = [f"docs check: {result.docs_scanned} document(s), "
             f"{result.refs_checked} reference(s) verified"]
    for f in sorted(result.findings, key=lambda f: (f.doc, f.line, f.token)):
        lines.append(f"  {f.doc}:{f.line}: [{f.category}] {f.message}")
    lines.append("docs check PASSED" if result.ok else
                 f"docs check FAILED ({len(result.findings)} stale "
                 f"reference(s))")
    return "\n".join(lines)
