"""Whole-program flow analysis: the engine behind ``repro lint --flow``.

Built on the call graph from :mod:`repro.analysis.callgraph`, this module
implements the three interprocedural checks reprolint's one-function-at-a-
time engine cannot do:

* **Sim-scope propagation** — seed every function defined under a
  simulation package dir (the old path-suffix heuristic) and close over
  call edges.  REP001/REP002 then fire on any function *reachable from*
  simulation code, e.g. an ``obs/`` helper invoked from a sim process.
  The result is by construction a superset of the path heuristic; the
  difference is reported as ``newly_covered``.
* **Message-protocol consistency** (REP008–REP010) — every literal string
  that flows into a parameter literally named ``kind`` of a project
  function (``Message(kind=...)``, ``control_send(dst, "hb")``, ...)
  counts as *sent*; every ``msg.kind == "..."`` / ``kind in ("...",)``
  comparison and every ``getattr(self, f"_on_{msg.kind}")`` dispatch
  counts as *handled*.  Sent-but-never-handled is an ERROR (the message
  silently vanishes, mimicking a fault); handled-but-never-sent is dead
  protocol (WARNING); a ``_DROPPABLE`` kind with no dispatch branch is an
  ERROR (the kind is *always* dropped, not just under overload).
* **Lost generators** (REP011–REP012) — a generator function called as a
  bare expression statement creates a coroutine and discards it: the
  protocol step never runs.  Likewise an ``Event`` constructed and never
  referenced again can never fire.

Known limits (documented in ``docs/ANALYSIS.md``): kinds are matched as
strings, so two queues carrying disjoint kind subsets are merged into one
vocabulary; kinds sent from non-literal expressions are counted as
*dynamic sends* and reported in the JSON summary rather than matched.

Findings respect the same ``# reprolint: disable=REPxxx`` suppressions
and per-rule path allowlists as the single-file engine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_callgraph,
)
from repro.analysis.lint import (
    Finding,
    _suppressions,
    lint_source,
    path_is_sim_scope,
)
from repro.analysis.racecheck import RaceAnalysis, analyze_races
from repro.analysis.rules import RULES, Severity

#: rules whose scope is widened by call-graph propagation
PROPAGATED_RULES = ("REP001", "REP002")


@dataclass(frozen=True)
class KindSite:
    """One place a message kind is sent or matched."""

    kind: str
    path: str
    line: int
    col: int
    #: qualname of the enclosing function, if any
    func: Optional[str] = None


@dataclass
class FlowResult:
    """Everything the flow pass learned, for reporters and the CLI."""

    findings: List[Finding]
    suppressed: int
    files_scanned: int
    graph: CallGraph
    sim_seeds: Set[str]
    sim_reachable: Set[str]
    #: sim-reachable functions the path heuristic missed, sorted
    newly_covered: Tuple[str, ...]
    sent: Dict[str, List[KindSite]] = field(default_factory=dict)
    handled: Dict[str, List[KindSite]] = field(default_factory=dict)
    #: class qualname -> declared droppable kinds
    droppable: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: send sites whose kind argument is not a literal (unmatchable)
    dynamic_sends: int = 0
    #: the race detector's static tier (effects + REP014/REP015)
    races: Optional["RaceAnalysis"] = None
    #: path -> line -> ids whose suppressions dropped a flow finding
    used_suppressions: Dict[str, Dict[int, Set[str]]] = field(
        default_factory=dict)

    def to_dict(self) -> dict:
        doc = {
            "sim_seeds": len(self.sim_seeds),
            "sim_reachable": len(self.sim_reachable),
            "newly_covered": list(self.newly_covered),
            "protocol": {
                "sent_kinds": sorted(self.sent),
                "handled_kinds": sorted(self.handled),
                "droppable": {
                    cls: list(kinds)
                    for cls, kinds in sorted(self.droppable.items())
                },
                "dynamic_sends": self.dynamic_sends,
            },
        }
        if self.races is not None:
            doc["races"] = self.races.to_dict()
        return doc


# ---------------------------------------------------------------------------
# shared AST helpers


def _own_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    """A function's nodes, without descending into nested defs."""
    stack = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _literal_strings(expr: ast.AST) -> Optional[List[str]]:
    """String constants of a literal tuple/set/list/frozenset, else None."""
    if isinstance(expr, (ast.Tuple, ast.Set, ast.List)):
        out: List[str] = []
        for elt in expr.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("frozenset", "set", "tuple", "list") \
            and len(expr.args) == 1:
        return _literal_strings(expr.args[0])
    return None


def _is_kind_read(expr: ast.AST, aliases: Set[str]) -> bool:
    """``<x>.kind`` or a name bound from one."""
    if isinstance(expr, ast.Attribute) and expr.attr == "kind":
        return True
    return isinstance(expr, ast.Name) and expr.id in aliases


def _kind_aliases(fn: FunctionInfo) -> Set[str]:
    """Names in ``fn`` that hold a message kind: parameters named ``kind``
    plus locals assigned from a ``.kind`` attribute."""
    aliases: Set[str] = {p for p in fn.params if p == "kind"}
    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr == "kind":
            aliases.add(node.targets[0].id)
    return aliases


def _class_qual_of(fn: FunctionInfo) -> Optional[str]:
    if fn.class_name is None:
        return None
    return fn.qualname.rsplit(".", 1)[0]


# ---------------------------------------------------------------------------
# dynamic dispatch:  getattr(self, f"_on_{msg.kind}")


def _dispatch_prefix(call: ast.Call) -> Optional[str]:
    """The constant prefix of a ``getattr(self, f"<prefix>{...kind}")``
    dynamic-dispatch call, e.g. ``"_on_"``; None if not that shape."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "getattr"
            and len(call.args) >= 2):
        return None
    target = call.args[1]
    if not isinstance(target, ast.JoinedStr) or not target.values:
        return None
    head = target.values[0]
    if not (isinstance(head, ast.Constant) and isinstance(head.value, str)):
        return None
    has_kind = any(
        isinstance(part, ast.FormattedValue)
        and isinstance(part.value, ast.Attribute)
        and part.value.attr == "kind"
        for part in target.values
    )
    return head.value if has_kind else None


def _apply_dynamic_dispatch(
    graph: CallGraph,
    handled: Dict[str, List[KindSite]],
    class_handled: Dict[str, Set[str]],
) -> None:
    """Register ``getattr(self, f"_on_{kind}")`` dispatchers: every
    ``<prefix><kind>`` method of the class becomes a handled kind *and* a
    call edge (so sim-scope propagation reaches the handlers)."""
    for fn in list(graph.functions.values()):
        cls_qual = _class_qual_of(fn)
        if cls_qual is None:
            continue
        cls = graph.classes.get(cls_qual)
        if cls is None:
            continue
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            prefix = _dispatch_prefix(node)
            if prefix is None:
                continue
            for method_name, method_qual in sorted(cls.methods.items()):
                if not method_name.startswith(prefix) \
                        or method_name == prefix:
                    continue
                kind = method_name[len(prefix):]
                site = KindSite(kind=kind, path=fn.path, line=node.lineno,
                                col=node.col_offset, func=fn.qualname)
                handled.setdefault(kind, []).append(site)
                class_handled.setdefault(cls_qual, set()).add(kind)
                graph.add_edge(fn.qualname, method_qual, node, fn.path,
                               bound=True)


# ---------------------------------------------------------------------------
# protocol: sent kinds


def _kind_param_index(callee: FunctionInfo) -> Optional[int]:
    try:
        return callee.params.index("kind")
    except ValueError:
        return None


def _kind_argument(site: CallSite, callee: FunctionInfo) -> Optional[ast.expr]:
    """The expression passed for the callee's ``kind`` parameter."""
    idx = _kind_param_index(callee)
    if idx is None:
        return None
    for kw in site.node.keywords:
        if kw.arg == "kind":
            return kw.value
    if site.bound and callee.params and callee.params[0] == "self":
        idx -= 1
    if idx < 0:
        return None
    args = site.node.args
    if any(isinstance(a, ast.Starred) for a in args[: idx + 1]):
        return None
    if idx < len(args):
        return args[idx]
    return None


def _call_matches_callee(site: CallSite) -> bool:
    """True if ``site.node`` really invokes ``site.callee`` (filters the
    callback-reference edges, where the callee is an *argument*)."""
    func = site.node.func
    tail = site.callee.rsplit(".", 1)[-1]
    if isinstance(func, ast.Name):
        return func.id == tail or tail == "__init__"
    if isinstance(func, ast.Attribute):
        return func.attr == tail or tail == "__init__"
    return False


def _collect_sent(graph: CallGraph) -> Tuple[Dict[str, List[KindSite]], int]:
    sent: Dict[str, List[KindSite]] = {}
    dynamic = 0
    for site in graph.call_sites:
        callee = graph.functions.get(site.callee)
        if callee is None or not _call_matches_callee(site):
            continue
        arg = _kind_argument(site, callee)
        if arg is None:
            continue
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            ks = KindSite(kind=arg.value, path=site.path,
                          line=site.node.lineno, col=site.node.col_offset,
                          func=site.caller)
            sent.setdefault(arg.value, []).append(ks)
            continue
        caller = graph.functions.get(site.caller)
        if caller is not None and isinstance(arg, ast.Name) \
                and arg.id in _kind_aliases(caller):
            continue  # forwarding a kind parameter; upstream site counts
        dynamic += 1
    return sent, dynamic


# ---------------------------------------------------------------------------
# protocol: handled kinds and droppable declarations


def _collect_handled(
    graph: CallGraph,
) -> Tuple[Dict[str, List[KindSite]], Dict[str, Set[str]]]:
    handled: Dict[str, List[KindSite]] = {}
    class_handled: Dict[str, Set[str]] = {}

    def register(kind: str, fn: FunctionInfo, node: ast.AST) -> None:
        site = KindSite(kind=kind, path=fn.path,
                        line=getattr(node, "lineno", fn.lineno),
                        col=getattr(node, "col_offset", 0), func=fn.qualname)
        handled.setdefault(kind, []).append(site)
        cls_qual = _class_qual_of(fn)
        if cls_qual is not None:
            class_handled.setdefault(cls_qual, set()).add(kind)

    for fn in graph.functions.values():
        aliases = _kind_aliases(fn)
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            op = node.ops[0]
            left, right = node.left, node.comparators[0]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for subj, lit in ((left, right), (right, left)):
                    if _is_kind_read(subj, aliases) \
                            and isinstance(lit, ast.Constant) \
                            and isinstance(lit.value, str):
                        register(lit.value, fn, node)
            elif isinstance(op, (ast.In, ast.NotIn)) \
                    and _is_kind_read(left, aliases):
                kinds = _literal_strings(right)
                for kind in kinds or ():
                    register(kind, fn, node)
    return handled, class_handled


def _collect_droppable(graph: CallGraph) -> Dict[str, Tuple[str, ...]]:
    """Class-level ``*DROPPABLE*`` constants and their literal kinds."""
    out: Dict[str, Tuple[str, ...]] = {}
    for cls in graph.classes.values():
        for stmt in getattr(cls.node, "body", []):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if not (isinstance(target, ast.Name)
                    and "DROPPABLE" in target.id.upper()) or value is None:
                continue
            kinds = _literal_strings(value)
            if kinds:
                out[cls.qualname] = tuple(kinds)
    return out


# ---------------------------------------------------------------------------
# lost generators / orphan events


def _bare_generator_findings(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()
    for site in graph.call_sites:
        callee = graph.functions.get(site.callee)
        if callee is None or not callee.is_generator:
            continue
        if not _call_matches_callee(site):
            continue
        parent = getattr(site.node, "_cg_parent", None)
        if not isinstance(parent, ast.Expr):
            continue
        key = (site.path, site.node.lineno)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            rule="REP011", severity=RULES["REP011"].severity,
            path=site.path, line=site.node.lineno, col=site.node.col_offset,
            message=(f"generator {callee.name}() called as a bare "
                     "statement: the process body never runs (wrap in "
                     "env.process(...) or yield from)"),
        ))
    return findings


def _is_event_ctor(call: ast.Call, graph: CallGraph,
                   caller: FunctionInfo) -> bool:
    """``Event(...)`` — resolved to a project Event class or by bare name."""
    func = call.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    return name == "Event"


def _orphan_event_findings(graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for fn in graph.functions.values():
        assigned: Dict[str, ast.Call] = {}
        loads: Set[str] = set()
        bare: List[ast.Call] = []
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call) \
                    and _is_event_ctor(node.value, graph, fn):
                assigned[node.targets[0].id] = node.value
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call) \
                    and _is_event_ctor(node.value, graph, fn):
                bare.append(node.value)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads.add(node.id)
        for name, call in sorted(assigned.items()):
            if name not in loads:
                findings.append(Finding(
                    rule="REP012", severity=RULES["REP012"].severity,
                    path=fn.path, line=call.lineno, col=call.col_offset,
                    message=(f"Event bound to '{name}' is never yielded, "
                             "succeeded, or referenced again"),
                ))
        for call in bare:
            findings.append(Finding(
                rule="REP012", severity=RULES["REP012"].severity,
                path=fn.path, line=call.lineno, col=call.col_offset,
                message=("Event constructed and immediately discarded: it "
                         "can never fire"),
            ))
    return findings


# ---------------------------------------------------------------------------
# sim-scope propagation


def _propagated_findings(graph: CallGraph,
                         newly_covered: Sequence[str]) -> List[Finding]:
    """Re-lint files holding newly covered functions with sim scope forced
    on, keeping REP001/REP002 findings inside those functions' ranges."""
    by_path: Dict[str, List[FunctionInfo]] = {}
    for qual in newly_covered:
        fn = graph.functions[qual]
        by_path.setdefault(fn.path, []).append(fn)
    findings: List[Finding] = []
    for path, fns in sorted(by_path.items()):
        source = graph.sources.get(path)
        if source is None:
            continue
        result = lint_source(source, path, is_sim=True)
        for finding in result.findings:
            if finding.rule not in PROPAGATED_RULES:
                continue
            owner = next((f for f in fns if f.covers(finding.line)), None)
            if owner is None:
                continue
            findings.append(Finding(
                rule=finding.rule, severity=finding.severity,
                path=finding.path, line=finding.line, col=finding.col,
                message=(f"{finding.message} "
                         f"[sim-reachable via {owner.qualname}]"),
            ))
    return findings


# ---------------------------------------------------------------------------
# suppression / allowlist filtering


def _filter(
    findings: List[Finding], graph: CallGraph,
) -> Tuple[List[Finding], int, Dict[str, Dict[int, Set[str]]]]:
    suppress_cache: Dict[str, Dict[int, Set[str]]] = {}
    kept: List[Finding] = []
    used: Dict[str, Dict[int, Set[str]]] = {}
    dropped = 0
    for finding in findings:
        rule = RULES.get(finding.rule)
        if rule is not None and any(
                finding.path.endswith(sfx) for sfx in rule.allowlist):
            dropped += 1
            continue
        if finding.path not in suppress_cache:
            source = graph.sources.get(finding.path, "")
            suppress_cache[finding.path] = _suppressions(source)
        ids = suppress_cache[finding.path].get(finding.line, set())
        if finding.rule in ids:
            used.setdefault(finding.path, {}).setdefault(
                finding.line, set()).add(finding.rule)
            dropped += 1
        elif "ALL" in ids:
            used.setdefault(finding.path, {}).setdefault(
                finding.line, set()).add("ALL")
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped, used


# ---------------------------------------------------------------------------
# entry point


def analyze_flow(paths: Sequence[str]) -> FlowResult:
    """Run the whole-program pass over every module under ``paths``."""
    graph = build_callgraph(paths)

    handled, class_handled = _collect_handled(graph)
    # dynamic dispatch adds both handled kinds and call edges, so it must
    # run before reachability is computed
    _apply_dynamic_dispatch(graph, handled, class_handled)

    sim_seeds = {
        qual for qual, fn in graph.functions.items()
        if path_is_sim_scope(fn.path)
    }
    sim_reachable = graph.reachable_from(sim_seeds)
    newly_covered = tuple(sorted(
        qual for qual in sim_reachable
        if not path_is_sim_scope(graph.functions[qual].path)
    ))

    findings: List[Finding] = []
    findings.extend(_propagated_findings(graph, newly_covered))

    sent, dynamic_sends = _collect_sent(graph)
    droppable = _collect_droppable(graph)

    # REP008: sent but matched by no receiver branch anywhere
    for kind in sorted(set(sent) - set(handled)):
        for site in sent[kind]:
            findings.append(Finding(
                rule="REP008", severity=RULES["REP008"].severity,
                path=site.path, line=site.line, col=site.col,
                message=(f"kind '{kind}' is sent here but no receiver "
                         "matches it: the message vanishes at dispatch"),
            ))

    # REP009: dispatch branch for a kind nothing constructs (one finding
    # per kind, at its first branch)
    for kind in sorted(set(handled) - set(sent)):
        site = min(handled[kind], key=lambda s: (s.path, s.line))
        findings.append(Finding(
            rule="REP009", severity=RULES["REP009"].severity,
            path=site.path, line=site.line, col=site.col,
            message=(f"branch matches kind '{kind}' but no sender "
                     "constructs it: dead protocol"
                     + (" (dynamic sends present; verify by hand)"
                        if dynamic_sends else "")),
        ))

    # REP010: droppable kinds must still have a real dispatch branch in
    # their class (the droppable check itself is not a handler)
    for cls_qual, kinds in sorted(droppable.items()):
        cls = graph.classes[cls_qual]
        missing = [k for k in kinds
                   if k not in class_handled.get(cls_qual, set())]
        for kind in missing:
            findings.append(Finding(
                rule="REP010", severity=RULES["REP010"].severity,
                path=graph.modules.get(cls.module, ""), line=cls.lineno,
                col=0,
                message=(f"kind '{kind}' is declared droppable by "
                         f"{cls.name} but has no dispatch branch: it is "
                         "always dropped, not just under overload"),
            ))

    findings.extend(_bare_generator_findings(graph))
    findings.extend(_orphan_event_findings(graph))

    # race detector, static tier: effect analysis + REP014/REP015
    races = analyze_races(graph)
    findings.extend(races.findings)

    kept, suppressed, used = _filter(findings, graph)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return FlowResult(
        findings=kept,
        suppressed=suppressed,
        files_scanned=len(graph.modules),
        graph=graph,
        sim_seeds=sim_seeds,
        sim_reachable=sim_reachable,
        newly_covered=newly_covered,
        sent=sent,
        handled=handled,
        droppable=droppable,
        dynamic_sends=dynamic_sends,
        races=races,
        used_suppressions=used,
    )
