"""reprolint: the AST engine behind ``repro lint``.

One parse per file, two passes: a pre-scan indexes imports and
set-typed symbols (names annotated ``Set[...]`` or assigned set
literals/constructors), then a single visitor emits findings for the
rules in :mod:`repro.analysis.rules`.

Findings are suppressed by a ``# reprolint: disable=REPxxx`` comment on
the offending line (comma-separate several IDs, or ``disable=all``).
Per-rule path allowlists live on the :class:`~repro.analysis.rules.Rule`
itself, so ``repro lint --list-rules`` shows them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.rules import RULES, SIM_SCOPE_DIRS, Severity

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")

#: dotted call targets that read the host clock
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: methods in this repo that return sets (directory/membership queries)
_SET_RETURNING = frozenset(
    {"holders", "files_of", "known_nodes", "_neighbors", "keys",
     "difference", "union", "intersection", "symmetric_difference"}
)

#: method names whose call inside a loop body counts as an effect:
#: message sends, event scheduling, and membership/state mutation.
_EFFECT_METHODS = frozenset(
    {
        "send", "multicast", "datagram", "control_send", "control_broadcast",
        "schedule", "process", "succeed", "fail", "timeout", "put",
        "force_put", "emit", "mark", "emit_marker", "inject", "repair",
        "kill", "start", "stop", "crash", "revive", "publish",
        "add", "discard", "remove", "pop", "update", "clear",
        "append", "extend", "setdefault", "inc", "dec", "set",
        "drop_node", "replace_node",
    }
)

_SCHEDULERS = frozenset({"timeout", "schedule", "succeed", "fail"})

#: span-opening methods on a SpanRecorder-ish receiver; binding one of
#: these marks the enclosing function as span-aware (REP013 scope)
_SPAN_OPENERS = frozenset({"start", "root", "event", "probe_root"})


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


@dataclass
class LintResult:
    """Findings plus scan bookkeeping for the reporters."""

    findings: List[Finding]
    files_scanned: int
    suppressed: int = 0
    #: path -> line -> rule ids declared in ``# reprolint: disable=`` comments
    declared_suppressions: Dict[str, Dict[int, Set[str]]] = \
        dataclass_field(default_factory=dict)
    #: path -> line -> ids that actually dropped a finding ("ALL" included)
    used_suppressions: Dict[str, Dict[int, Set[str]]] = \
        dataclass_field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


# ---------------------------------------------------------------------------
# helpers


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _is_zero_or_negative_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return "zero" if node.value == 0 else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant) \
            and isinstance(node.operand.value, (int, float)):
        return "negative"
    return None


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed by a comment on that line.

    Only real ``#`` comments count — a ``reprolint: disable=`` example
    quoted inside a docstring is documentation, not a suppression.  Ids
    may be comma- and/or whitespace-separated; a ``--`` (or any other
    non-id character) ends the id list, so justification prose can
    follow: ``# reprolint: disable=REP014 -- writers touch disjoint
    keys``.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if m:
            ids = {t.strip().upper()
                   for t in re.split(r"[,\s]+", m.group(1)) if t.strip()}
            out.setdefault(tok.start[0], set()).update(ids)
    return out


def path_is_sim_scope(path: str) -> bool:
    """True if ``path`` lives under a simulation-reachable package dir."""
    parts = Path(path).parts
    if "repro" in parts:
        rest = parts[parts.index("repro") + 1:]
        return bool(rest) and rest[0] in SIM_SCOPE_DIRS
    return any(p in SIM_SCOPE_DIRS for p in parts)


def _function_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(child)


def _is_span_scope(func: ast.AST) -> bool:
    """True if ``func`` participates in causal tracing (REP013 scope).

    Span-aware means: it takes a ``ctx`` parameter, or it binds the
    result of a span-opening call (``<...span...>.start/root/event/
    probe_root``).  Bare ``event()`` expression statements don't qualify
    — emitting an annotation on a caller-owned span doesn't make the
    function responsible for propagating context.
    """
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        if arg.arg == "ctx":
            return True
    for node in _own_statements(func):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Attribute) \
                and value.func.attr in _SPAN_OPENERS:
            dotted = _dotted_name(value.func.value)
            if dotted is not None and "span" in dotted.lower():
                return True
    return False


class _ModuleIndex:
    """Pre-scan: import aliases and set-typed symbols.

    Set-typed *names* are tracked per enclosing function (a name bound to
    a list in one method must not inherit set-ness from a sibling);
    ``self.<attr>`` symbols are tracked module-wide, since attributes are
    shared state across methods.
    """

    #: scope key for module-level bindings
    MODULE_SCOPE = 0

    def __init__(self, tree: ast.Module) -> None:
        self.imports: Dict[str, str] = {}
        self.set_attrs: Set[str] = set()
        self.func_sets: Dict[int, Set[str]] = {self.MODULE_SCOPE: set()}

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.imports[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            elif isinstance(node, ast.AnnAssign) \
                    and self._is_set_annotation(node.annotation) \
                    and isinstance(node.target, ast.Attribute) \
                    and isinstance(node.target.value, ast.Name) \
                    and node.target.value.id == "self":
                self.set_attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        self.set_attrs.add(target.attr)

        scopes = [(self.MODULE_SCOPE, tree)] + \
            [(id(fn), fn) for fn in _function_nodes(tree)]
        for key, scope in scopes:
            names = self.func_sets.setdefault(key, set())
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = scope.args
                for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                    if arg.annotation is not None \
                            and self._is_set_annotation(arg.annotation):
                        names.add(arg.arg)
                walker = _own_statements(scope)
            else:
                walker = (n for stmt in scope.body
                          if not isinstance(stmt, (ast.FunctionDef,
                                                   ast.AsyncFunctionDef,
                                                   ast.ClassDef))
                          for n in ast.walk(stmt))
            statements = list(walker)
            for node in statements:
                if isinstance(node, ast.AnnAssign) \
                        and self._is_set_annotation(node.annotation) \
                        and isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            # Set algebra over known symbols (``others = self.view - {x}``)
            # propagates unorderedness; two sweeps reach the chains this
            # codebase actually contains.
            for _ in range(2):
                for node in statements:
                    if isinstance(node, ast.Assign) \
                            and self._derives_set(node.value, names):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                names.add(target.id)

    def _derives_set(self, value: ast.AST, names: Set[str]) -> bool:
        if self._is_set_expr(value):
            return True
        if isinstance(value, ast.BinOp) and isinstance(
                value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._derives_set(value.left, names)
                    or self._derives_set(value.right, names))
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            return value.func.attr in _SET_RETURNING
        if isinstance(value, ast.Name):
            return value.id in names
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name) \
                and value.value.id == "self":
            return value.attr in self.set_attrs
        return False

    @staticmethod
    def _is_set_annotation(ann: ast.AST) -> bool:
        text = ast.unparse(ann) if hasattr(ast, "unparse") else ""
        return bool(re.match(r"(typing\.)?(Set|FrozenSet|set|frozenset)\b", text))

    @staticmethod
    def _is_set_expr(value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset"))

    def resolve(self, dotted: str) -> Optional[str]:
        """Map the head of ``dotted`` through the import table.

        Returns None when the head is not an imported name — the caller
        must not match module-level rules against local variables.
        """
        head, _, rest = dotted.partition(".")
        base = self.imports.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base


class _Visitor(ast.NodeVisitor):
    """Single-pass finding emitter; see the rule registry for semantics."""

    def __init__(self, path: str, index: _ModuleIndex, is_sim: bool) -> None:
        self.path = path
        self.index = index
        self.is_sim = is_sim
        self.findings: List[Finding] = []
        self._scope: List[int] = [_ModuleIndex.MODULE_SCOPE]
        self._span_scope: List[bool] = [False]

    def _scope_names(self) -> Set[str]:
        out: Set[str] = set()
        for key in self._scope:
            out |= self.index.func_sets.get(key, set())
        return out

    # -- plumbing --------------------------------------------------------
    def _emit(self, rule_id: str, node: ast.AST, message: str,
              severity: Optional[Severity] = None) -> None:
        rule = RULES[rule_id]
        if rule.sim_only and not self.is_sim:
            return
        posix = Path(self.path).as_posix()
        if any(posix.endswith(sfx) for sfx in rule.allowlist):
            return
        self.findings.append(
            Finding(
                rule=rule_id,
                severity=severity or rule.severity,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- unordered-expression classification (REP004/REP005) -------------
    def _is_unordered(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return True
                # list()/tuple() materialize their argument's order
                if node.func.id in ("list", "tuple") and node.args:
                    return self._is_unordered(node.args[0])
                return False
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SET_RETURNING:
                    return True
                # dict.pop(key, set()) / dict.get(key, set()): the default
                # betrays the stored value type
                if node.func.attr in ("pop", "get") and len(node.args) == 2 \
                        and self._is_unordered(node.args[1]):
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_unordered(node.left) or self._is_unordered(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._scope_names()
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr in self.index.set_attrs
        return False

    @staticmethod
    def _loop_effects(body: Sequence[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for t in targets:
                        if isinstance(t, (ast.Attribute, ast.Subscript)):
                            return "mutates state"
                elif isinstance(node, ast.Delete):
                    return "mutates state"
                elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                    return "yields to the scheduler"
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    if attr in _EFFECT_METHODS:
                        return f"calls .{attr}()"
                    # A private method invoked on self from inside the loop
                    # almost always sends or mutates in this codebase;
                    # treat it as an effect (suppress where provably pure).
                    if attr.startswith("_") \
                            and isinstance(node.func.value, ast.Name) \
                            and node.func.value.id == "self":
                        return f"calls self.{attr}()"
        return None

    # -- calls: REP001, REP002, REP004, REP005(min/max), REP007 ----------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        resolved = self.index.resolve(dotted) if dotted else None
        if resolved in _WALLCLOCK:
            self._emit("REP001", node,
                       f"{resolved}() reads the host clock; simulated code "
                       "must use Environment.now")
        elif resolved is not None and (
                resolved == "random" or resolved.startswith("random.")
                or resolved.startswith("numpy.random.")):
            self._emit("REP002", node,
                       f"{resolved}() bypasses the named-stream registry; "
                       "draw from RngRegistry.stream(name) instead")

        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
                "emit", "mark", "emit_marker"):
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                if self._is_unordered(value):
                    self._emit("REP004", value,
                               "trace payload is an unordered set; wrap it "
                               "in sorted(...) so digests are stable")
                elif isinstance(value, ast.Call) \
                        and isinstance(value.func, ast.Name) \
                        and value.func.id in ("id", "repr", "hex"):
                    self._emit("REP004", value,
                               f"trace payload uses {value.func.id}(); "
                               "identity-based values differ across runs")

        if isinstance(func, ast.Name) and func.id in ("min", "max") \
                and node.args and any(kw.arg == "key" for kw in node.keywords) \
                and self._is_unordered(node.args[0]):
            self._emit("REP005", node,
                       f"{func.id}(..., key=...) over an unordered set "
                       "breaks ties by hash order; sort the candidates first",
                       severity=Severity.WARNING)

        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if attr in _SCHEDULERS:
            delay = None
            if attr == "timeout" and node.args:
                delay = node.args[0]
            elif attr == "schedule" and len(node.args) > 1:
                delay = node.args[1]
            for kw in node.keywords:
                if kw.arg == "delay":
                    delay = kw.value
            if delay is not None:
                verdict = _is_zero_or_negative_literal(delay)
                if verdict == "negative":
                    self._emit("REP007", node,
                               f"negative literal delay in {attr}() raises "
                               "at runtime", severity=Severity.ERROR)
                elif verdict == "zero":
                    self._emit("REP007", node,
                               f"literal-zero delay in {attr}() schedules a "
                               "same-instant event; make the intended "
                               "ordering explicit")

        # REP013: span-aware code must thread ctx through every hop.  A
        # **kwargs splat may carry ctx, so it counts as passing it.
        if self._span_scope[-1]:
            has_ctx = any(kw.arg == "ctx" or kw.arg is None
                          for kw in node.keywords)
            if not has_ctx:
                ctor = attr
                if ctor == "Message":
                    self._emit("REP013", node,
                               "Message built without ctx= in span-aware "
                               "code; the trace loses this hop — pass "
                               "ctx=... (ctx=None for untraced traffic)")
                elif isinstance(func, ast.Attribute) and attr == "process":
                    recv = _dotted_name(func.value)
                    if recv is not None and recv.endswith("env"):
                        self._emit("REP013", node,
                                   "env.process() spawned without ctx= in "
                                   "span-aware code; the child's spans "
                                   "re-root — pass ctx=... (ctx=None for "
                                   "untraced work)")
        self.generic_visit(node)

    # -- REP003 ----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None
        if isinstance(node.type, ast.Name):
            broad = node.type.id in ("Exception", "BaseException")
        elif isinstance(node.type, ast.Tuple):
            broad = any(isinstance(e, ast.Name)
                        and e.id in ("Exception", "BaseException")
                        for e in node.type.elts)
        if broad:
            reraises = any(isinstance(n, ast.Raise)
                           for stmt in node.body for n in ast.walk(stmt))
            uses_name = node.name is not None and any(
                isinstance(n, ast.Name) and n.id == node.name
                for stmt in node.body for n in ast.walk(stmt))
            if not reraises and not uses_name:
                what = "bare except" if node.type is None else \
                    f"except {ast.unparse(node.type)}"
                self._emit("REP003", node,
                           f"{what} discards the exception; injected faults "
                           "must not vanish silently — narrow it, use the "
                           "bound exception, or re-raise")
        self.generic_visit(node)

    # -- REP005 ----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered(node.iter):
            effect = self._loop_effects(node.body)
            if effect is not None:
                self._emit("REP005", node,
                           "loop over an unordered set "
                           f"{effect}; iterate sorted(...) so event order "
                           "is seed-deterministic")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            if self._is_unordered(gen.iter):
                self._emit("REP005", node,
                           "list built from an unordered set; downstream "
                           "tie-breaking/indexing inherits hash order — "
                           "build it from sorted(...)",
                           severity=Severity.WARNING)
                break
        self.generic_visit(node)

    # -- REP006 ----------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (
                ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                ast.SetComp))
            if isinstance(default, ast.Call) \
                    and isinstance(default.func, ast.Name) \
                    and default.func.id in ("list", "dict", "set", "bytearray"):
                mutable = True
            if mutable:
                self._emit("REP006", default,
                           f"mutable default argument in {node.name}(); "
                           "defaults are shared across every call — "
                           "use None and allocate inside")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._scope.append(id(node))
        self._span_scope.append(_is_span_scope(node))
        self.generic_visit(node)
        self._span_scope.pop()
        self._scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._scope.append(id(node))
        self._span_scope.append(_is_span_scope(node))
        self.generic_visit(node)
        self._span_scope.pop()
        self._scope.pop()


# ---------------------------------------------------------------------------
# entry points


def lint_source(source: str, path: str,
                is_sim: Optional[bool] = None) -> LintResult:
    """Lint one module's source text.

    ``is_sim`` overrides the path-based scope classification (the fixture
    tests use this; production callers let the path decide).
    """
    tree = ast.parse(source, filename=path)
    index = _ModuleIndex(tree)
    sim = path_is_sim_scope(path) if is_sim is None else is_sim
    visitor = _Visitor(path, index, sim)
    visitor.visit(tree)
    suppress = _suppressions(source)
    kept: List[Finding] = []
    used: Dict[int, Set[str]] = {}
    dropped = 0
    for finding in visitor.findings:
        ids = suppress.get(finding.line, set())
        if finding.rule in ids:
            used.setdefault(finding.line, set()).add(finding.rule)
            dropped += 1
        elif "ALL" in ids:
            used.setdefault(finding.line, set()).add("ALL")
            dropped += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(findings=kept, files_scanned=1, suppressed=dropped,
                      declared_suppressions={path: suppress} if suppress else {},
                      used_suppressions={path: used} if used else {})


def lint_file(path: str, is_sim: Optional[bool] = None) -> LintResult:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path, is_sim=is_sim)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(str(f) for f in sorted(path.rglob("*.py"))
                       if "__pycache__" not in f.parts)
        elif path.suffix == ".py":
            out.append(str(path))
    return out


def lint_paths(paths: Sequence[str]) -> LintResult:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    suppressed = 0
    declared: Dict[str, Dict[int, Set[str]]] = {}
    used: Dict[str, Dict[int, Set[str]]] = {}
    files = iter_python_files(paths)
    for f in files:
        result = lint_file(f)
        findings.extend(result.findings)
        suppressed += result.suppressed
        declared.update(result.declared_suppressions)
        used.update(result.used_suppressions)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(findings=findings, files_scanned=len(files),
                      suppressed=suppressed,
                      declared_suppressions=declared,
                      used_suppressions=used)


def audit_suppressions(
    declared: Dict[str, Dict[int, Set[str]]],
    used: Dict[str, Dict[int, Set[str]]],
    flow_ran: bool = False,
    perf_ran: bool = False,
) -> List[Finding]:
    """REP016: ``# reprolint: disable=`` comments that suppress nothing.

    ``used`` is the union of what the single-file engine and (when they
    ran) the flow and perf passes actually dropped.  Suppressions naming
    flow rules are only auditable when the flow pass ran — a plain
    ``repro lint`` cannot know whether they still fire, so they are
    skipped; likewise perf-rule suppressions need the ``--perf`` pass,
    and a bare ``disable=all`` needs at least one whole-program pass.
    Unknown rule ids are always reported: they suppress nothing by
    construction (usually a typo for a real id).
    """
    findings: List[Finding] = []
    for path in sorted(declared):
        for line in sorted(declared[path]):
            ids = declared[path][line]
            used_here = used.get(path, {}).get(line, set())
            for rid in sorted(ids):
                if rid in used_here:
                    continue
                if rid == "ALL":
                    if not (flow_ran or perf_ran) or used_here:
                        continue
                    message = ("'disable=all' on this line suppresses no "
                               "finding; delete the stale comment")
                elif rid not in RULES:
                    message = (f"unknown rule id '{rid}' in suppression "
                               "comment; it suppresses nothing (typo?)")
                elif RULES[rid].flow and not flow_ran:
                    continue  # only the --flow pass can use it
                elif RULES[rid].perf and not perf_ran:
                    continue  # only the --perf pass can use it
                else:
                    message = (f"suppression of {rid} no longer matches any "
                               "finding; delete the stale comment")
                findings.append(Finding(
                    rule="REP016", severity=RULES["REP016"].severity,
                    path=path, line=line, col=0, message=message,
                ))
    return findings
