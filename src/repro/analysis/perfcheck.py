"""Hot-path cost analysis: the engine behind ``repro lint --perf``.

The determinism rules keep the numbers *right*; this pass keeps them
*cheap to produce*.  Built on the same call graph as the flow pass, it
computes the **hot set** — every function reachable from the kernel
event loop (``sim/kernel.py``) and from process-generator roots (the
generators handed to ``env.process(...)``) — and checks only that set
with the cost rules REP017–REP021:

* **REP017** — per-event allocation (closures, comprehensions,
  container constructors) inside hot loop bodies;
* **REP018** — classes with hot methods but no ``__slots__``;
* **REP019** — telemetry/metric emission whose *arguments* are formatted
  eagerly (f-string/.format()/%%) on paths where ``Telemetry.disabled()``
  should be free, and per-event metric-registry lookups that should be
  pre-bound instruments;
* **REP020** — the same attribute chain dereferenced repeatedly inside
  one hot loop body (hoist to a local);
* **REP021** — O(n) work inside hot loops: membership tests against
  list-typed attributes, per-event ``sorted()``, ``list.pop(0)`` /
  ``insert(0, ...)``.

The analysis is **profile-guided**: :func:`validate_against_profile`
cross-checks the static hot set against the dynamic ``TimingProfiler``
attribution (``repro profile --time`` / ``repro bench``), reporting how
much of the measured top-N wall time the static model covers (recall)
and how much of the static hot set the profile confirms (precision),
and ranks the rules by the measured wall-time weight of the code they
fired in.

Findings respect the same ``# reprolint: disable=REPxxx`` suppressions
and per-rule path allowlists as the single-file engine and the flow
pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, build_callgraph
from repro.analysis.flow import (
    _apply_dynamic_dispatch,
    _filter,
    _own_nodes,
)
from repro.analysis.lint import Finding, _dotted_name
from repro.analysis.rules import RULES

#: functions defined in a module with this basename seed the hot set —
#: the kernel event loop itself (Environment.run/step/schedule and the
#: Event/heap machinery all live there).
KERNEL_BASENAME = "kernel.py"

#: container constructors whose call inside a hot loop allocates per event
_ALLOC_CTORS = frozenset({"list", "dict", "set", "tuple", "frozenset",
                          "bytearray", "deque", "OrderedDict"})

#: telemetry/trace emitters whose eagerly formatted arguments defeat the
#: null-object fast path
_EMITTERS = frozenset({"emit", "mark", "emit_marker", "annotate", "event",
                       "start", "root", "probe_root"})

#: metric-registry factories; calling one per event is a dict lookup +
#: instrument construction that a pre-bound attribute avoids
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: repeated-dereference threshold for REP020 (per loop body)
_RELOAD_THRESHOLD = 3


@dataclass
class PerfResult:
    """Everything the perf pass learned, for reporters and the CLI."""

    findings: List[Finding]
    suppressed: int
    files_scanned: int
    graph: CallGraph
    #: qualnames seeding the hot set (kernel functions + generator roots)
    seeds: Set[str]
    #: qualnames of kernel-event-loop seeds specifically
    kernel_seeds: Set[str]
    #: generator functions spawned via ``env.process(...)``
    spawn_roots: Set[str]
    #: the hot set: reachable_from(seeds), dynamic dispatch included
    hot: Set[str]
    #: path -> line -> ids whose suppressions dropped a perf finding
    used_suppressions: Dict[str, Dict[int, Set[str]]] = field(
        default_factory=dict)
    #: filled by validate_against_profile (None when --validate not given)
    validation: Optional[Dict[str, Any]] = None

    def hot_by_subsystem(self) -> Dict[str, int]:
        from repro.obs.kernelprof import subsystem_of_path

        out: Dict[str, int] = {}
        for qual in self.hot:
            sub = subsystem_of_path(self.graph.functions[qual].path)
            out[sub] = out.get(sub, 0) + 1
        return out

    def to_dict(self) -> dict:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        doc: Dict[str, Any] = {
            "hot_functions": len(self.hot),
            "seeds": len(self.seeds),
            "kernel_seeds": len(self.kernel_seeds),
            "spawn_roots": sorted(self.spawn_roots),
            "hot_by_subsystem": self.hot_by_subsystem(),
            "counts": counts,
            "suppressed": self.suppressed,
        }
        if self.validation is not None:
            doc["validation"] = self.validation
        return doc


# ---------------------------------------------------------------------------
# hot-set construction


def _is_kernel_path(path: str) -> bool:
    return path.replace("\\", "/").rsplit("/", 1)[-1] == KERNEL_BASENAME


def _spawn_rooted_generators(graph: CallGraph) -> Set[str]:
    """Generator functions whose call is the argument of ``*.process(...)``.

    ``env.process(self._main_loop())`` drives the generator from the
    scheduler, not through any static call edge — so these roots must be
    seeded explicitly for the hot set to contain the process bodies.
    """
    roots: Set[str] = set()
    for site in graph.call_sites:
        callee = graph.functions.get(site.callee)
        if callee is None or not callee.is_generator:
            continue
        parent = getattr(site.node, "_cg_parent", None)
        if isinstance(parent, ast.Call) \
                and isinstance(parent.func, ast.Attribute) \
                and parent.func.attr == "process" \
                and site.node in parent.args:
            roots.add(site.callee)
    return roots


def compute_hot_set(graph: CallGraph) -> Tuple[Set[str], Set[str], Set[str]]:
    """(hot, kernel_seeds, spawn_roots) over an already-built graph.

    The caller must have applied dynamic-dispatch edges first (the
    ``getattr(self, f"_on_{kind}")`` handlers are hot precisely because
    the event loop reaches them that way).
    """
    kernel_seeds = {
        qual for qual, fn in graph.functions.items()
        if _is_kernel_path(fn.path)
    }
    spawn_roots = _spawn_rooted_generators(graph)
    hot = graph.reachable_from(kernel_seeds | spawn_roots)
    return hot, kernel_seeds, spawn_roots


# ---------------------------------------------------------------------------
# shared AST helpers


def _loop_bodies(fn: FunctionInfo) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Each (loop node, own nodes of its body) in ``fn``, nested defs cut."""
    for node in _own_nodes(fn.node):
        if isinstance(node, (ast.For, ast.While)):
            body: List[ast.AST] = []
            stack = list(node.body)
            if isinstance(node, ast.While):
                # the test re-evaluates on every iteration too
                stack.append(node.test)
            while stack:
                sub = stack.pop()
                body.append(sub)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(sub, ast.For):
                    # the inner body is reported on its own visit, but the
                    # iterable expression evaluates once per OUTER iteration
                    stack.append(sub.iter)
                    continue
                if isinstance(sub, ast.While):
                    # inner loops are reported on their own visit
                    continue
                stack.extend(ast.iter_child_nodes(sub))
            yield node, body


def _enclosed_by_guard(node: ast.AST, stop: ast.AST) -> bool:
    """True if an enclosing ``if`` up to ``stop`` tests an enabled/disabled
    telemetry switch — the emission is already pay-for-use."""
    cur = getattr(node, "_cg_parent", None)
    while cur is not None and cur is not stop:
        if isinstance(cur, ast.If):
            test = ast.unparse(cur.test)
            if "enabled" in test or "disabled" in test:
                return True
        cur = getattr(cur, "_cg_parent", None)
    return False


def _eager_format(expr: ast.AST) -> Optional[str]:
    """'f-string' / '.format()' / '%-format' if ``expr`` formats eagerly."""
    for node in ast.walk(expr):
        if isinstance(node, ast.JoinedStr):
            return "f-string"
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "format":
            return ".format()"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
                and isinstance(node.left, (ast.Constant, ast.JoinedStr)) \
                and isinstance(getattr(node.left, "value", None), str):
            return "%-format"
    return None


def _list_attrs_of_class(graph: CallGraph, cls_qual: str) -> Set[str]:
    """self attributes assigned a list anywhere in the class's methods."""
    cls = graph.classes.get(cls_qual)
    if cls is None:
        return set()
    out: Set[str] = set()
    for method_qual in cls.methods.values():
        fn = graph.functions.get(method_qual)
        if fn is None:
            continue
        for node in _own_nodes(fn.node):
            value = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            is_list = isinstance(value, (ast.List, ast.ListComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list")
            if not is_list:
                continue
            for t in targets:
                if isinstance(t, ast.Attribute) \
                        and isinstance(t.value, ast.Name) \
                        and t.value.id == "self":
                    out.add(t.attr)
    return out


def _class_qual_of(fn: FunctionInfo) -> Optional[str]:
    if fn.class_name is None:
        return None
    return fn.qualname.rsplit(".", 1)[0]


def _finding(rule: str, fn: FunctionInfo, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        rule=rule, severity=RULES[rule].severity, path=fn.path,
        line=getattr(node, "lineno", fn.lineno),
        col=getattr(node, "col_offset", 0), message=message,
    )


# ---------------------------------------------------------------------------
# REP017 — per-event allocation in hot loop bodies


def _allocation_findings(fn: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    for _loop, body in _loop_bodies(fn):
        for node in body:
            if isinstance(node, ast.Lambda) or isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                what = "lambda" if isinstance(node, ast.Lambda) else \
                    f"nested def {node.name}()"
                findings.append(_finding(
                    "REP017", fn, node,
                    f"{what} allocates a closure on every iteration of "
                    f"this hot loop; define it once outside the loop"))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                findings.append(_finding(
                    "REP017", fn, node,
                    "comprehension allocates a fresh container on every "
                    "iteration of this hot loop; hoist or restructure"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _ALLOC_CTORS:
                findings.append(_finding(
                    "REP017", fn, node,
                    f"{node.func.id}() constructs a container on every "
                    "iteration of this hot loop; allocate once outside "
                    "and reuse"))
    return findings


# ---------------------------------------------------------------------------
# REP018 — hot classes without __slots__


def _has_slots(cls_node: ast.AST) -> bool:
    for stmt in getattr(cls_node, "body", []):
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == "__slots__":
            return True
    # @dataclass(slots=True) generates __slots__ at class-creation time
    for deco in getattr(cls_node, "decorator_list", []):
        if isinstance(deco, ast.Call) \
                and _dotted_name(deco.func) in ("dataclass",
                                                "dataclasses.dataclass") \
                and any(kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in deco.keywords):
            return True
    return False


def _slots_findings(graph: CallGraph, hot: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    hot_classes: Dict[str, str] = {}
    for qual in hot:
        fn = graph.functions[qual]
        cls_qual = _class_qual_of(fn)
        if cls_qual is not None and cls_qual in graph.classes:
            hot_classes.setdefault(cls_qual, qual)
    project_names = {cls.name for cls in graph.classes.values()}
    for cls_qual in sorted(hot_classes):
        cls = graph.classes[cls_qual]
        if _has_slots(cls.node):
            continue
        # A base outside the project (Exception, Enum, NamedTuple, ...)
        # brings its own __dict__ or layout; slots on the subclass would
        # be useless or wrong, so only flag pure project/object chains.
        foreign = [b for b in cls.bases if b != "object"
                   and b.rsplit(".", 1)[-1] not in project_names]
        if foreign:
            continue
        findings.append(Finding(
            rule="REP018", severity=RULES["REP018"].severity,
            path=graph.functions[hot_classes[cls_qual]].path,
            line=cls.lineno, col=0,
            message=(f"class {cls.name} has methods on the kernel hot path "
                     "but no __slots__; every attribute access pays a "
                     "__dict__ lookup — declare __slots__"),
        ))
    return findings


# ---------------------------------------------------------------------------
# REP019 — eager telemetry formatting / per-event registry lookups


def _telemetry_findings(fn: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    for node in _own_nodes(fn.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        args = list(node.args) + [kw.value for kw in node.keywords]
        if attr in _EMITTERS:
            if _enclosed_by_guard(node, fn.node):
                continue
            for arg in args:
                how = _eager_format(arg)
                if how is not None:
                    findings.append(_finding(
                        "REP019", fn, node,
                        f"{how} argument to .{attr}() is built even when "
                        "telemetry is off; guard the call or pass raw "
                        "fields so Telemetry.disabled() stays free"))
                    break
        elif attr in _METRIC_FACTORIES:
            receiver = _dotted_name(node.func.value) or ""
            if "metric" not in receiver.lower():
                continue
            if _enclosed_by_guard(node, fn.node):
                continue
            findings.append(_finding(
                "REP019", fn, node,
                f".{attr}(...) resolves the instrument through the "
                "registry on a hot path; pre-bind it to an attribute at "
                "construction time"))
    return findings


# ---------------------------------------------------------------------------
# REP020 — repeated attribute-chain loads in hot loops


def _reload_findings(fn: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    for _loop, body in _loop_bodies(fn):
        chains: Dict[str, List[ast.Attribute]] = {}
        stored_prefixes: Set[str] = set()
        for node in body:
            if isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    stored_prefixes.add(dotted)
                    continue
                # only maximal chains: skip `self.a` inside `self.a.b`
                parent = getattr(node, "_cg_parent", None)
                if isinstance(parent, ast.Attribute):
                    continue
                if dotted.count(".") >= 1:
                    chains.setdefault(dotted, []).append(node)
        for dotted, nodes in sorted(chains.items()):
            if len(nodes) < _RELOAD_THRESHOLD:
                continue
            # a chain (or its prefix) assigned inside the loop cannot be
            # hoisted — the reload is deliberate
            prefixes = {dotted.rsplit(".", i)[0]
                        for i in range(dotted.count(".") + 1)}
            if prefixes & stored_prefixes:
                continue
            first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
            findings.append(_finding(
                "REP020", fn, first,
                f"'{dotted}' dereferenced {len(nodes)}x per iteration of "
                "this hot loop; hoist it into a local before the loop"))
    return findings


# ---------------------------------------------------------------------------
# REP021 — linear scans in hot loops


def _scan_findings(graph: CallGraph, fn: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    cls_qual = _class_qual_of(fn)
    list_attrs = _list_attrs_of_class(graph, cls_qual) if cls_qual else set()
    for _loop, body in _loop_bodies(fn):
        for node in body:
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    findings.append(_finding(
                        "REP021", fn, node,
                        "sorted() runs on every iteration of this hot "
                        "loop; keep the structure ordered or sort once "
                        "outside"))
                elif isinstance(func, ast.Attribute) \
                        and func.attr in ("pop", "insert") \
                        and node.args \
                        and isinstance(node.args[0], ast.Constant) \
                        and node.args[0].value == 0:
                    findings.append(_finding(
                        "REP021", fn, node,
                        f".{func.attr}(0{', ...' if func.attr == 'insert' else ''}) "
                        "shifts the whole list on every call; use "
                        "collections.deque for FIFO access"))
            elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                    and isinstance(node.ops[0], (ast.In, ast.NotIn)):
                right = node.comparators[0]
                if isinstance(right, ast.Attribute) \
                        and isinstance(right.value, ast.Name) \
                        and right.value.id == "self" \
                        and right.attr in list_attrs:
                    findings.append(_finding(
                        "REP021", fn, node,
                        f"membership test against list 'self.{right.attr}' "
                        "is O(n) per event; keep a parallel set or use a "
                        "dict"))
    return findings


# ---------------------------------------------------------------------------
# profile-guided validation


def validate_against_profile(result: "PerfResult", scenario: str = "steady",
                             top_n: int = 10) -> Dict[str, Any]:
    """Cross-check the static hot set against dynamic wall-time attribution.

    Runs the named bench scenario once with the TimingProfiler attached
    (the same machinery as ``repro profile --time`` / ``repro bench``)
    and compares per-subsystem wall time against the subsystems the
    static hot set predicts:

    * **recall** — share of the dynamic top-``top_n`` wall time whose
      subsystem contains at least one statically-hot function (the
      acceptance bar: the static model must see where the time goes);
    * **precision** — share of statically-hot subsystems the profile
      confirms with nonzero wall time;
    * **rule_weights** — each perf rule ranked by the measured wall-time
      share of the subsystems its findings landed in, so "fix REP020
      first" is a measured statement, not a lexical one.

    The result is stored on ``result.validation`` and returned.
    """
    from repro.obs.kernelprof import subsystem_of_path
    from repro.obs.perf import SCENARIOS, measure_attribution

    attribution, digest = measure_attribution(SCENARIOS[scenario],
                                              top_n=top_n)
    by_subsystem: Dict[str, float] = attribution.get("by_subsystem", {})
    top = sorted(by_subsystem.items(), key=lambda kv: (-kv[1], kv[0]))[:top_n]

    static_subsystems: Set[str] = {
        subsystem_of_path(result.graph.functions[qual].path)
        for qual in result.hot
    }
    total = sum(t for _, t in top)
    covered = [(s, t) for s, t in top if s in static_subsystems]
    missed = [s for s, _ in top if s not in static_subsystems]
    recall = (sum(t for _, t in covered) / total) if total > 0 else 1.0

    dynamic_nonzero = {s for s, t in by_subsystem.items() if t > 0}
    precision = (len(static_subsystems & dynamic_nonzero)
                 / len(static_subsystems)) if static_subsystems else 1.0

    weight_of = {s: (t / total if total > 0 else 0.0) for s, t in top}
    rule_weights: Dict[str, float] = {}
    for f in result.findings:
        sub = subsystem_of_path(f.path)
        rule_weights[f.rule] = max(rule_weights.get(f.rule, 0.0),
                                   weight_of.get(sub, 0.0))

    doc: Dict[str, Any] = {
        "scenario": scenario,
        "top_n": top_n,
        "dynamic_top": [{"subsystem": s, "seconds": t} for s, t in top],
        "static_subsystems": sorted(static_subsystems),
        "covered_seconds": sum(t for _, t in covered),
        "total_seconds": total,
        "recall": recall,
        "precision": precision,
        "missed_subsystems": missed,
        "rule_weights": dict(sorted(rule_weights.items(),
                                    key=lambda kv: (-kv[1], kv[0]))),
        "digest": digest,
    }
    result.validation = doc
    return doc


# ---------------------------------------------------------------------------
# entry point


def analyze_perf(paths: Sequence[str]) -> PerfResult:
    """Run the hot-path cost analysis over every module under ``paths``."""
    graph = build_callgraph(paths)
    # dynamic dispatch adds the getattr(self, f"_on_{kind}") call edges;
    # it must run before reachability so the handlers land in the hot set
    _apply_dynamic_dispatch(graph, {}, {})
    hot, kernel_seeds, spawn_roots = compute_hot_set(graph)

    findings: List[Finding] = []
    findings.extend(_slots_findings(graph, hot))
    for qual in sorted(hot):
        fn = graph.functions[qual]
        findings.extend(_allocation_findings(fn))
        findings.extend(_telemetry_findings(fn))
        findings.extend(_reload_findings(fn))
        findings.extend(_scan_findings(graph, fn))

    kept, suppressed, used = _filter(findings, graph)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return PerfResult(
        findings=kept,
        suppressed=suppressed,
        files_scanned=len(graph.modules),
        graph=graph,
        seeds=kernel_seeds | spawn_roots,
        kernel_seeds=kernel_seeds,
        spawn_roots=spawn_roots,
        hot=hot,
        used_suppressions=used,
    )
