"""Two-tier simulation race detector: ``repro racecheck``.

The kernel's FIFO tie-break among same-``(time, priority)`` events is a
*convention*: nothing in the happens-before relation orders two events
scheduled for the same instant by different processes.  Code whose
results depend on that accidental order is racy — it will silently
change behaviour under any scheduler refactor (calendar queues, lazy
heaps, batched emission) and under the overlapping-fault campaigns that
pile concurrent writers onto membership and cache state.

**Static tier** — extends the PR 4 call graph with a read/write *effect
analysis*: for every function, the set of ``(class, attribute)`` keys it
lexically reads and mutates; effects propagate interprocedurally over
*synchronous* call edges (spawn edges — a generator handed to
``env.process(...)`` — are concurrency edges and cut propagation).
Process roots are the spawn targets.  Two rules fire:

* **REP014** — the same attribute is written lexically inside two or
  more *distinct* process-generator bodies.  Writes inside a generator
  body are interleaving-exposed relative to that generator's own yields;
  with no ordering edge between distinct processes, the final value is
  schedule-dependent.
* **REP015** — a read-modify-write torn across a ``yield``: a local is
  bound from a shared attribute, the generator yields (another
  same-instant process can interleave), then the attribute is written
  back from that stale local.  The classic lost-update race.

**Dynamic tier** — a schedule-perturbation sanitizer.  The same campaign
runs once with the production FIFO tie-break and again with seeded
pseudo-random tie-break orders (``Environment(tiebreak_seed=...)``).
A kernel monitor (:class:`ScheduleRecorder`) records the per-timestamp
*multiset* of executed (event, callback-target) pairs, canonicalised so
that a pure same-instant permutation compares equal.  Chained digests
over the canonical schedule, the canonical trace stream, the metrics
snapshot, and the stage timeline are diffed to the first diverging
timestamp; the statically-computed effect sets then name the conflicting
access pair and both process "stacks" (call paths from each generator to
the shared write).  Clean runs certify that heap refactors preserving
happens-before are digest-safe.
"""

from __future__ import annotations

import ast
import hashlib
import json
import math
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    _annotation_name,
)
from repro.analysis.lint import Finding
from repro.analysis.rules import RULES

RACECHECK_SCHEMA = 1

#: ``(class qualname, attribute name)`` — one piece of shared state
AttrKey = Tuple[str, str]

#: container methods whose call on an attribute mutates it in place
_MUTATORS = frozenset(
    {"add", "discard", "remove", "pop", "popleft", "update", "clear",
     "append", "extend", "insert", "setdefault", "appendleft"}
)


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# static tier: effect analysis


@dataclass(frozen=True)
class AccessSite:
    """One lexical read or write of a shared attribute."""

    key: AttrKey
    kind: str  # "read" | "write"
    func: str
    path: str
    line: int


@dataclass
class EffectAnalysis:
    """Per-function lexical and transitive read/write sets."""

    #: function qualname -> keys it lexically reads / writes
    own_reads: Dict[str, Set[AttrKey]] = field(default_factory=dict)
    own_writes: Dict[str, Set[AttrKey]] = field(default_factory=dict)
    #: per-function access sites, source order
    sites: Dict[str, List[AccessSite]] = field(default_factory=dict)
    #: synchronous call edges (spawn + ``__init__`` edges removed)
    sync_edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: process roots: generator qualnames handed to env.process()/Process()
    roots: Set[str] = field(default_factory=set)
    #: functions reachable from any root over sync edges (roots included)
    process_connected: Set[str] = field(default_factory=set)
    #: transitive closures over sync edges
    closure_reads: Dict[str, Set[AttrKey]] = field(default_factory=dict)
    closure_writes: Dict[str, Set[AttrKey]] = field(default_factory=dict)


def _param_types(fn: FunctionInfo, graph: CallGraph) -> Dict[str, str]:
    """Parameter name -> class qualname, via unique-name annotation match."""
    out: Dict[str, str] = {}
    args = getattr(fn.node, "args", None)
    if args is None:
        return out
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        name = _annotation_name(arg.annotation)
        if name is None:
            continue
        quals = graph.class_by_name.get(name, [])
        if len(quals) == 1:
            out[arg.arg] = quals[0]
    return out


def _own_class(fn: FunctionInfo, graph: CallGraph) -> Optional[str]:
    if fn.class_name is None:
        return None
    qual = fn.qualname.rsplit(".", 1)[0]
    return qual if qual in graph.classes else None


def _attr_key(expr: ast.Attribute, fn: FunctionInfo, graph: CallGraph,
              ptypes: Dict[str, str]) -> Optional[AttrKey]:
    """Resolve ``<base>.<attr>`` to a ``(class, attr)`` key, or None.

    Handles ``self.x`` (the enclosing class), annotated-parameter bases
    (``shared.x`` where ``shared: Shared``), and one typed hop through a
    ``self`` attribute (``self.cache.x`` via the inferred attr types).
    """
    base = expr.value
    cls: Optional[str] = None
    if isinstance(base, ast.Name):
        if base.id == "self":
            cls = _own_class(fn, graph)
        else:
            cls = ptypes.get(base.id)
    elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name) \
            and base.value.id == "self":
        own = _own_class(fn, graph)
        if own is not None:
            cls = graph.classes[own].attr_types.get(base.attr)
    if cls is None or cls not in graph.classes:
        return None
    return (cls, expr.attr)


def _own_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    stack = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _collect_accesses(fn: FunctionInfo, graph: CallGraph) -> List[AccessSite]:
    """All lexical shared-attribute reads and writes in one function."""
    ptypes = _param_types(fn, graph)
    sites: List[AccessSite] = []

    def add(key: Optional[AttrKey], kind: str, node: ast.AST) -> None:
        if key is None:
            return
        sites.append(AccessSite(key=key, kind=kind, func=fn.qualname,
                                path=fn.path, line=getattr(node, "lineno", 0)))

    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Store):
                add(_attr_key(node, fn, graph, ptypes), "write", node)
            elif isinstance(node.ctx, ast.Load):
                parent = getattr(node, "_cg_parent", None)
                # ``self.s.add(x)`` / ``self.d[k] = v``: the Load of the
                # attribute is really an in-place mutation of its value.
                if isinstance(parent, ast.Attribute) \
                        and parent.value is node \
                        and isinstance(getattr(parent, "_cg_parent", None),
                                       ast.Call) \
                        and parent._cg_parent.func is parent \
                        and parent.attr in _MUTATORS:  # type: ignore[attr-defined]
                    add(_attr_key(node, fn, graph, ptypes), "write", node)
                    continue
                if isinstance(parent, ast.Subscript) \
                        and parent.value is node \
                        and isinstance(parent.ctx, (ast.Store, ast.Del)):
                    add(_attr_key(node, fn, graph, ptypes), "write", node)
                    continue
                add(_attr_key(node, fn, graph, ptypes), "read", node)
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Attribute):
            # ``self.x += 1``: read and write, atomic within one callback
            key = _attr_key(node.target, fn, graph, ptypes)
            add(key, "read", node)
            add(key, "write", node)
    sites.sort(key=lambda s: s.line)
    return sites


def _spawn_parent(node: ast.AST) -> Optional[ast.Call]:
    """The ``.process(...)``/``Process(...)`` call this node is an
    argument of, if any (climbing through keyword/starred wrappers)."""
    parent = getattr(node, "_cg_parent", None)
    while isinstance(parent, (ast.keyword, ast.Starred)):
        parent = getattr(parent, "_cg_parent", None)
    if not isinstance(parent, ast.Call) or parent.func is node:
        return None
    func = parent.func
    if isinstance(func, ast.Attribute) and func.attr == "process":
        return parent
    if isinstance(func, ast.Name) and func.id == "Process":
        return parent
    return None


def compute_effects(graph: CallGraph) -> EffectAnalysis:
    """Lexical effects, spawn/sync edge split, roots, and closures."""
    eff = EffectAnalysis()
    for qual, fn in graph.functions.items():
        sites = _collect_accesses(fn, graph)
        eff.sites[qual] = sites
        eff.own_reads[qual] = {s.key for s in sites if s.kind == "read"}
        eff.own_writes[qual] = {s.key for s in sites if s.kind == "write"}

    for site in graph.call_sites:
        callee = graph.functions.get(site.callee)
        if callee is None:
            continue
        if callee.is_generator and _spawn_parent(site.node) is not None:
            eff.roots.add(site.callee)
            continue  # concurrency edge: no synchronous propagation
        if site.callee.endswith(".__init__"):
            # constructor writes initialise a *fresh* object; they are not
            # mutations of state shared with other processes
            continue
        eff.sync_edges.setdefault(site.caller, set()).add(site.callee)

    # reachability from roots over sync edges
    seen: Set[str] = set(eff.roots)
    frontier = list(eff.roots)
    while frontier:
        nxt: List[str] = []
        for qual in frontier:
            for callee in eff.sync_edges.get(qual, ()):
                if callee not in seen:
                    seen.add(callee)
                    nxt.append(callee)
        frontier = nxt
    eff.process_connected = seen

    # transitive effect closures (fixpoint; sets only grow)
    eff.closure_reads = {q: set(r) for q, r in eff.own_reads.items()}
    eff.closure_writes = {q: set(w) for q, w in eff.own_writes.items()}
    changed = True
    while changed:
        changed = False
        for caller, callees in eff.sync_edges.items():
            reads = eff.closure_reads.setdefault(caller, set())
            writes = eff.closure_writes.setdefault(caller, set())
            for callee in callees:
                for src, dst in (
                    (eff.closure_reads.get(callee), reads),
                    (eff.closure_writes.get(callee), writes),
                ):
                    if src and not src <= dst:
                        dst |= src
                        changed = True
    return eff


# ---------------------------------------------------------------------------
# static tier: rules


def _key_label(key: AttrKey) -> str:
    cls, attr = key
    return f"{cls.rsplit('.', 1)[-1]}.{attr}"


def _writer_generators(eff: EffectAnalysis, graph: CallGraph
                       ) -> Dict[AttrKey, List[Tuple[str, AccessSite]]]:
    """key -> [(generator qualname, first write site)] for every
    process-connected generator that writes the key *lexically*."""
    out: Dict[AttrKey, List[Tuple[str, AccessSite]]] = {}
    for qual in sorted(eff.process_connected):
        fn = graph.functions.get(qual)
        if fn is None or not fn.is_generator:
            continue
        first: Dict[AttrKey, AccessSite] = {}
        for site in eff.sites.get(qual, []):
            if site.kind == "write" and site.key not in first:
                first[site.key] = site
        for key, site in first.items():
            out.setdefault(key, []).append((qual, site))
    return out


def _rep014_findings(eff: EffectAnalysis, graph: CallGraph,
                     writers: Dict[AttrKey, List[Tuple[str, AccessSite]]]
                     ) -> List[Finding]:
    findings: List[Finding] = []
    for key in sorted(writers):
        entries = writers[key]
        if len({q for q, _ in entries}) < 2:
            continue
        entries = sorted(entries, key=lambda e: (e[1].path, e[1].line))
        head = entries[0][1]
        others = ", ".join(
            f"{q.rsplit('.', 1)[-1]}() at {os.path.basename(s.path)}:{s.line}"
            for q, s in entries)
        findings.append(Finding(
            rule="REP014", severity=RULES["REP014"].severity,
            path=head.path, line=head.line, col=0,
            message=(f"attribute '{_key_label(key)}' is written by "
                     f"{len(entries)} distinct process generators with no "
                     f"ordering edge ({others}): the final value depends on "
                     "same-instant tie-break order"),
        ))
    return findings


@dataclass(frozen=True)
class _TornRMW:
    key: AttrKey
    read_line: int
    yield_line: int
    write_line: int
    local: str


def _torn_rmws(fn: FunctionInfo, graph: CallGraph) -> List[_TornRMW]:
    """``v = <shared>; ... yield ...; <shared> = f(v)`` patterns."""
    ptypes = _param_types(fn, graph)
    binds: List[Tuple[str, AttrKey, int]] = []  # (local, key, line)
    yields: List[int] = []
    writes: List[Tuple[AttrKey, int, Set[str]]] = []  # (key, line, names read)
    for node in _own_nodes(fn.node):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yields.append(getattr(node, "lineno", 0))
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if isinstance(target, ast.Name):
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Attribute) \
                            and isinstance(sub.ctx, ast.Load):
                        key = _attr_key(sub, fn, graph, ptypes)
                        if key is not None:
                            binds.append((target.id, key, node.lineno))
            elif isinstance(target, ast.Attribute):
                key = _attr_key(target, fn, graph, ptypes)
                if key is not None:
                    names = {n.id for n in ast.walk(value)
                             if isinstance(n, ast.Name)
                             and isinstance(n.ctx, ast.Load)}
                    writes.append((key, node.lineno, names))
    out: List[_TornRMW] = []
    for key, wline, names in writes:
        for local, bkey, bline in binds:
            if bkey != key or local not in names or bline >= wline:
                continue
            torn = next((y for y in yields if bline < y <= wline), None)
            if torn is not None:
                out.append(_TornRMW(key=key, read_line=bline,
                                    yield_line=torn, write_line=wline,
                                    local=local))
                break
    return out


def _rep015_findings(eff: EffectAnalysis, graph: CallGraph,
                     writers: Dict[AttrKey, List[Tuple[str, AccessSite]]]
                     ) -> List[Finding]:
    findings: List[Finding] = []
    for qual in sorted(eff.process_connected):
        fn = graph.functions.get(qual)
        if fn is None or not fn.is_generator:
            continue
        for rmw in _torn_rmws(fn, graph):
            # only *shared* state can be interleaved: some other generator
            # must touch the key lexically, or another root's closure
            # must write it
            shared = any(
                q != qual and (rmw.key in eff.own_reads.get(q, set())
                               or rmw.key in eff.own_writes.get(q, set()))
                for q in eff.process_connected
                if graph.functions.get(q) is not None
                and graph.functions[q].is_generator
            ) or any(
                rmw.key in eff.closure_writes.get(root, set())
                for root in eff.roots
                if qual not in ({root} | eff.sync_edges.get(root, set()))
                and qual not in _closure_funcs(eff, root)
            )
            if not shared:
                continue
            findings.append(Finding(
                rule="REP015", severity=RULES["REP015"].severity,
                path=fn.path, line=rmw.write_line, col=0,
                message=(f"read-modify-write of '{_key_label(rmw.key)}' is "
                         f"torn across the yield at line {rmw.yield_line}: "
                         f"'{rmw.local}' read at line {rmw.read_line} is "
                         "stale when written back — another same-instant "
                         "process can interleave and its update is lost"),
            ))
    return findings


def _closure_funcs(eff: EffectAnalysis, start: str) -> Set[str]:
    seen = {start}
    frontier = [start]
    while frontier:
        nxt: List[str] = []
        for qual in frontier:
            for callee in eff.sync_edges.get(qual, ()):
                if callee not in seen:
                    seen.add(callee)
                    nxt.append(callee)
        frontier = nxt
    return seen


@dataclass
class RaceAnalysis:
    """Static-tier output: effects, findings, and a JSON summary."""

    effects: EffectAnalysis
    graph: CallGraph
    findings: List[Finding]
    #: key -> writer generator qualnames (the REP014 evidence)
    shared_writes: Dict[AttrKey, Tuple[str, ...]]

    def to_dict(self) -> dict:
        return {
            "roots": len(self.effects.roots),
            "process_connected": len(self.effects.process_connected),
            "shared_writes": {
                _key_label(k): list(v)
                for k, v in sorted(self.shared_writes.items())
            },
            "rep014": sum(1 for f in self.findings if f.rule == "REP014"),
            "rep015": sum(1 for f in self.findings if f.rule == "REP015"),
        }


def analyze_races(graph: CallGraph) -> RaceAnalysis:
    """The static tier: effect analysis + REP014/REP015 findings."""
    eff = compute_effects(graph)
    writers = _writer_generators(eff, graph)
    findings = _rep014_findings(eff, graph, writers)
    findings.extend(_rep015_findings(eff, graph, writers))
    shared = {
        key: tuple(sorted({q for q, _ in entries}))
        for key, entries in writers.items()
        if len({q for q, _ in entries}) >= 2
    }
    return RaceAnalysis(effects=eff, graph=graph, findings=findings,
                        shared_writes=shared)


def access_path(analysis: RaceAnalysis, start: str, key: AttrKey,
                kinds: Tuple[str, ...] = ("write",)) -> List[str]:
    """BFS call path from ``start`` to the first function that lexically
    accesses ``key`` — the "process stack" of a conflicting access."""
    eff = analysis.effects
    prev: Dict[str, Optional[str]] = {start: None}
    frontier = [start]
    hit: Optional[str] = None
    while frontier and hit is None:
        nxt: List[str] = []
        for qual in frontier:
            if any(s.key == key and s.kind in kinds
                   for s in eff.sites.get(qual, [])):
                hit = qual
                break
            for callee in sorted(eff.sync_edges.get(qual, ())):
                if callee not in prev:
                    prev[callee] = qual
                    nxt.append(callee)
        frontier = nxt
    if hit is None:
        return [start]
    path: List[str] = []
    cur: Optional[str] = hit
    while cur is not None:
        path.append(cur)
        cur = prev[cur]
    path.reverse()
    site = next((s for s in eff.sites.get(hit, [])
                 if s.key == key and s.kind in kinds), None)
    if site is not None:
        path[-1] = f"{hit} ({os.path.basename(site.path)}:{site.line})"
    return path


# ---------------------------------------------------------------------------
# dynamic tier: schedule recording


#: (file, qualname, firstlineno) of a process generator observed at runtime
ProcRef = Tuple[str, str, int]


def _describe_callback(cb: Any) -> Tuple[str, Optional[ProcRef]]:
    """Stable identity string for an event callback, plus the process
    code reference when the callback resumes a Process."""
    bound_self = getattr(cb, "__self__", None)
    code_ref = getattr(bound_self, "code_ref", None)
    if code_ref is not None:
        fname, qualname, lineno = code_ref()
        return (f"proc:{qualname}:{os.path.basename(fname)}:{lineno}",
                (fname, qualname, lineno))
    code = getattr(cb, "__code__", None)
    if code is None:
        func = getattr(cb, "__func__", None)
        code = getattr(func, "__code__", None)
    if code is not None:
        qual = getattr(code, "co_qualname", code.co_name)
        return (f"fn:{qual}:{os.path.basename(code.co_filename)}:"
                f"{code.co_firstlineno}", None)
    return (f"cb:{type(cb).__name__}", None)


class ScheduleRecorder:
    """Kernel monitor recording the per-timestamp execution multiset.

    Entries are canonicalised (sorted within each timestamp) so two runs
    that execute the same events at each instant — in any order —
    compare equal; only a genuine divergence (different events, or
    events migrating across timestamps) shows up.
    """

    def __init__(self) -> None:
        self._env: Any = None
        #: [(time, [entry str, ...])] in execution order
        self._buckets: List[Tuple[float, List[str]]] = []
        #: process code refs observed per bucket (for attribution)
        self._procs: List[Set[ProcRef]] = []

    def bind(self, env: Any) -> None:
        self._env = env

    # -- monitor protocol (see Environment.set_monitor) ------------------
    def on_schedule(self, depth: int) -> None:  # pragma: no cover - no-op
        pass

    def on_event(self, event: Any, callbacks: Sequence[Any]) -> None:
        t = float(self._env.now)
        if not self._buckets or self._buckets[-1][0] != t:
            self._buckets.append((t, []))
            self._procs.append(set())
        descs: List[str] = []
        for cb in callbacks:
            desc, ref = _describe_callback(cb)
            descs.append(desc)
            if ref is not None:
                self._procs[-1].add(ref)
        entry = f"{type(event).__name__}[{','.join(sorted(descs))}]"
        self._buckets[-1][1].append(entry)

    def on_event_done(self, event: Any) -> None:  # pragma: no cover - no-op
        pass

    # -- results ---------------------------------------------------------
    def schedule(self) -> List[Tuple[float, Tuple[str, ...]]]:
        """Canonical per-timestamp multisets, execution order preserved
        across timestamps, sorted within each."""
        return [(t, tuple(sorted(entries))) for t, entries in self._buckets]

    def ordered(self) -> List[Tuple[float, Tuple[str, ...]]]:
        """The raw execution order, same shape as :meth:`schedule`.  Two
        runs whose canonical schedules match can still differ here — the
        ordered stream locates *where* a same-instant reorder happened
        when only the outcome (not the event multiset) diverged."""
        return [(t, tuple(entries)) for t, entries in self._buckets]

    def proc_refs(self) -> List[FrozenSet[ProcRef]]:
        return [frozenset(s) for s in self._procs]


def schedule_digest(schedule: Sequence[Tuple[float, Tuple[str, ...]]]) -> str:
    chain = hashlib.sha256()
    for t, entries in schedule:
        chain.update(_canonical([t, list(entries)]))
    return chain.hexdigest()


def canonical_trace_chain(events: Sequence[Any]) -> List[Tuple[float, str]]:
    """Chained digests over trace events, order-insensitive *within* a
    timestamp: [(time, chain hex12)] with one entry per instant."""
    from repro.obs.export import event_to_dict

    chain = hashlib.sha256()
    out: List[Tuple[float, str]] = []
    i = 0
    n = len(events)
    while i < n:
        t = events[i].time
        group: List[bytes] = []
        while i < n and events[i].time == t:
            group.append(_canonical(event_to_dict(events[i])))
            i += 1
        for blob in sorted(group):
            chain.update(blob)
        out.append((t, chain.hexdigest()[:12]))
    return out


# ---------------------------------------------------------------------------
# dynamic tier: captures and comparison


@dataclass
class RunCapture:
    """Everything observable about one (possibly perturbed) run."""

    tiebreak_seed: Optional[int]
    schedule: List[Tuple[float, Tuple[str, ...]]]
    proc_refs: List[FrozenSet[ProcRef]]
    #: caller-defined scalar outcomes (stage timeline, final counters)
    observables: Dict[str, Any]
    trace_chain: List[Tuple[float, str]] = field(default_factory=list)
    metrics_digest: Optional[str] = None
    #: raw metrics snapshot (JSON-safe), kept for tolerant comparison
    metrics: Any = None
    #: raw execution order (ScheduleRecorder.ordered()) for localization
    ordered_schedule: List[Tuple[float, Tuple[str, ...]]] = \
        field(default_factory=list)
    processed: int = 0

    @property
    def schedule_digest(self) -> str:
        return schedule_digest(self.schedule)

    @property
    def trace_digest(self) -> Optional[str]:
        return self.trace_chain[-1][1] if self.trace_chain else None

    def summary(self) -> Dict[str, Any]:
        return {
            "tiebreak_seed": self.tiebreak_seed,
            "processed": self.processed,
            "timestamps": len(self.schedule),
            "schedule_digest": self.schedule_digest[:16],
            "trace_digest": self.trace_digest,
            "metrics_digest": (self.metrics_digest or "")[:16] or None,
            "observables": self.observables,
        }


@dataclass
class ScheduleDivergence:
    """First timestamp where two runs' canonical streams split."""

    source: str  # "schedule" | "trace" | "length"
    index: int
    time: float
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)
    procs: List[ProcRef] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "index": self.index,
            "time": self.time,
            "only_a": self.only_a,
            "only_b": self.only_b,
            "procs": [list(p) for p in self.procs],
        }

    def describe(self) -> str:
        lines = [f"first divergence ({self.source}) at t={self.time:.6f} "
                 f"(timestamp #{self.index})"]
        for label, entries in (("only in FIFO run", self.only_a),
                               ("only in perturbed run", self.only_b)):
            for e in entries[:4]:
                lines.append(f"  {label}: {e}")
        for fname, qual, lineno in self.procs:
            lines.append(f"  process here: {qual} "
                         f"({os.path.basename(fname)}:{lineno})")
        return "\n".join(lines)


def _procs_at_time(cap: RunCapture, t: float) -> Set[ProcRef]:
    out: Set[ProcRef] = set()
    for (bt, _), refs in zip(cap.schedule, cap.proc_refs):
        if bt == t:
            out |= set(refs)
    return out


def find_divergence(a: RunCapture, b: RunCapture) -> Optional[ScheduleDivergence]:
    """Walk the canonical streams to the first diverging timestamp."""
    n = min(len(a.schedule), len(b.schedule))
    for i in range(n):
        (ta, ea), (tb, eb) = a.schedule[i], b.schedule[i]
        if ta != tb or ea != eb:
            t = min(ta, tb)
            ca, cb = Counter(ea), Counter(eb)
            div = ScheduleDivergence(
                source="schedule", index=i, time=t,
                only_a=sorted((ca - cb).elements()),
                only_b=sorted((cb - ca).elements()),
            )
            div.procs = sorted(_procs_at_time(a, t) | _procs_at_time(b, t))
            return div
    if len(a.schedule) != len(b.schedule):
        longer = a.schedule if len(a.schedule) > n else b.schedule
        t = longer[n][0]
        div = ScheduleDivergence(source="length", index=n, time=t)
        div.procs = sorted(_procs_at_time(a, t) | _procs_at_time(b, t))
        return div
    # schedules identical; the trace chain may still locate a divergence
    # (e.g. same events, different same-instant RNG interleaving)
    m = min(len(a.trace_chain), len(b.trace_chain))
    for i in range(m):
        if a.trace_chain[i] != b.trace_chain[i]:
            t = min(a.trace_chain[i][0], b.trace_chain[i][0])
            div = ScheduleDivergence(source="trace", index=i, time=t)
            div.procs = sorted(_procs_at_time(a, t) | _procs_at_time(b, t))
            return div
    # canonical streams identical: the runs executed the same event
    # multiset at every instant, so only a same-instant *reorder* can
    # explain a differing outcome — locate the first one
    k = min(len(a.ordered_schedule), len(b.ordered_schedule))
    for i in range(k):
        (ta, ea), (tb, eb) = a.ordered_schedule[i], b.ordered_schedule[i]
        if ta != tb or ea != eb:
            t = min(ta, tb)
            ca, cb = Counter(ea), Counter(eb)
            div = ScheduleDivergence(
                source="order", index=i, time=t,
                only_a=sorted((ca - cb).elements()),
                only_b=sorted((cb - ca).elements()),
            )
            div.procs = sorted(_procs_at_time(a, t) | _procs_at_time(b, t))
            return div
    return None


@dataclass
class Conflict:
    """A statically-conflicting access pair at the divergence point."""

    key: AttrKey
    kind: str  # "write-write" | "read-write"
    proc_a: str
    proc_b: str
    stack_a: List[str]
    stack_b: List[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attr": _key_label(self.key),
            "class": self.key[0],
            "kind": self.kind,
            "a": {"proc": self.proc_a, "stack": self.stack_a},
            "b": {"proc": self.proc_b, "stack": self.stack_b},
        }


def _match_static(analysis: RaceAnalysis, ref: ProcRef) -> Optional[str]:
    """Map a runtime process code ref onto its call-graph function."""
    fname, qualname, lineno = ref
    real = os.path.realpath(fname)
    for qual, fn in analysis.graph.functions.items():
        if fn.lineno == lineno and os.path.realpath(fn.path) == real:
            return qual
    for qual in analysis.graph.functions:
        if qual == qualname or qual.endswith("." + qualname):
            return qual
    return None


def attribute_divergence(div: ScheduleDivergence,
                         analysis: RaceAnalysis) -> List[Conflict]:
    """Name the conflicting shared-state access pairs behind a divergence
    using the static effect closures, with both process call paths."""
    eff = analysis.effects
    mapped = sorted({q for q in (_match_static(analysis, r) for r in div.procs)
                     if q is not None})
    conflicts: List[Conflict] = []
    for i, qa in enumerate(mapped):
        for qb in mapped[i + 1:]:
            if qa == qb:
                continue
            wa = eff.closure_writes.get(qa, set())
            wb = eff.closure_writes.get(qb, set())
            ra = eff.closure_reads.get(qa, set())
            rb = eff.closure_reads.get(qb, set())
            pairs = [(k, "write-write") for k in sorted(wa & wb)]
            pairs += [(k, "read-write") for k in sorted((ra & wb) | (wa & rb))
                      if k not in (wa & wb)]
            for key, kind in pairs:
                akinds: Tuple[str, ...] = ("write",) if key in wa \
                    else ("read", "write")
                bkinds: Tuple[str, ...] = ("write",) if key in wb \
                    else ("read", "write")
                conflicts.append(Conflict(
                    key=key, kind=kind, proc_a=qa, proc_b=qb,
                    stack_a=access_path(analysis, qa, key, akinds),
                    stack_b=access_path(analysis, qb, key, bkinds),
                ))
    return conflicts


#: relative tolerance for float metric fields under perturbation.  A
#: same-instant permutation legitimately shifts a few completions by
#: sub-millisecond amounts (queue service order within one timestamp),
#: which perturbs floating-point accumulators (histogram sums/means) at
#: the 1e-7 level while every count, bucket, and outcome stays identical.
METRICS_RTOL = 1e-5


def _values_close(a: Any, b: Any, rtol: float = METRICS_RTOL) -> bool:
    """Structural equality with a float tolerance (exact for everything
    else: ints, strings, dict keys, list lengths)."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return math.isclose(a, b, rel_tol=rtol, abs_tol=1e-9)
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_values_close(a[k], b[k], rtol) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_values_close(x, y, rtol) for x, y in zip(a, b)))
    return bool(a == b)


@dataclass
class Comparison:
    """Baseline vs one perturbed run.

    Verdict semantics: permuting causally-unordered same-instant events
    is *allowed* to churn the micro-schedule (``schedule_match`` is a
    diagnostic, not a gate) and to shift float metric accumulators
    below :data:`METRICS_RTOL`.  What must survive the permutation is
    everything the experiments report: the canonical trace stream, the
    metrics within tolerance, and the stage-timeline observables.
    """

    tiebreak_seed: int
    schedule_match: bool
    trace_match: bool
    metrics_match: bool  # exact digest equality (diagnostic)
    observables_match: bool
    metrics_close: bool = True  # within METRICS_RTOL (gates the verdict)
    divergence: Optional[ScheduleDivergence] = None
    conflicts: List[Conflict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.trace_match and self.metrics_close
                and self.observables_match)

    @property
    def exact(self) -> bool:
        """Bit-identical across every stream, micro-schedule included."""
        return (self.schedule_match and self.trace_match
                and self.metrics_match and self.observables_match)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "tiebreak_seed": self.tiebreak_seed,
            "ok": self.ok,
            "exact": self.exact,
            "schedule_match": self.schedule_match,
            "trace_match": self.trace_match,
            "metrics_match": self.metrics_match,
            "metrics_close": self.metrics_close,
            "observables_match": self.observables_match,
        }
        if self.divergence is not None:
            out["divergence"] = self.divergence.to_dict()
        if self.conflicts:
            out["conflicts"] = [c.to_dict() for c in self.conflicts]
        return out


def compare_captures(base: RunCapture, perturbed: RunCapture,
                     analysis: Optional[RaceAnalysis] = None) -> Comparison:
    metrics_match = base.metrics_digest == perturbed.metrics_digest
    if metrics_match:
        metrics_close = True
    elif base.metrics is not None and perturbed.metrics is not None:
        metrics_close = _values_close(base.metrics, perturbed.metrics)
    else:
        metrics_close = False
    cmp = Comparison(
        tiebreak_seed=int(perturbed.tiebreak_seed or 0),
        schedule_match=base.schedule_digest == perturbed.schedule_digest,
        trace_match=base.trace_digest == perturbed.trace_digest,
        metrics_match=metrics_match,
        metrics_close=metrics_close,
        observables_match=base.observables == perturbed.observables,
    )
    if not cmp.exact:
        cmp.divergence = find_divergence(base, perturbed)
        if not cmp.ok and cmp.divergence is not None and analysis is not None:
            cmp.conflicts = attribute_divergence(cmp.divergence, analysis)
    return cmp


# ---------------------------------------------------------------------------
# dynamic tier: campaign orchestration


def capture_campaign(version_name: str, fault: str, seed: int,
                     tiebreak_seed: Optional[int], quick: bool = True,
                     smoke: bool = False) -> RunCapture:
    """Run one campaign (or the smoke scenario) under a tie-break mode
    and capture every observable stream."""
    from repro.core.quantify import QuantifyConfig, run_single_fault
    from repro.experiments.configs import version
    from repro.faults.types import FaultKind
    from repro.obs.telemetry import Telemetry

    spec = version(version_name)
    telemetry = Telemetry()
    recorder = ScheduleRecorder()
    observables: Dict[str, Any]
    if smoke:
        from repro.experiments.profiles import SMALL
        from repro.experiments.runner import build_world

        world = build_world(spec, SMALL, seed=seed, telemetry=telemetry,
                            tiebreak_seed=tiebreak_seed, monitor=recorder)
        world.env.run(until=80.0)
        world.injector.inject_for(FaultKind(fault), "n1", duration=30.0)
        world.env.run(until=140.0)
        stats = world.stats
        observables = {
            "issued": stats.issued,
            "succeeded": stats.succeeded,
            "outcomes": {str(k): v for k, v in sorted(stats.outcomes.items())},
        }
        env = world.env
    else:
        from dataclasses import replace

        config = QuantifyConfig.quick(seed=seed) if quick else \
            replace(QuantifyConfig.from_env(), seed=seed)
        trace, world = run_single_fault(spec, FaultKind(fault), config,
                                        telemetry=telemetry,
                                        tiebreak_seed=tiebreak_seed,
                                        monitor=recorder)
        observables = {
            "t_inject": trace.t_inject,
            "t_detect": trace.t_detect,
            "t_repair": trace.t_repair,
            "t_reset": trace.t_reset,
            "t_end": trace.t_end,
            "normal_tput": trace.normal_tput,
        }
        env = world.env
    metrics = telemetry.metrics.snapshot()
    return RunCapture(
        tiebreak_seed=tiebreak_seed,
        schedule=recorder.schedule(),
        ordered_schedule=recorder.ordered(),
        proc_refs=recorder.proc_refs(),
        observables=observables,
        trace_chain=canonical_trace_chain(telemetry.tracer.events),
        metrics_digest=hashlib.sha256(_canonical(metrics)).hexdigest(),
        metrics=metrics,
        processed=env.processed_count,
    )


@dataclass
class RaceCheckResult:
    """Full two-tier report: static findings + perturbation comparisons."""

    version: str
    fault: str
    seed: int
    mode: str
    baseline: Optional[RunCapture] = None
    perturbed: List[RunCapture] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    static_findings: List[Finding] = field(default_factory=list)
    static_summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def dynamic_ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    @property
    def static_ok(self) -> bool:
        from repro.analysis.rules import Severity

        return not any(f.severity is Severity.ERROR
                       for f in self.static_findings)

    @property
    def ok(self) -> bool:
        return self.dynamic_ok and self.static_ok

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RACECHECK_SCHEMA,
            "version": self.version,
            "fault": self.fault,
            "seed": self.seed,
            "mode": self.mode,
            "ok": self.ok,
            "static": {
                "ok": self.static_ok,
                "findings": [f.to_dict() for f in self.static_findings],
                "summary": self.static_summary,
            },
            "dynamic": {
                "ok": self.dynamic_ok,
                "baseline": self.baseline.summary() if self.baseline else None,
                "perturbed": [c.summary() for c in self.perturbed],
                "comparisons": [c.to_dict() for c in self.comparisons],
            },
        }


def run_racecheck(version_name: str = "coop", fault: str = "node_crash",
                  seed: int = 0, tiebreak_seeds: Sequence[int] = (1, 2),
                  quick: bool = True, smoke: bool = False,
                  paths: Sequence[str] = ("src/repro",),
                  static: bool = True, dynamic: bool = True
                  ) -> RaceCheckResult:
    """The full two-tier check behind ``repro racecheck``."""
    result = RaceCheckResult(version=version_name, fault=fault, seed=seed,
                             mode="smoke" if smoke else "campaign")
    analysis: Optional[RaceAnalysis] = None
    if static:
        from repro.analysis.flow import analyze_flow

        flow = analyze_flow(list(paths))
        analysis = flow.races
        result.static_findings = [f for f in flow.findings
                                  if f.rule in ("REP014", "REP015")]
        if analysis is not None:
            result.static_summary = analysis.to_dict()
    if dynamic:
        result.baseline = capture_campaign(version_name, fault, seed,
                                           tiebreak_seed=None, quick=quick,
                                           smoke=smoke)
        for ts in tiebreak_seeds:
            cap = capture_campaign(version_name, fault, seed,
                                   tiebreak_seed=int(ts), quick=quick,
                                   smoke=smoke)
            result.perturbed.append(cap)
            result.comparisons.append(
                compare_captures(result.baseline, cap, analysis))
    return result


def format_racecheck(result: RaceCheckResult) -> str:
    lines = [f"racecheck: {result.version}/{result.fault} "
             f"seed={result.seed} mode={result.mode}"]
    if result.static_summary:
        s = result.static_summary
        lines.append(f"  static: {s.get('roots', 0)} process roots, "
                     f"{len(s.get('shared_writes', {}))} multi-writer "
                     f"attribute(s); REP014={s.get('rep014', 0)} "
                     f"REP015={s.get('rep015', 0)}; "
                     f"{len(result.static_findings)} unsuppressed finding(s)")
    for f in result.static_findings:
        lines.append(f"  {f}")
    if result.baseline is not None:
        lines.append(f"  baseline (FIFO): {result.baseline.processed} events "
                     f"over {len(result.baseline.schedule)} timestamps, "
                     f"schedule {result.baseline.schedule_digest[:16]}…")
    for cmp in result.comparisons:
        if cmp.exact:
            verdict = "MATCH"
        elif cmp.ok:
            verdict = "MATCH (micro-schedule churn only)"
        else:
            verdict = "DIVERGE"
        metrics_flag = ("ok" if cmp.metrics_match
                        else "~" if cmp.metrics_close else "X")
        lines.append(f"  tiebreak_seed={cmp.tiebreak_seed}: {verdict} "
                     f"(schedule={'ok' if cmp.schedule_match else 'X'} "
                     f"trace={'ok' if cmp.trace_match else 'X'} "
                     f"metrics={metrics_flag} "
                     f"results={'ok' if cmp.observables_match else 'X'})")
        if cmp.divergence is not None and not cmp.ok:
            lines.append("  " + cmp.divergence.describe()
                         .replace("\n", "\n  "))
        for c in cmp.conflicts:
            lines.append(f"    conflict [{c.kind}] on {_key_label(c.key)}:")
            lines.append(f"      A {c.proc_a}: {' -> '.join(c.stack_a)}")
            lines.append(f"      B {c.proc_b}: {' -> '.join(c.stack_b)}")
    if result.ok:
        lines.append("OK: no schedule-order dependence detected — "
                     "happens-before-preserving scheduler refactors are "
                     "digest-safe")
    else:
        lines.append("FAIL: results depend on same-instant tie-break order")
    return "\n".join(lines)
