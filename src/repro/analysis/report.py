"""Reporters for reprolint results: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.analysis.lint import LintResult
from repro.analysis.rules import RULES

REPORT_SCHEMA_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """One line per finding plus a summary, pyflakes-style."""
    lines = [str(f) for f in result.findings]
    if verbose:
        for f in result.findings:
            rule = RULES[f.rule]
            lines.append(f"    {rule.name}: {rule.rationale}")
    counts = result.counts()
    by_rule = ", ".join(f"{rid}:{n}" for rid, n in sorted(counts.items()))
    lines.append(
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s) "
        f"in {result.files_scanned} file(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + (f"; {result.suppressed} suppressed" if result.suppressed else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> dict:
    """Stable JSON document (uploaded as a CI artifact)."""
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "suppressed": result.suppressed,
        "counts": result.counts(),
        "findings": [f.to_dict() for f in result.findings],
    }


def write_json(result: LintResult, fp: IO[str]) -> None:
    json.dump(render_json(result), fp, indent=2, sort_keys=True)
    fp.write("\n")


def render_rules(rule_id: Optional[str] = None) -> str:
    """``repro lint --list-rules`` output: the registry, documented."""
    lines = []
    for rid in sorted(RULES):
        if rule_id is not None and rid != rule_id:
            continue
        rule = RULES[rid]
        scope = "sim-reachable code" if rule.sim_only else "all code"
        lines.append(f"{rule.id} {rule.name} [{rule.severity}] ({scope})")
        lines.append(f"    {rule.summary}")
        lines.append(f"    {rule.rationale}")
        if rule.allowlist:
            lines.append(f"    allowlisted: {', '.join(rule.allowlist)}")
    return "\n".join(lines)
