"""Reporters for reprolint results: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.analysis.flow import FlowResult
from repro.analysis.lint import LintResult
from repro.analysis.perfcheck import PerfResult
from repro.analysis.rules import RULES

#: 4: document gained a "perf" section (hot-set cost analysis), findings
#: may carry REP017-REP021
REPORT_SCHEMA_VERSION = 4


def render_text(result: LintResult, verbose: bool = False,
                flow: Optional[FlowResult] = None,
                perf: Optional[PerfResult] = None) -> str:
    """One line per finding plus a summary, pyflakes-style."""
    lines = [str(f) for f in result.findings]
    if verbose:
        for f in result.findings:
            rule = RULES[f.rule]
            lines.append(f"    {rule.name}: {rule.rationale}")
    counts = result.counts()
    by_rule = ", ".join(f"{rid}:{n}" for rid, n in sorted(counts.items()))
    lines.append(
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s) "
        f"in {result.files_scanned} file(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + (f"; {result.suppressed} suppressed" if result.suppressed else "")
    )
    if flow is not None:
        lines.append(
            f"flow: {len(flow.sim_reachable)} sim-reachable function(s) from "
            f"{len(flow.sim_seeds)} seed(s); "
            f"{len(flow.newly_covered)} beyond the path heuristic; "
            f"{len(flow.sent)} kind(s) sent, {len(flow.handled)} handled, "
            f"{flow.dynamic_sends} dynamic send(s)"
        )
        if verbose and flow.newly_covered:
            lines.append("flow: newly covered by propagation:")
            lines.extend(f"    {qual}" for qual in flow.newly_covered)
    if perf is not None:
        by_sub = ", ".join(
            f"{sub}:{n}" for sub, n in
            sorted(perf.hot_by_subsystem().items(), key=lambda kv: -kv[1]))
        lines.append(
            f"perf: {len(perf.hot)} hot function(s) from "
            f"{len(perf.kernel_seeds)} kernel seed(s) + "
            f"{len(perf.spawn_roots)} process-generator root(s)"
            + (f" [{by_sub}]" if by_sub else "")
        )
        if perf.validation is not None:
            v = perf.validation
            lines.append(
                f"perf: validation ({v['scenario']}): static hot set covers "
                f"{v['recall']:.0%} of the dynamic top-{v['top_n']} wall "
                f"time; precision {v['precision']:.0%}"
                + (f"; missed: {', '.join(v['missed_subsystems'])}"
                   if v["missed_subsystems"] else "")
            )
            if v["rule_weights"]:
                ranked = ", ".join(f"{rid} {w:.0%}"
                                   for rid, w in v["rule_weights"].items())
                lines.append(f"perf: rules by measured weight: {ranked}")
    return "\n".join(lines)


def render_json(result: LintResult, flow: Optional[FlowResult] = None,
                perf: Optional[PerfResult] = None) -> dict:
    """Stable JSON document (uploaded as a CI artifact)."""
    doc = {
        "schema": REPORT_SCHEMA_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "suppressed": result.suppressed,
        "counts": result.counts(),
        "findings": [f.to_dict() for f in result.findings],
        "suppression_audit": {
            "declared": sum(len(ids) for by_line in
                            result.declared_suppressions.values()
                            for ids in by_line.values()),
            "unused": sum(1 for f in result.findings if f.rule == "REP016"),
        },
    }
    if flow is not None:
        doc["flow"] = flow.to_dict()
    if perf is not None:
        doc["perf"] = perf.to_dict()
    return doc


def write_json(result: LintResult, fp: IO[str],
               flow: Optional[FlowResult] = None,
               perf: Optional[PerfResult] = None) -> None:
    json.dump(render_json(result, flow, perf), fp, indent=2, sort_keys=True)
    fp.write("\n")


def render_rules(rule_id: Optional[str] = None) -> str:
    """``repro lint --list-rules`` output: the registry, documented."""
    lines = []
    for rid in sorted(RULES):
        if rule_id is not None and rid != rule_id:
            continue
        rule = RULES[rid]
        scope = "sim-reachable code" if rule.sim_only else "all code"
        if rule.flow:
            scope += ", --flow only"
        if rule.perf:
            scope = "kernel hot set, --perf only"
        lines.append(f"{rule.id} {rule.name} [{rule.severity}] ({scope})")
        lines.append(f"    {rule.summary}")
        lines.append(f"    {rule.rationale}")
        if rule.allowlist:
            lines.append(f"    allowlisted: {', '.join(rule.allowlist)}")
    return "\n".join(lines)
