"""The reprolint rule registry: IDs, severities, and documentation.

Each rule guards one way the measurement pipeline can silently lose its
integrity.  The engine (:mod:`repro.analysis.lint`) implements the
detection; this module is the single source of truth for what each rule
means, so the reporters, the docs, and ``repro lint --list-rules`` never
drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class Severity(enum.Enum):
    """Finding severity.  ``ERROR`` findings fail the lint gate."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Rule:
    """One reprolint rule."""

    id: str
    name: str
    severity: Severity
    summary: str
    rationale: str
    #: repo-relative path suffixes exempt from this rule (e.g. the RNG
    #: factory itself is the one legitimate ``default_rng`` call site).
    allowlist: Tuple[str, ...] = field(default=())
    #: True if the rule only applies to simulation-reachable code
    #: (sim/press/ha/net/faults/workload/hardware/bookstore/auction).
    sim_only: bool = False


RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            id="REP001",
            name="no-wallclock",
            severity=Severity.ERROR,
            summary="wall-clock call in simulation-reachable code",
            rationale=(
                "Simulated components must read time from Environment.now. "
                "A time.time()/datetime.now() call couples results to the "
                "host clock, so two runs of the same seed diverge and the "
                "fitted stage boundaries stop being reproducible."
            ),
            sim_only=True,
        ),
        Rule(
            id="REP002",
            name="unregistered-rng",
            severity=Severity.ERROR,
            summary="RNG not drawn from RngRegistry.stream()",
            rationale=(
                "Every stochastic element draws from a named stream so that "
                "adding a consumer never perturbs the draws of existing "
                "ones.  The global random module or an ad-hoc "
                "default_rng() silently breaks that isolation and the "
                "cross-version comparisons with it."
            ),
            allowlist=(
                "sim/rng.py",  # the registry itself
                # Workload seed plumbing: these take an explicit derived
                # seed at the boundary and own no simulation state.
                "workload/stats.py",
                "workload/tracefile.py",
            ),
            sim_only=True,
        ),
        Rule(
            id="REP003",
            name="swallowed-exception",
            severity=Severity.ERROR,
            summary="bare/broad except that discards the exception",
            rationale=(
                "Fault-handling code that catches everything and drops it "
                "converts injected faults into silent no-ops; the campaign "
                "then under-counts unavailability.  Catch the narrow "
                "exception, or use the bound name / re-raise."
            ),
        ),
        Rule(
            id="REP004",
            name="unsafe-trace-payload",
            severity=Severity.ERROR,
            summary="trace/marker payload with unordered or identity-based value",
            rationale=(
                "Trace events are digested for determinism checks and "
                "replayed from JSON; a raw set (iteration order) or id()- "
                "derived value in the payload makes equal runs hash "
                "differently.  Pass sorted() lists or plain literals."
            ),
        ),
        Rule(
            id="REP005",
            name="unordered-iteration",
            severity=Severity.ERROR,
            summary="iteration over an unordered set in an effectful loop",
            rationale=(
                "A loop over a set that sends messages, schedules events, "
                "or mutates membership makes event order depend on hash "
                "iteration order.  Iterate sorted(...) so delivery order "
                "is a function of the seed alone."
            ),
            sim_only=True,
        ),
        Rule(
            id="REP006",
            name="mutable-default-arg",
            severity=Severity.ERROR,
            summary="mutable default argument",
            rationale=(
                "A shared mutable default leaks state between worlds built "
                "in the same process; campaign N's results then depend on "
                "campaigns 1..N-1 having run."
            ),
        ),
        Rule(
            id="REP007",
            name="suspicious-delay",
            severity=Severity.WARNING,
            summary="negative or literal-zero schedule()/timeout() delay",
            rationale=(
                "Negative delays raise at runtime deep inside a campaign; "
                "literal-zero delays schedule same-instant events whose "
                "relative order is easy to get wrong — make the intended "
                "ordering explicit (priority or a real delay)."
            ),
            sim_only=True,
        ),
    )
}

#: Top-level package directories whose code runs inside the simulation.
SIM_SCOPE_DIRS = frozenset(
    {
        "sim",
        "press",
        "ha",
        "net",
        "faults",
        "workload",
        "hardware",
        "bookstore",
        "auction",
        "experiments",
    }
)
