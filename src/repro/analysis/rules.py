"""The reprolint rule registry: IDs, severities, and documentation.

Each rule guards one way the measurement pipeline can silently lose its
integrity.  The engine (:mod:`repro.analysis.lint`) implements the
detection; this module is the single source of truth for what each rule
means, so the reporters, the docs, and ``repro lint --list-rules`` never
drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class Severity(enum.Enum):
    """Finding severity.  ``ERROR`` findings fail the lint gate."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Rule:
    """One reprolint rule."""

    id: str
    name: str
    severity: Severity
    summary: str
    rationale: str
    #: repo-relative path suffixes exempt from this rule (e.g. the RNG
    #: factory itself is the one legitimate ``default_rng`` call site).
    allowlist: Tuple[str, ...] = field(default=())
    #: True if the rule only applies to simulation-reachable code
    #: (sim/press/ha/net/faults/workload/hardware/bookstore/auction).
    sim_only: bool = False
    #: True if the rule needs the whole-program call graph
    #: (:mod:`repro.analysis.flow`); these only fire under ``lint --flow``.
    flow: bool = False
    #: True if the rule needs the hot-set cost analysis
    #: (:mod:`repro.analysis.perfcheck`); these only fire under
    #: ``lint --perf``.
    perf: bool = False


RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            id="REP001",
            name="no-wallclock",
            severity=Severity.ERROR,
            summary="wall-clock call in simulation-reachable code",
            rationale=(
                "Simulated components must read time from Environment.now. "
                "A time.time()/datetime.now() call couples results to the "
                "host clock, so two runs of the same seed diverge and the "
                "fitted stage boundaries stop being reproducible."
            ),
            allowlist=(
                # The parallel executor is reachable from sim scope via
                # Sweep.run(jobs=N)'s call edge, but its wall-clock reads
                # time the *real* worker processes (speedup accounting)
                # and its one os.environ read is the worker-bootstrap
                # PYTHONHASHSEED pin check — neither touches simulated
                # time or per-run results.
                "parallel/executor.py",
                "parallel/worker.py",
                # The performance-observability layer times the *host*:
                # TimingProfiler brackets callback batches with
                # perf_counter, and the bench harness/provenance stamps
                # measure wall time and record timestamps.  None of it
                # flows into simulated time or any digested stream (the
                # bench's cross-mode digest equality pins exactly that).
                "obs/kernelprof.py",
                "obs/perf.py",
                "repro/bench.py",
            ),
            sim_only=True,
        ),
        Rule(
            id="REP002",
            name="unregistered-rng",
            severity=Severity.ERROR,
            summary="RNG not drawn from RngRegistry.stream()",
            rationale=(
                "Every stochastic element draws from a named stream so that "
                "adding a consumer never perturbs the draws of existing "
                "ones.  The global random module or an ad-hoc "
                "default_rng() silently breaks that isolation and the "
                "cross-version comparisons with it."
            ),
            allowlist=(
                "sim/rng.py",  # the registry itself
                # Workload seed plumbing: these take an explicit derived
                # seed at the boundary and own no simulation state.
                "workload/stats.py",
                "workload/tracefile.py",
            ),
            sim_only=True,
        ),
        Rule(
            id="REP003",
            name="swallowed-exception",
            severity=Severity.ERROR,
            summary="bare/broad except that discards the exception",
            rationale=(
                "Fault-handling code that catches everything and drops it "
                "converts injected faults into silent no-ops; the campaign "
                "then under-counts unavailability.  Catch the narrow "
                "exception, or use the bound name / re-raise."
            ),
        ),
        Rule(
            id="REP004",
            name="unsafe-trace-payload",
            severity=Severity.ERROR,
            summary="trace/marker payload with unordered or identity-based value",
            rationale=(
                "Trace events are digested for determinism checks and "
                "replayed from JSON; a raw set (iteration order) or id()- "
                "derived value in the payload makes equal runs hash "
                "differently.  Pass sorted() lists or plain literals."
            ),
        ),
        Rule(
            id="REP005",
            name="unordered-iteration",
            severity=Severity.ERROR,
            summary="iteration over an unordered set in an effectful loop",
            rationale=(
                "A loop over a set that sends messages, schedules events, "
                "or mutates membership makes event order depend on hash "
                "iteration order.  Iterate sorted(...) so delivery order "
                "is a function of the seed alone."
            ),
            sim_only=True,
        ),
        Rule(
            id="REP006",
            name="mutable-default-arg",
            severity=Severity.ERROR,
            summary="mutable default argument",
            rationale=(
                "A shared mutable default leaks state between worlds built "
                "in the same process; campaign N's results then depend on "
                "campaigns 1..N-1 having run."
            ),
        ),
        Rule(
            id="REP007",
            name="suspicious-delay",
            severity=Severity.WARNING,
            summary="negative or literal-zero schedule()/timeout() delay",
            rationale=(
                "Negative delays raise at runtime deep inside a campaign; "
                "literal-zero delays schedule same-instant events whose "
                "relative order is easy to get wrong — make the intended "
                "ordering explicit (priority or a real delay)."
            ),
            sim_only=True,
        ),
        Rule(
            id="REP008",
            name="unhandled-kind",
            severity=Severity.ERROR,
            summary="message kind sent but matched by no receiver branch",
            rationale=(
                "A Message(kind=...) with no handler branch anywhere is "
                "silently dropped at dispatch — indistinguishable from a "
                "real network fault, so it corrupts the availability "
                "numbers instead of failing loudly.  This is exactly the "
                "implicit-cooperation failure mode the paper measures."
            ),
            flow=True,
        ),
        Rule(
            id="REP009",
            name="dead-handler",
            severity=Severity.WARNING,
            summary="handler branch for a kind that is never sent",
            rationale=(
                "A dispatch branch comparing against a kind no sender "
                "constructs is dead protocol: either the sender was "
                "removed and the branch should go, or the kind string is "
                "misspelled on one side."
            ),
            flow=True,
        ),
        Rule(
            id="REP010",
            name="undispatched-droppable",
            severity=Severity.ERROR,
            summary="kind declared droppable but absent from any dispatch branch",
            rationale=(
                "Droppable kinds may be shed under overload, but they "
                "must still have a real handler for the normal path.  A "
                "droppable kind with no dispatch branch is *always* "
                "dropped, which under-counts the work the protocol was "
                "meant to do."
            ),
            flow=True,
        ),
        Rule(
            id="REP011",
            name="lost-generator",
            severity=Severity.ERROR,
            summary="generator function called as a bare statement",
            rationale=(
                "Calling a sim-process generator without yield from / "
                "env.process(...) creates the generator object and throws "
                "it away: the protocol step never executes, yet the code "
                "reads as if it did.  The scheduler cannot detect this; "
                "only whole-program analysis can."
            ),
            flow=True,
        ),
        Rule(
            id="REP012",
            name="orphan-event",
            severity=Severity.WARNING,
            summary="Event created but never yielded, succeeded, or referenced",
            rationale=(
                "An Event that is constructed and never used again can "
                "never fire its callbacks or wake a waiter — usually a "
                "refactoring leftover where the succeed()/yield moved "
                "but the construction stayed."
            ),
            flow=True,
        ),
        Rule(
            id="REP013",
            name="trace-context-loss",
            severity=Severity.ERROR,
            summary="message built or process spawned without trace context "
                    "in span-aware code",
            rationale=(
                "Causal tracing threads a ctx through every hop of a "
                "request's path.  Code that already handles spans (takes a "
                "ctx parameter or opens spans) but constructs a Message or "
                "spawns an env.process without passing ctx= silently cuts "
                "the trace: downstream spans re-root or vanish, and the "
                "critical-path / blame reports under-attribute that hop. "
                "Pass ctx=... explicitly (ctx=None is fine for genuinely "
                "untraced traffic)."
            ),
            sim_only=True,
        ),
        Rule(
            id="REP014",
            name="unordered-shared-write",
            severity=Severity.WARNING,
            summary="attribute written by two process generators with no "
                    "ordering edge",
            rationale=(
                "Two distinct process generators that both write the same "
                "attribute of the same class race whenever they run at the "
                "same instant: the kernel's FIFO tie-break is a convention, "
                "not a causal ordering, so the final value silently depends "
                "on schedule order — and flips under any scheduler refactor "
                "or overlapping-fault campaign.  Order the writers with an "
                "explicit event/priority edge, or make the state per-process."
            ),
            sim_only=True,
            flow=True,
        ),
        Rule(
            id="REP015",
            name="torn-read-modify-write",
            severity=Severity.ERROR,
            summary="read-modify-write of shared state torn across a yield",
            rationale=(
                "A generator that reads shared state into a local, yields, "
                "and writes the modified local back has a lost-update race: "
                "another same-instant process can interleave at the yield, "
                "and its update is overwritten by the stale value.  Re-read "
                "after the yield, or do the whole read-modify-write "
                "synchronously (DES callbacks are atomic between yields)."
            ),
            sim_only=True,
            flow=True,
        ),
        Rule(
            id="REP016",
            name="unused-suppression",
            severity=Severity.WARNING,
            summary="# reprolint: disable= comment suppresses nothing",
            rationale=(
                "A suppression that no longer matches any finding is stale "
                "documentation: the violation it justified was fixed or "
                "moved, and the comment now silently licenses a future "
                "regression on that line.  Delete it (or fix the rule id "
                "if it was misspelled)."
            ),
        ),
        Rule(
            id="REP017",
            name="hot-loop-allocation",
            severity=Severity.WARNING,
            summary="per-event object/closure/sequence allocation inside a "
                    "hot loop body",
            rationale=(
                "A closure, comprehension, or list()/dict()/set()/tuple() "
                "constructor inside an event-loop body allocates on every "
                "event.  At campaign scale (millions of events per cell, "
                "thousands of cells in a capacity sweep) that allocation "
                "dominates the per-event budget — build the object once "
                "outside the loop, or restructure so the loop moves "
                "references, not containers."
            ),
            perf=True,
        ),
        Rule(
            id="REP018",
            name="hot-class-no-slots",
            severity=Severity.WARNING,
            summary="class on the hot path without __slots__",
            rationale=(
                "Instances without __slots__ carry a per-instance dict: "
                "every attribute read on the event path costs a dict "
                "lookup, and every per-event instantiation allocates the "
                "dict too.  Classes whose methods sit in the kernel hot "
                "set should declare __slots__ (mixin bases with "
                "incompatible layouts are the one justified suppression)."
            ),
            perf=True,
        ),
        Rule(
            id="REP019",
            name="unguarded-hot-telemetry",
            severity=Severity.WARNING,
            summary="eager formatting for telemetry on a hot path",
            rationale=(
                "The null-object telemetry makes emit()/mark()/inc() free "
                "when observability is off — but an f-string, .format() or "
                "%-format *argument* is still evaluated before the no-op "
                "call.  On the hot path, guard the emission "
                "(tracer.enabled) or pass raw fields and defer formatting "
                "to the exporter, so Telemetry.disabled() stays free."
            ),
            perf=True,
        ),
        Rule(
            id="REP020",
            name="hot-loop-attr-reload",
            severity=Severity.WARNING,
            summary="the same attribute chain dereferenced repeatedly "
                    "inside a hot loop",
            rationale=(
                "CPython re-executes every self.x.y dereference: three "
                "reads of self._queue per iteration are three dict "
                "lookups per event.  Hoist the chain into a local before "
                "the loop (locals are array reads); the kernel's event "
                "loop and the PRESS dispatch loops are exactly the places "
                "where this is measurable."
            ),
            perf=True,
        ),
        Rule(
            id="REP021",
            name="hot-loop-linear-scan",
            severity=Severity.ERROR,
            summary="O(n) scan or sort inside a hot loop",
            rationale=(
                "A membership test against a list, a per-event sorted(), "
                "or a list.pop(0)/insert(0,..) inside the event loop turns "
                "the O(log n) kernel into O(n log n) or worse as the "
                "structure grows with load.  Use a set/dict for "
                "membership, a deque for FIFO, or sort once outside the "
                "loop — or suppress with the bound on n stated."
            ),
            perf=True,
        ),
    )
}

#: Top-level package directories whose code runs inside the simulation.
SIM_SCOPE_DIRS = frozenset(
    {
        "sim",
        "press",
        "ha",
        "net",
        "faults",
        "workload",
        "hardware",
        "bookstore",
        "auction",
        "experiments",
    }
)
