"""Runtime determinism sanitizer: ``repro sanitize``.

Static rules catch the *patterns* that break reproducibility; this
module checks the property itself.  The same campaign is run twice in
subprocesses with the same master seed but **different**
``PYTHONHASHSEED`` values, and the chained trace-event digests plus the
final metrics snapshot are diffed.  Any divergence means some code path
still leaks hash-iteration order (or worse, wall-clock state) into the
event stream — exactly the nondeterminism that would smear the paper's
7-stage template fits across runs.

Two modes:

``smoke``
    A fixed short scenario (COOP/SMALL, node freeze at t=80, run to
    t=140).  Fast enough for a test-suite gate.

``campaign`` (default)
    A full single-fault campaign via
    :func:`repro.core.quantify.run_single_fault` with quick windows —
    what the CI sanitize job runs.

The per-run fingerprint is produced by ``repro digest`` (same package,
:func:`campaign_fingerprint`), so a human can also inspect one run's
chain directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: 3: the document gained "tiebreak_seed" (schedule-perturbation runs)
FINGERPRINT_SCHEMA = 3

#: hash seeds chosen for the two runs; any distinct pair works, these are
#: merely reproducible documentation of "two different salts".
DEFAULT_HASH_SEEDS = (101, 202)


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def campaign_fingerprint(version_name: str, fault: str, seed: int,
                         quick: bool = True, smoke: bool = False,
                         tiebreak_seed: Optional[int] = None) -> Dict[str, Any]:
    """Run one experiment in-process and fingerprint everything observable.

    Returns a JSON-safe document with a chained per-event digest (so two
    fingerprints can be diffed down to the first diverging event), a
    final trace digest, a metrics digest, and the stage timeline.

    ``tiebreak_seed`` perturbs the kernel's same-instant event order
    (see :mod:`repro.analysis.racecheck`); a fingerprint taken under a
    tie-break seed is only comparable to another with the same seed.
    """
    # Imports deferred: `repro lint` must not drag the simulator in.
    from repro.core.quantify import QuantifyConfig, run_single_fault
    from repro.experiments.configs import version
    from repro.faults.types import FaultKind
    from repro.obs.export import event_to_dict
    from repro.obs.spans import spans_digest
    from repro.obs.telemetry import Telemetry

    spec = version(version_name)
    # Span tracing rides along so the double-run check also pins the
    # causal span trees (ids, parentage, sampling) across hash seeds.
    telemetry = Telemetry(trace_spans=True)
    timeline: Dict[str, Any]
    if smoke:
        from repro.experiments.profiles import SMALL
        from repro.experiments.runner import build_world

        world = build_world(spec, SMALL, seed=seed, telemetry=telemetry,
                            tiebreak_seed=tiebreak_seed)
        world.env.run(until=80.0)
        world.injector.inject_for(FaultKind(fault), "n1", duration=30.0)
        world.env.run(until=140.0)
        stats = world.stats
        timeline = {
            "issued": stats.issued,
            "succeeded": stats.succeeded,
            "outcomes": {str(k): v for k, v in sorted(stats.outcomes.items())},
        }
        events = telemetry.tracer.events
        metrics = telemetry.metrics.snapshot()
    else:
        from dataclasses import replace

        # REPRO_QUICK is still honoured when --quick is not passed.
        config = QuantifyConfig.quick(seed=seed) if quick else \
            replace(QuantifyConfig.from_env(), seed=seed)
        trace, world = run_single_fault(spec, FaultKind(fault), config,
                                        telemetry=telemetry,
                                        tiebreak_seed=tiebreak_seed)
        timeline = {
            "t_inject": trace.t_inject,
            "t_detect": trace.t_detect,
            "t_repair": trace.t_repair,
            "t_reset": trace.t_reset,
            "t_end": trace.t_end,
            "normal_tput": trace.normal_tput,
        }
        events = telemetry.tracer.events
        metrics = world.telemetry.metrics.snapshot()

    chain = hashlib.sha256()
    entries: List[Dict[str, Any]] = []
    for i, event in enumerate(events):
        chain.update(_canonical(event_to_dict(event)))
        entries.append({"i": i, "t": event.time, "kind": event.kind,
                        "h": chain.hexdigest()[:12]})
    trace_digest = chain.hexdigest()
    metrics_digest = hashlib.sha256(_canonical(metrics)).hexdigest()
    span_digest = spans_digest(telemetry.spans.spans())
    overall = hashlib.sha256(
        _canonical({"trace": trace_digest, "metrics": metrics_digest,
                    "spans": span_digest, "timeline": timeline})).hexdigest()
    return {
        "schema": FINGERPRINT_SCHEMA,
        "mode": "smoke" if smoke else "campaign",
        "version": spec.name,
        "fault": fault,
        "seed": seed,
        "python_hash_seed": os.environ.get("PYTHONHASHSEED", "unset"),
        "tiebreak_seed": tiebreak_seed,
        "n_events": len(entries),
        "events": entries,
        "trace_digest": trace_digest,
        "metrics_digest": metrics_digest,
        "spans_digest": span_digest,
        "n_spans": len(telemetry.spans),
        "timeline": timeline,
        "digest": overall,
    }


# ---------------------------------------------------------------------------
# double-run orchestration


@dataclass
class Divergence:
    """First point where the two runs' observable streams split."""

    index: int
    a: Optional[Dict[str, Any]]
    b: Optional[Dict[str, Any]]

    def describe(self) -> str:
        def show(entry: Optional[Dict[str, Any]]) -> str:
            if entry is None:
                return "<stream ended>"
            return f"event {entry['i']} t={entry['t']:.3f} {entry['kind']} ({entry['h']})"

        return f"first divergence at index {self.index}:\n" \
               f"  run A: {show(self.a)}\n  run B: {show(self.b)}"


@dataclass
class SanitizeResult:
    """Outcome of one double-run determinism check."""

    ok: bool
    hash_seeds: Tuple[int, int]
    runs: List[Dict[str, Any]] = field(default_factory=list)
    divergence: Optional[Divergence] = None
    trace_match: bool = True
    metrics_match: bool = True
    spans_match: bool = True
    timeline_match: bool = True

    def to_dict(self) -> Dict[str, Any]:
        def strip(doc: Dict[str, Any]) -> Dict[str, Any]:
            return {k: v for k, v in doc.items() if k != "events"}

        out: Dict[str, Any] = {
            "ok": self.ok,
            "hash_seeds": list(self.hash_seeds),
            "trace_match": self.trace_match,
            "metrics_match": self.metrics_match,
            "spans_match": self.spans_match,
            "timeline_match": self.timeline_match,
            "runs": [strip(r) for r in self.runs],
        }
        if self.divergence is not None:
            out["divergence"] = {
                "index": self.divergence.index,
                "a": self.divergence.a,
                "b": self.divergence.b,
            }
        return out


def compare_fingerprints(a: Dict[str, Any], b: Dict[str, Any],
                         hash_seeds: Tuple[int, int]) -> SanitizeResult:
    """Diff two fingerprints; locate the first diverging trace event."""
    result = SanitizeResult(ok=True, hash_seeds=hash_seeds, runs=[a, b])
    result.trace_match = a["trace_digest"] == b["trace_digest"]
    result.metrics_match = a["metrics_digest"] == b["metrics_digest"]
    # .get: schema-1 fingerprints predate span tracing; two of those
    # still compare equal (None == None) rather than failing the check.
    result.spans_match = a.get("spans_digest") == b.get("spans_digest")
    result.timeline_match = a["timeline"] == b["timeline"]
    if not result.trace_match:
        ea, eb = a["events"], b["events"]
        idx = min(len(ea), len(eb))
        for i in range(idx):
            if ea[i]["h"] != eb[i]["h"]:
                idx = i
                break
        result.divergence = Divergence(
            index=idx,
            a=ea[idx] if idx < len(ea) else None,
            b=eb[idx] if idx < len(eb) else None,
        )
    result.ok = (result.trace_match and result.metrics_match
                 and result.spans_match and result.timeline_match)
    return result


def _subprocess_fingerprint(version_name: str, fault: str, seed: int,
                            hash_seed: int, quick: bool,
                            smoke: bool) -> Dict[str, Any]:
    cmd = [sys.executable, "-m", "repro", "digest", version_name, fault,
           "--seed", str(seed)]
    if quick and not smoke:
        cmd.append("--quick")
    if smoke:
        cmd.append("--smoke")
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    # Make sure the child resolves the same `repro` package we are running.
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"digest subprocess (PYTHONHASHSEED={hash_seed}) failed "
            f"rc={proc.returncode}:\n{proc.stderr.strip()}")
    return json.loads(proc.stdout)


def run_sanitize(version_name: str = "coop", fault: str = "node_crash",
                 seed: int = 0,
                 hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
                 quick: bool = True, smoke: bool = False) -> SanitizeResult:
    """The double-run check: same master seed, two hash seeds, diff."""
    ha, hb = int(hash_seeds[0]), int(hash_seeds[1])
    if ha == hb:
        raise ValueError("hash seeds must differ for the check to mean anything")
    a = _subprocess_fingerprint(version_name, fault, seed, ha, quick, smoke)
    b = _subprocess_fingerprint(version_name, fault, seed, hb, quick, smoke)
    return compare_fingerprints(a, b, (ha, hb))


def format_sanitize(result: SanitizeResult) -> str:
    a, b = result.runs
    lines = [
        f"determinism sanitizer: {a['version']}/{a['fault']} seed={a['seed']} "
        f"mode={a['mode']}",
        f"  run A (PYTHONHASHSEED={result.hash_seeds[0]}): "
        f"{a['n_events']} events, trace {a['trace_digest'][:16]}…",
        f"  run B (PYTHONHASHSEED={result.hash_seeds[1]}): "
        f"{b['n_events']} events, trace {b['trace_digest'][:16]}…",
        f"  trace digests:   {'MATCH' if result.trace_match else 'DIVERGE'}",
        f"  metrics digests: {'MATCH' if result.metrics_match else 'DIVERGE'}",
        f"  span digests:    {'MATCH' if result.spans_match else 'DIVERGE'}",
        f"  stage timeline:  {'MATCH' if result.timeline_match else 'DIVERGE'}",
    ]
    if result.divergence is not None:
        lines.append("  " + result.divergence.describe().replace("\n", "\n  "))
    lines.append("OK: bit-reproducible across hash seeds" if result.ok
                 else "FAIL: run is sensitive to PYTHONHASHSEED")
    return "\n".join(lines)
