"""``repro.artifacts``: the self-verifying artifact layer.

The registry (:mod:`.registry`) names every artifact the repository
ships — paper figures/tables, the ``BENCH_*`` baseline documents, the
analysis reports — with its generator, outputs, baseline, and paper /
ROADMAP mapping.  The runner (:mod:`.runner`) regenerates the set in
one command and the manifest (:mod:`.manifest`) stamps every output
with a SHA-256 digest plus git/host provenance, so "do the published
results still fall out of the code?" is a single exit code:

    python -m repro reproduce-all --quick --check

See ``ARTIFACTS.md`` for the per-artifact documentation and
``docs/REPRODUCIBILITY.md`` for manifest/provenance semantics.
"""

from repro.artifacts.manifest import (
    DEFAULT_MANIFEST,
    MANIFEST_SCHEMA,
    ArtifactRecord,
    Manifest,
    compare_deterministic,
    format_manifest,
    read_manifest,
    sha256_file,
    write_manifest,
)
from repro.artifacts.registry import (
    REGISTRY,
    Artifact,
    ReproduceContext,
    ReproduceError,
    select,
)
from repro.artifacts.runner import DEFAULT_OUT_DIR, reproduce_all

__all__ = [
    "Artifact",
    "ArtifactRecord",
    "DEFAULT_MANIFEST",
    "DEFAULT_OUT_DIR",
    "MANIFEST_SCHEMA",
    "Manifest",
    "REGISTRY",
    "ReproduceContext",
    "ReproduceError",
    "compare_deterministic",
    "format_manifest",
    "read_manifest",
    "reproduce_all",
    "select",
    "sha256_file",
    "write_manifest",
]
