"""The artifact manifest: SHA-256 digests + provenance for every output.

``repro reproduce-all`` regenerates the registry (:mod:`.registry`) and
summarizes the run as ``results/MANIFEST.json`` — one record per
artifact carrying

* the SHA-256 and byte size of every file the artifact wrote,
* its wall-clock generation time,
* whether the artifact is *digest-backed* (``deterministic: true`` —
  two runs on the same tree must produce byte-identical outputs) or
  host-dependent (bench wall times, speedups),
* the committed baseline it is checked against under ``--check`` and
  the drift messages, if any,

plus run-level provenance (git SHA + dirty flag, host fingerprint,
python/cpu, timestamp — the same stamp ``benchmarks/TREND.jsonl``
records use, from :func:`repro.obs.perf.provenance`).

The manifest is the machine-readable pass/fail summary of the whole
artifact set: ``summary.ok`` is the one bit CI gates on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple, Union

#: version of the MANIFEST.json document layout
MANIFEST_SCHEMA = 1

#: where ``repro reproduce-all`` writes the manifest by default
DEFAULT_MANIFEST = "results/MANIFEST.json"


def sha256_file(path: Union[str, Path]) -> Tuple[str, int]:
    """(hex digest, byte size) of one file, streamed."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as fp:
        for chunk in iter(lambda: fp.read(65536), b""):
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


@dataclass
class ArtifactRecord:
    """What happened to one registered artifact in one run."""

    name: str
    description: str
    kind: str                       # figure | bench | report
    deterministic: bool             # digest-backed vs host-dependent
    status: str = "skipped"         # ok | failed | skipped
    paper_ref: Optional[str] = None
    roadmap_item: Optional[int] = None
    baseline: Optional[str] = None  # committed document --check diffs against
    wall_seconds: float = 0.0
    #: repo-relative output path -> {"sha256": ..., "bytes": ...}
    outputs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: generator-specific extras (scenario list, finding counts, ...)
    details: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: None = not checked; [] = checked, no drift; else drift messages
    drift: Optional[List[str]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok" and not self.drift

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "deterministic": self.deterministic,
            "status": self.status,
            "paper_ref": self.paper_ref,
            "roadmap_item": self.roadmap_item,
            "baseline": self.baseline,
            "wall_seconds": self.wall_seconds,
            "outputs": self.outputs,
            "details": self.details,
            "error": self.error,
            "drift": self.drift,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ArtifactRecord":
        return cls(
            name=doc["name"],
            description=doc.get("description", ""),
            kind=doc.get("kind", "report"),
            deterministic=bool(doc.get("deterministic", False)),
            status=doc.get("status", "skipped"),
            paper_ref=doc.get("paper_ref"),
            roadmap_item=doc.get("roadmap_item"),
            baseline=doc.get("baseline"),
            wall_seconds=float(doc.get("wall_seconds", 0.0)),
            outputs=dict(doc.get("outputs", {})),
            details=dict(doc.get("details", {})),
            error=doc.get("error"),
            drift=list(doc["drift"]) if doc.get("drift") is not None else None,
        )


@dataclass
class Manifest:
    """One full ``reproduce-all`` run."""

    provenance: Dict[str, Any]
    mode: str                       # "quick" | "full"
    jobs: int = 1
    only: Optional[str] = None      # the --only glob, when given
    checked: bool = False           # did this run diff against baselines?
    out_dir: str = "results/reproduce"  # where output paths are rooted
    artifacts: Dict[str, ArtifactRecord] = field(default_factory=dict)

    @property
    def failed(self) -> List[str]:
        return sorted(n for n, a in self.artifacts.items()
                      if a.status == "failed")

    @property
    def drifted(self) -> List[str]:
        return sorted(n for n, a in self.artifacts.items() if a.drift)

    @property
    def ok(self) -> bool:
        """No artifact failed to regenerate and none drifted from its
        committed baseline (when checked)."""
        return not self.failed and not self.drifted

    def summary(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "total": len(self.artifacts),
            "generated": sum(1 for a in self.artifacts.values()
                             if a.status == "ok"),
            "failed": self.failed,
            "drifted": self.drifted,
            "checked": self.checked,
            "wall_seconds": round(sum(a.wall_seconds
                                      for a in self.artifacts.values()), 3),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "provenance": self.provenance,
            "mode": self.mode,
            "jobs": self.jobs,
            "only": self.only,
            "out_dir": self.out_dir,
            "summary": self.summary(),
            "artifacts": {name: a.to_dict()
                          for name, a in sorted(self.artifacts.items())},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Manifest":
        schema = doc.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ValueError(f"unsupported manifest schema {schema!r} "
                             f"(this build reads schema {MANIFEST_SCHEMA})")
        return cls(
            provenance=dict(doc.get("provenance", {})),
            mode=doc.get("mode", "quick"),
            jobs=int(doc.get("jobs", 1)),
            only=doc.get("only"),
            checked=bool(doc.get("summary", {}).get("checked", False)),
            out_dir=doc.get("out_dir", "results/reproduce"),
            artifacts={name: ArtifactRecord.from_dict(a)
                       for name, a in doc.get("artifacts", {}).items()},
        )


def write_manifest(manifest: Manifest,
                   path: Union[str, Path] = DEFAULT_MANIFEST) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", encoding="utf-8") as fp:
        json.dump(manifest.to_dict(), fp, indent=2, sort_keys=True)
        fp.write("\n")
    return p


def read_manifest(path: Union[str, Path]) -> Manifest:
    with open(path, "r", encoding="utf-8") as fp:
        return Manifest.from_dict(json.load(fp))


def compare_deterministic(a: Manifest, b: Manifest) -> List[str]:
    """Digest drift between two runs on the same tree.

    Only digest-backed artifacts participate — host-dependent outputs
    (bench wall times) legitimately differ run to run.  Returns drift
    messages; empty means every shared deterministic artifact is
    byte-identical.
    """
    messages: List[str] = []
    for name in sorted(set(a.artifacts) & set(b.artifacts)):
        ra, rb = a.artifacts[name], b.artifacts[name]
        if not (ra.deterministic and rb.deterministic):
            continue
        if ra.status != "ok" or rb.status != "ok":
            continue
        paths = set(ra.outputs) | set(rb.outputs)
        for path in sorted(paths):
            da = ra.outputs.get(path, {}).get("sha256")
            db = rb.outputs.get(path, {}).get("sha256")
            if da != db:
                messages.append(
                    f"{name}: {path} digest {da or 'missing'} != "
                    f"{db or 'missing'}")
    return messages


def format_manifest(manifest: Manifest, fp: Optional[IO[str]] = None) -> str:
    """Human-readable run summary (the text twin of MANIFEST.json)."""
    prov = manifest.provenance
    dirty = "+dirty" if prov.get("git_dirty") else ""
    lines = [
        f"reproduce-all [{manifest.mode}] @ "
        f"{str(prov.get('git_sha', 'unknown'))[:12]}{dirty} on "
        f"{prov.get('host', '?')} ({prov.get('cpu_count', '?')} cores, "
        f"py{prov.get('python', '?')}, jobs={manifest.jobs})",
    ]
    if manifest.only:
        lines.append(f"selection: --only {manifest.only!r}")
    lines.append("")
    width = max((len(n) for n in manifest.artifacts), default=4)
    for name, rec in sorted(manifest.artifacts.items()):
        mark = {"ok": "ok ", "failed": "FAIL", "skipped": "skip"}[rec.status]
        if rec.drift:
            mark = "DRIFT"
        det = "digest" if rec.deterministic else "perf  "
        lines.append(f"  {mark:<5} {name:<{width}} [{det}] "
                     f"{rec.wall_seconds:7.1f}s  "
                     f"{len(rec.outputs)} file(s)")
        if rec.error:
            lines.append(f"        {rec.error}")
        for msg in rec.drift or []:
            lines.append(f"        drift: {msg}")
    summary = manifest.summary()
    lines.append("")
    verdict = "PASSED" if summary["ok"] else "FAILED"
    checked = " (checked against committed baselines)" if manifest.checked \
        else ""
    lines.append(f"{summary['generated']}/{summary['total']} artifacts in "
                 f"{summary['wall_seconds']:.1f}s — {verdict}{checked}")
    text = "\n".join(lines)
    if fp is not None:
        fp.write(text + "\n")
    return text
