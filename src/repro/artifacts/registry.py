"""The artifact registry: every result this repository ships, as code.

Each :class:`Artifact` names one deliverable — a paper figure/table, a
``BENCH_*`` baseline document, an analysis report — together with the
callable that regenerates it, the output files it writes (relative to
the run's output directory, ``results/reproduce/`` by default), whether
its bytes are deterministic on a fixed tree, the committed baseline it
is diffed against under ``--check``, and the paper figure / ROADMAP
item it serves.  ``ARTIFACTS.md`` documents the same set for humans,
and a test asserts the two stay in sync.

Regeneration commands (the exact CLI equivalents are listed per entry
in ``ARTIFACTS.md``):

* figures/tables run in-process through a shared
  :class:`~repro.experiments.figures.Evaluation` cache so versions
  quantified by several figures are measured once; ``--jobs N`` fans
  their campaign cells over the PR-5 parallel executor;
* bench documents re-run the pinned measurement the corresponding
  ``benchmarks/test_*_baseline.py`` gate uses, so a ``--check`` diff
  here means the committed baseline genuinely drifted;
* lint/flow/perf reports shell out to the real ``repro lint`` CLI (the
  same invocation CI uses), keeping the registry honest about what the
  documented command produces.

Comparison semantics under ``--check`` follow the repo convention:
digest-backed outputs are compared exactly or value-exactly, while
host-dependent speed numbers use the existing gate tolerances (the
±20 % events/sec floor, the ≥4-core guard for speedup floors).
"""

from __future__ import annotations

import fnmatch
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: tolerances mirrored from benchmarks/test_availability_baseline.py —
#: AA drift is judged on the unavailability axis (relative), AT relatively
UNAVAILABILITY_RTOL = 0.35
THROUGHPUT_RTOL = 0.10
#: mirrored from repro.bench: >20% events/sec regression is drift
KERNEL_REGRESSION_TOLERANCE = 0.20
#: mirrored from benchmarks/test_parallel_baseline.py
PARALLEL_SPEEDUP_FLOOR = 1.5
MIN_CORES_FOR_PERF_CHECK = 4


class ReproduceError(RuntimeError):
    """An artifact failed to regenerate (bad result, not a crash)."""


@dataclass
class ReproduceContext:
    """Shared state of one ``reproduce-all`` run."""

    quick: bool = True
    jobs: int = 1
    out_dir: Path = Path("results/reproduce")
    #: root the committed baselines are resolved under (the repo checkout;
    #: tests point this at a scratch tree to exercise drift detection)
    baseline_root: Path = Path(".")
    progress: Optional[Callable[[str], None]] = None
    _evaluation: Any = field(default=None, repr=False)

    def say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def evaluation(self):
        """The shared figure-quantification cache (built lazily so
        non-figure selections never pay for it)."""
        if self._evaluation is None:
            from repro.core.quantify import QuantifyConfig
            from repro.experiments.figures import Evaluation

            config = (QuantifyConfig.quick() if self.quick
                      else QuantifyConfig())
            self._evaluation = Evaluation(config, jobs=self.jobs)
        return self._evaluation

    def baseline_path(self, rel: str) -> Path:
        return Path(self.baseline_root) / rel


@dataclass(frozen=True)
class Artifact:
    """One registered deliverable."""

    name: str
    description: str
    kind: str                    # figure | bench | report
    generate: Callable[[ReproduceContext], Dict[str, Any]]
    outputs: Tuple[str, ...]     # relative to ctx.out_dir
    deterministic: bool
    paper_ref: Optional[str] = None
    roadmap_item: Optional[int] = None
    baseline: Optional[str] = None   # repo-relative committed document
    #: returns drift messages against the committed baseline (``--check``)
    check: Optional[Callable[[ReproduceContext, "Artifact"], List[str]]] = None


def _write_json(path: Path, doc: Any) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")


def _load_json(path: Path) -> Any:
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)


# ---------------------------------------------------------------------------
# figures and tables


def _gen_figure(fig_name: str):
    def generate(ctx: ReproduceContext) -> Dict[str, Any]:
        from repro.experiments.artifacts import write_figure
        from repro.experiments.figures import ALL_FIGURES, fig9

        ev = ctx.evaluation()
        if fig_name == "fig9" and ctx.quick:
            # the direct 8-node re-measurements are full-mode only; the
            # scaled-model rows still regenerate
            figure = fig9(ev, measure_direct=False)
        else:
            figure = ALL_FIGURES[fig_name](ev)
        write_figure(figure, ctx.out_dir / "figures")
        return {"title": figure.title, "rows": len(figure.rows)}

    return generate


#: registry entries for the paper's evaluation section
_FIGURES: Tuple[Tuple[str, str, str], ...] = (
    ("fig1a", "Figure 1a", "independent vs cooperative: throughput gain "
     "vs unavailability cost"),
    ("fig1b", "Figure 1b", "theoretical HW vs SW improvement over COOP"),
    ("fig2", "Figure 2", "the fitted 7-stage throughput template "
     "(COOP, SCSI timeout)"),
    ("fig4", "Figure 4", "COOP throughput timeline under a disk fault"),
    ("fig6", "Figure 6", "unavailability under additional hardware"),
    ("fig7", "Figure 7", "HA techniques, predicted vs measured"),
    ("fig8", "Figure 8", "stronger FME + hardware variants"),
    ("fig9", "Figure 9", "scaling FME to 8/16 nodes"),
    ("fig10", "Figure 10", "scaling COOP to 8/16 nodes"),
    ("table1", "Table 1", "the fault loads (MTTF/MTTR/counts)"),
    ("table2", "Table 2", "implementation effort vs unavailability "
     "reduction"),
)


# ---------------------------------------------------------------------------
# bench documents


def _gen_bench_availability(ctx: ReproduceContext) -> Dict[str, Any]:
    """The pinned (version, fault-kind) availability matrix —
    the same measurement ``benchmarks/test_availability_baseline.py``
    gates on (explicit quick campaign, seed 0, two fault kinds)."""
    from repro.core.quantify import QuantifyConfig, quantify_version
    from repro.faults.types import FaultKind

    kinds = (FaultKind.NODE_CRASH, FaultKind.APP_CRASH)
    config = QuantifyConfig.quick(kinds=kinds, seed=0)
    rows = {}
    for name in ("INDEP", "COOP"):
        ctx.say(f"  quantifying {name} (2-kind pinned grid)...")
        va = quantify_version(name, config, jobs=ctx.jobs)
        rows[name] = {
            "AA": va.availability,
            "AT": va.normal_tput,
            "unavailability": va.unavailability,
        }
    doc = {
        "profile": config.profile.name,
        "seed": config.seed,
        "kinds": [k.value for k in kinds],
        "versions": rows,
    }
    _write_json(ctx.out_dir / "BENCH_availability.json", doc)
    return {"versions": sorted(rows)}


def _check_availability(ctx: ReproduceContext,
                        artifact: Artifact) -> List[str]:
    current = _load_json(ctx.out_dir / "BENCH_availability.json")
    baseline = _load_json(ctx.baseline_path(artifact.baseline or ""))
    messages: List[str] = []
    for name, base in sorted(baseline.get("versions", {}).items()):
        row = current.get("versions", {}).get(name)
        if row is None:
            messages.append(f"version {name} missing from regenerated matrix")
            continue
        base_u = max(base["unavailability"], 1e-12)
        rel_u = abs(row["unavailability"] - base["unavailability"]) / base_u
        if rel_u > UNAVAILABILITY_RTOL:
            messages.append(
                f"{name}: unavailability {row['unavailability']:.6f} drifted "
                f"{rel_u:.0%} from baseline {base['unavailability']:.6f} "
                f"(> {UNAVAILABILITY_RTOL:.0%})")
        rel_t = abs(row["AT"] - base["AT"]) / max(base["AT"], 1e-12)
        if rel_t > THROUGHPUT_RTOL:
            messages.append(
                f"{name}: throughput {row['AT']:.1f} drifted {rel_t:.0%} "
                f"from baseline {base['AT']:.1f} (> {THROUGHPUT_RTOL:.0%})")
    return messages


def _gen_bench_kernel(ctx: ReproduceContext) -> Dict[str, Any]:
    """The kernel speed + observability-overhead document (`repro bench`).
    Quick mode runs the steady scenario only; full mode runs the whole
    suite and appends a provenance record to ``benchmarks/TREND.jsonl``."""
    from repro.bench import append_trend, run_bench

    names = ["steady"] if ctx.quick else None
    report = run_bench(scenario_names=names, progress=ctx.say)
    _write_json(ctx.out_dir / "BENCH_kernel.json", report.to_dict())
    trend_appended = False
    if not ctx.quick:
        ledger = ctx.baseline_path("benchmarks/TREND.jsonl")
        append_trend(report, str(ledger))
        trend_appended = True
    if not report.ok:
        raise ReproduceError(
            "observability perturbed simulation results (digest mismatch "
            "across obs modes)")
    return {"scenarios": sorted(report.scenarios),
            "trend_appended": trend_appended}


def _check_kernel(ctx: ReproduceContext, artifact: Artifact) -> List[str]:
    """Dict-level twin of :func:`repro.bench.gate`: digest oracle always,
    speed floors and overhead ceilings only on capable hosts."""
    current = _load_json(ctx.out_dir / "BENCH_kernel.json")
    baseline = _load_json(ctx.baseline_path(artifact.baseline or ""))
    messages: List[str] = []
    cores = os.cpu_count() or 1
    perf_gated = cores >= MIN_CORES_FOR_PERF_CHECK
    ceilings = baseline.get("gate", {})
    for name, sc in sorted(current.get("scenarios", {}).items()):
        if not sc.get("digests_equal", True):
            messages.append(f"{name}: digests diverged across obs modes")
        base = baseline.get("scenarios", {}).get(name)
        if base is None or not perf_gated:
            continue
        floor = base["events_per_sec"] * (1.0 - KERNEL_REGRESSION_TOLERANCE)
        if sc["events_per_sec"] < floor:
            messages.append(
                f"{name}: events/sec {sc['events_per_sec']:,.0f} below "
                f"baseline floor {floor:,.0f}")
        for mode, key in (("unsub", "max_overhead_unsub"),
                          ("on", "max_overhead_on"),
                          ("spans", "max_overhead_spans")):
            ceiling = ceilings.get(key)
            overhead = sc.get(f"overhead_{mode}")
            if ceiling is None or overhead is None:
                continue
            if overhead > ceiling:
                messages.append(
                    f"{name}: obs overhead ({mode}) {overhead:.3f}x exceeds "
                    f"ceiling {ceiling:.3f}x")
    return messages


def _gen_bench_parallel(ctx: ReproduceContext) -> Dict[str, Any]:
    """The serial-vs-parallel executor measurement behind
    ``benchmarks/BENCH_parallel.json``: the INDEP quick grid serially and
    on a 4-worker pool, digest-compared byte for byte."""
    import hashlib
    import time

    from repro.core.quantify import QuantifyConfig, quantify_version

    def canonical(obj: Any) -> bytes:
        return json.dumps(obj, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def artifact_digest(va: Any) -> str:
        digest = hashlib.sha256(b"repro-parallel-bench")
        for kind in sorted(va.records, key=lambda k: k.value):
            digest.update(hashlib.sha256(
                canonical(va.records[kind].to_dict())).digest())
        return digest.hexdigest()

    config = QuantifyConfig.quick(seed=0)
    jobs = 4
    ctx.say("  INDEP quick grid, serial...")
    t0 = time.perf_counter()
    serial = quantify_version("INDEP", config, keep_records=True)
    serial_wall = time.perf_counter() - t0
    ctx.say(f"  INDEP quick grid, {jobs} workers...")
    t0 = time.perf_counter()
    parallel = quantify_version("INDEP", config, keep_records=True, jobs=jobs)
    parallel_wall = time.perf_counter() - t0

    serial_digest = artifact_digest(serial)
    parallel_digest = artifact_digest(parallel)
    doc = {
        "version": "INDEP",
        "profile": config.profile.name,
        "seed": config.seed,
        "jobs": jobs,
        "cells": len(serial.records),
        "cores": os.cpu_count(),
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "serial_digest": serial_digest,
        "parallel_digest": parallel_digest,
        "digests_equal": serial_digest == parallel_digest,
        "availability": serial.availability,
    }
    _write_json(ctx.out_dir / "BENCH_parallel.json", doc)
    if not doc["digests_equal"]:
        raise ReproduceError(
            f"parallel artifacts diverged from serial: "
            f"{parallel_digest} != {serial_digest}")
    return {"cells": doc["cells"], "speedup": round(doc["speedup"], 3)}


def _check_parallel(ctx: ReproduceContext, artifact: Artifact) -> List[str]:
    current = _load_json(ctx.out_dir / "BENCH_parallel.json")
    baseline = _load_json(ctx.baseline_path(artifact.baseline or ""))
    messages: List[str] = []
    for key in ("version", "profile", "jobs"):
        if current.get(key) != baseline.get(key):
            messages.append(f"{key} changed: baseline {baseline.get(key)!r} "
                            f"vs regenerated {current.get(key)!r}")
    # the availability number is the serial pipeline's deterministic
    # output under a pinned seed — it must match the baseline exactly
    base_a, cur_a = baseline.get("availability"), current.get("availability")
    if base_a is not None and cur_a is not None:
        if abs(cur_a - base_a) > 1e-12 * max(abs(base_a), 1.0):
            messages.append(f"availability {cur_a!r} != baseline {base_a!r} "
                            f"(pinned-seed output must match exactly)")
    cores = current.get("cores") or 1
    if cores >= MIN_CORES_FOR_PERF_CHECK and \
            current.get("speedup", 0.0) < PARALLEL_SPEEDUP_FLOOR:
        messages.append(
            f"speedup {current.get('speedup', 0.0):.2f}x below the "
            f"{PARALLEL_SPEEDUP_FLOOR}x floor on {cores} cores")
    return messages


# ---------------------------------------------------------------------------
# analysis reports (regenerated through the real CLI, as CI runs them)


def _run_cli(ctx: ReproduceContext, args: Sequence[str],
             ok_codes: Tuple[int, ...] = (0,)) -> None:
    """Run ``python -m repro ...`` as a subprocess with ``src`` importable
    (works from a bare checkout — no editable install required)."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, env=env,
                          check=False)
    if proc.returncode not in ok_codes:
        tail = (proc.stderr.strip() or proc.stdout.strip())[-500:]
        raise ReproduceError(
            f"`repro {' '.join(args)}` exited {proc.returncode}: {tail}")


def _gen_lint(ctx: ReproduceContext) -> Dict[str, Any]:
    out = ctx.out_dir / "reprolint.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    _run_cli(ctx, ["lint", "src/repro", "--strict", "--format", "json",
                   "--out", str(out)])
    doc = _load_json(out)
    return {"files_scanned": doc.get("files_scanned"),
            "errors": doc.get("errors"), "warnings": doc.get("warnings")}


def _gen_lint_flow(ctx: ReproduceContext) -> Dict[str, Any]:
    out = ctx.out_dir / "reprolint-flow.json"
    graph = ctx.out_dir / "callgraph.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    _run_cli(ctx, ["lint", "src/repro", "--flow", "--strict",
                   "--format", "json", "--out", str(out),
                   "--callgraph-out", str(graph)])
    doc = _load_json(out)
    return {"errors": doc.get("errors"), "warnings": doc.get("warnings"),
            "newly_covered": len(doc.get("flow", {}).get("newly_covered", []))}


def _gen_lint_perf(ctx: ReproduceContext) -> Dict[str, Any]:
    out = ctx.out_dir / "reprolint-perf.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    _run_cli(ctx, ["lint", "src/repro", "--perf", "--strict",
                   "--format", "json", "--out", str(out)])
    doc = _load_json(out)
    return {"errors": doc.get("errors"), "warnings": doc.get("warnings"),
            "hot_functions": doc.get("perf", {}).get("hot_functions")}


def _check_lint_clean(ctx: ReproduceContext, artifact: Artifact) -> List[str]:
    doc = _load_json(ctx.out_dir / artifact.outputs[0])
    messages: List[str] = []
    if doc.get("errors"):
        messages.append(f"{doc['errors']} lint error(s) on the tree")
    if doc.get("warnings"):
        messages.append(f"{doc['warnings']} lint warning(s) on the tree "
                        f"(strict gate)")
    return messages


def _gen_racecheck(ctx: ReproduceContext) -> Dict[str, Any]:
    """The two-tier race report (static effect analysis + schedule
    perturbation).  Quick mode uses the smoke scenario; full mode the
    quick Table-1 campaign (the `make racecheck` configuration)."""
    from repro.analysis.racecheck import run_racecheck

    result = run_racecheck(smoke=ctx.quick, quick=True)
    _write_json(ctx.out_dir / "racecheck.json", result.to_dict())
    if not result.ok:
        raise ReproduceError("race detector reported a divergence")
    return {"mode": result.mode,
            "static_findings": len(result.static_findings)}


def _gen_docs_check(ctx: ReproduceContext) -> Dict[str, Any]:
    """The docs cross-reference report (`repro lint --docs`)."""
    from repro.analysis.doccheck import check_docs

    result = check_docs(root=str(ctx.baseline_root))
    _write_json(ctx.out_dir / "docscheck.json", result.to_dict())
    if not result.ok:
        raise ReproduceError(
            f"{len(result.findings)} stale documentation reference(s); "
            f"run `repro lint --docs` for the list")
    return {"docs_scanned": result.docs_scanned,
            "refs_checked": result.refs_checked}


# ---------------------------------------------------------------------------
# the registry itself


def _registry() -> Dict[str, Artifact]:
    entries: List[Artifact] = []
    for name, ref, desc in _FIGURES:
        entries.append(Artifact(
            name=name,
            description=desc,
            kind="figure",
            generate=_gen_figure(name),
            outputs=(f"figures/{name}.txt", f"figures/{name}.csv"),
            deterministic=True,
            paper_ref=ref,
        ))
    entries.append(Artifact(
        name="bench-availability",
        description="pinned INDEP/COOP availability+throughput matrix "
                    "(the regression-gate baseline)",
        kind="bench",
        generate=_gen_bench_availability,
        outputs=("BENCH_availability.json",),
        deterministic=True,
        paper_ref="Figure 1a (gate subset)",
        baseline="benchmarks/BENCH_availability.json",
        check=_check_availability,
    ))
    entries.append(Artifact(
        name="bench-kernel",
        description="kernel events/sec + observability-overhead document "
                    "with the cross-mode digest oracle",
        kind="bench",
        generate=_gen_bench_kernel,
        outputs=("BENCH_kernel.json",),
        deterministic=False,
        roadmap_item=1,
        baseline="benchmarks/BENCH_kernel.json",
        check=_check_kernel,
    ))
    entries.append(Artifact(
        name="bench-parallel",
        description="serial-vs-parallel campaign executor measurement "
                    "(byte-identical digests + speedup accounting)",
        kind="bench",
        generate=_gen_bench_parallel,
        outputs=("BENCH_parallel.json",),
        deterministic=False,
        roadmap_item=1,
        baseline="benchmarks/BENCH_parallel.json",
        check=_check_parallel,
    ))
    entries.append(Artifact(
        name="lint",
        description="reprolint determinism report (REP001-007, REP013, "
                    "REP016) over src/repro, strict",
        kind="report",
        generate=_gen_lint,
        outputs=("reprolint.json",),
        deterministic=True,
        check=_check_lint_clean,
    ))
    entries.append(Artifact(
        name="lint-flow",
        description="whole-program flow report (protocol consistency, "
                    "lost generators, races) + call graph",
        kind="report",
        generate=_gen_lint_flow,
        outputs=("reprolint-flow.json", "callgraph.json"),
        deterministic=True,
        check=_check_lint_clean,
    ))
    entries.append(Artifact(
        name="lint-perf",
        description="profile-guided hot-path cost report (kernel hot set, "
                    "REP017-021)",
        kind="report",
        generate=_gen_lint_perf,
        outputs=("reprolint-perf.json",),
        deterministic=True,
        roadmap_item=1,
        check=_check_lint_clean,
    ))
    entries.append(Artifact(
        name="racecheck",
        description="two-tier race report: static shared-state effects + "
                    "schedule-perturbation sanitizer",
        kind="report",
        generate=_gen_racecheck,
        outputs=("racecheck.json",),
        deterministic=True,
    ))
    entries.append(Artifact(
        name="docs-check",
        description="documentation cross-reference report (file paths, "
                    "CLI subcommands, make targets, rule ids)",
        kind="report",
        generate=_gen_docs_check,
        outputs=("docscheck.json",),
        deterministic=True,
    ))
    return {a.name: a for a in entries}


#: name -> Artifact, in registration (execution) order
REGISTRY: Dict[str, Artifact] = _registry()


def select(only: Optional[str] = None) -> List[Artifact]:
    """Registry entries matching the ``--only`` glob (all, when None)."""
    if only is None:
        return list(REGISTRY.values())
    chosen = [a for name, a in REGISTRY.items()
              if fnmatch.fnmatchcase(name, only)]
    return chosen
