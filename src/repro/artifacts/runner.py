"""``repro reproduce-all``: run the registry, stamp the manifest.

One command regenerates every artifact the repository ships and proves
the whole result set still falls out of the code:

* every selected :class:`~repro.artifacts.registry.Artifact` is
  regenerated into ``results/reproduce/`` (``--only GLOB`` narrows the
  selection, ``--jobs N`` fans campaign cells over the parallel
  executor, ``--quick`` shortens experiment windows);
* every output file is SHA-256 digested into ``results/MANIFEST.json``
  together with run provenance (git SHA + dirty flag, host fingerprint,
  python/cpu) and per-artifact wall time;
* with ``check=True`` each regenerated document is diffed against its
  committed baseline — value-exact for digest-backed outputs,
  tolerance-gated for host-dependent speed numbers — and any drift
  fails the run.

A failing artifact never aborts the sweep: the remaining artifacts
still regenerate, and the manifest names every failure.
"""

from __future__ import annotations

import time
import traceback
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.artifacts.manifest import (
    DEFAULT_MANIFEST,
    ArtifactRecord,
    Manifest,
    write_manifest,
)
from repro.artifacts.registry import (
    REGISTRY,
    Artifact,
    ReproduceContext,
    ReproduceError,
    select,
)
from repro.obs.perf import provenance

#: default directory regenerated artifacts land in (never the committed
#: baselines — those only change by explicit copy)
DEFAULT_OUT_DIR = "results/reproduce"

ProgressFn = Callable[[str], None]


def _record_for(artifact: Artifact) -> ArtifactRecord:
    return ArtifactRecord(
        name=artifact.name,
        description=artifact.description,
        kind=artifact.kind,
        deterministic=artifact.deterministic,
        paper_ref=artifact.paper_ref,
        roadmap_item=artifact.roadmap_item,
        baseline=artifact.baseline,
    )


def _digest_outputs(artifact: Artifact, ctx: ReproduceContext,
                    record: ArtifactRecord) -> List[str]:
    """SHA-256 every declared output into the record; returns the
    declared paths that were never written."""
    from repro.artifacts.manifest import sha256_file

    missing: List[str] = []
    for rel in artifact.outputs:
        path = ctx.out_dir / rel
        if not path.exists():
            missing.append(rel)
            continue
        digest, size = sha256_file(path)
        # keyed by out_dir-relative path so manifests from different
        # output directories (or hosts) stay digest-comparable
        record.outputs[rel] = {"sha256": digest, "bytes": size}
    return missing


def reproduce_all(only: Optional[str] = None,
                  quick: bool = True,
                  jobs: int = 1,
                  check: bool = False,
                  out_dir: Union[str, Path] = DEFAULT_OUT_DIR,
                  manifest_path: Union[str, Path] = DEFAULT_MANIFEST,
                  baseline_root: Union[str, Path] = ".",
                  progress: Optional[ProgressFn] = None) -> Manifest:
    """Regenerate the (selected) registry and write the manifest.

    Returns the :class:`Manifest`; ``manifest.ok`` is False when any
    artifact failed to regenerate or (under ``check``) drifted from its
    committed baseline.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    artifacts = select(only)
    if not artifacts:
        raise ValueError(
            f"--only {only!r} matches no registered artifact "
            f"(have: {', '.join(REGISTRY)})")
    ctx = ReproduceContext(quick=quick, jobs=jobs, out_dir=Path(out_dir),
                           baseline_root=Path(baseline_root),
                           progress=progress)
    ctx.out_dir.mkdir(parents=True, exist_ok=True)

    manifest = Manifest(provenance=provenance(),
                        mode="quick" if quick else "full",
                        jobs=jobs, only=only, checked=check,
                        out_dir=str(out_dir))
    for i, artifact in enumerate(artifacts, 1):
        record = _record_for(artifact)
        manifest.artifacts[artifact.name] = record
        ctx.say(f"[{i}/{len(artifacts)}] {artifact.name}: "
                f"{artifact.description}")
        t0 = time.perf_counter()
        try:
            record.details = artifact.generate(ctx) or {}
            missing = _digest_outputs(artifact, ctx, record)
            if missing:
                raise ReproduceError(
                    f"declared output(s) not written: {', '.join(missing)}")
            record.status = "ok"
        except ReproduceError as exc:
            record.status = "failed"
            record.error = str(exc)
        except Exception as exc:
            # a crashing generator is reported in the manifest (with the
            # failure line), not allowed to kill the rest of the sweep
            record.status = "failed"
            record.error = f"{type(exc).__name__}: {exc} " \
                           f"({traceback.format_exc(limit=1).splitlines()[-1].strip()})"
        record.wall_seconds = round(time.perf_counter() - t0, 3)

        if check and record.status == "ok" and artifact.check is not None \
                and artifact.baseline is not None:
            baseline = ctx.baseline_path(artifact.baseline)
            if not baseline.exists():
                record.drift = [f"committed baseline {artifact.baseline} "
                                f"is missing"]
            else:
                try:
                    record.drift = artifact.check(ctx, artifact)
                except Exception as exc:
                    record.drift = [f"baseline comparison crashed: "
                                    f"{type(exc).__name__}: {exc}"]
            if record.drift:
                ctx.say(f"  DRIFT: {'; '.join(record.drift)}")
        if record.status == "failed":
            ctx.say(f"  FAILED: {record.error}")

    write_manifest(manifest, manifest_path)
    return manifest
