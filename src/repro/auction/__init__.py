"""A clustered 3-tier auction service (the paper's third case study).

Like the bookstore, this exercises the methodology's generality — but
with a different availability structure: the data tier is a *master
plus read replicas*, so faults degrade reads and writes asymmetrically.
Browsing (reads) is served by any replica; placing bids (writes) must
reach the master.  A master crash therefore blocks writes until a
replica wins the election while reads continue; a replica crash only
shaves read capacity.  The harness measures read and write availability
separately, which the 7-stage template and the analytic model handle
per-class without modification.
"""

from repro.auction.service import (
    AuctionConfig,
    AuctionDataCluster,
    AuctionWorld,
    build_auction,
)

__all__ = [
    "AuctionConfig",
    "AuctionDataCluster",
    "AuctionWorld",
    "build_auction",
]
