"""Auction tiers, the master/replica data cluster, and the world builder."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.bookstore.tiers import Dispatcher, Job, TierServer
from repro.faults.faultload import FaultCatalog, FaultRate, MINUTE, MONTH, WEEK
from repro.faults.injector import FaultInjector
from repro.faults.types import FaultKind
from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host
from repro.sim.conditions import AnyOf
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.series import MarkerLog
from repro.workload.client import ClientConfig, ClientPool, DnsRouter, Request
from repro.workload.stats import RequestStats
from repro.workload.trace import SyntheticTrace, TraceConfig


@dataclass(frozen=True)
class AuctionConfig:
    """Topology and timing of the auction deployment."""

    web_nodes: int = 2
    app_nodes: int = 2
    data_replicas: int = 2  # read replicas besides the master

    web_cpu: float = 2.5e-3
    app_cpu: float = 5.0e-3
    data_cpu: float = 4.0e-3
    data_miss_ratio: float = 0.05
    data_disk_bytes: int = 4096

    queue_capacity: int = 64
    workers_per_node: int = 4
    tier_timeout: float = 8.0

    heartbeat: float = 2.0
    loss_threshold: int = 3
    election_time: float = 6.0  # leader election + log catch-up

    def with_(self, **changes) -> "AuctionConfig":
        return replace(self, **changes)


class _RouterView(Dispatcher):
    """A Dispatcher view over the data cluster for one operation class."""

    def __init__(self, cluster: "AuctionDataCluster", op: str):
        super().__init__(cluster.env, cluster.config)
        self.cluster = cluster
        self.op = op

    def candidates(self) -> List[TierServer]:
        if self.op == "write":
            master = self.cluster.master
            return [master] if master is not None and master.accepting else []
        return [s for s in self.cluster.servers if s.accepting]


class AuctionDataCluster:
    """Master + read replicas with heartbeat-driven leader election."""

    __slots__ = ("env", "config", "markers", "servers", "master", "_electing",
                 "_hb_seen", "reads", "writes")

    def __init__(self, env: Environment, config: AuctionConfig,
                 markers: Optional[MarkerLog] = None):
        self.env = env
        self.config = config
        self.markers = markers if markers is not None else MarkerLog()
        self.servers: List[TierServer] = []
        self.master: Optional[TierServer] = None
        self._electing = False
        self._hb_seen = env.now
        self.reads = _RouterView(self, "read")
        self.writes = _RouterView(self, "write")

    def attach(self, server: "AuctionDataServer") -> None:
        self.servers.append(server)
        if self.master is None:
            self.master = server

    def on_data_start(self, server: "AuctionDataServer") -> None:
        self.env.process(self._role_duty(server), owner=server.group,
                         name=f"{server.host.name}.auction.role")

    def _role_duty(self, server: "AuctionDataServer"):
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.heartbeat)
            if server is self.master:
                # Both writers (_role_duty and _elect) refresh the
                # watchdog to env.now, so same-instant order cannot
                # change the stored value.
                self._hb_seen = self.env.now  # reprolint: disable=REP014
            else:
                silent = self.env.now - self._hb_seen
                if (silent > cfg.loss_threshold * cfg.heartbeat
                        and not self._electing and server.accepting
                        and self._wins_election(server)):
                    yield from self._elect(server)

    def _wins_election(self, server: "AuctionDataServer") -> bool:
        """Highest-id healthy replica becomes the new master."""
        alive = [s for s in self.servers
                 if s is not self.master and s.accepting]
        return bool(alive) and server is max(alive, key=lambda s: s.host.node_id)

    def _elect(self, server: "AuctionDataServer"):
        self._electing = True
        old = self.master
        self.markers.mark(self.env.now, "detected",
                          ("auction_election", server.host.name,
                           old.host.name if old else "?"))
        self.markers.mark(self.env.now, "auction_election", server.host.name)
        yield self.env.timeout(self.config.election_time)
        self.master = server
        self._hb_seen = self.env.now
        self._electing = False


class AuctionDataServer(TierServer):
    """One data node (master or replica depending on the cluster's view)."""

    def __init__(self, host, config: AuctionConfig, cluster: AuctionDataCluster,
                 markers=None, rng=None):
        bridge = _tier_config_bridge(config)
        super().__init__(host, "data", bridge, downstream=None, markers=markers)
        self.auction_config = config
        self.cluster = cluster
        self.rng = rng

    def start(self) -> None:
        if self._running:
            return
        super().start()
        if self._running:
            self.cluster.on_data_start(self)

    def _worker(self):
        cfg = self.auction_config
        disks = self.host.disks
        i = 0
        while True:
            job = yield self.queue.get()
            yield self.env.timeout(cfg.data_cpu)
            miss = (self.rng.random() < cfg.data_miss_ratio
                    if self.rng is not None else False)
            if miss and disks:
                i += 1
                sub = disks[i % len(disks)].submit(cfg.data_disk_bytes)
                yield sub.enqueued
                yield sub.done
            self.jobs_done += 1
            job.complete()


class AuctionAppServer(TierServer):
    """Application tier: routes reads to replicas, writes to the master."""

    def __init__(self, host, config: AuctionConfig, data: AuctionDataCluster,
                 markers=None):
        bridge = _tier_config_bridge(config)
        super().__init__(host, "app", bridge, downstream=None, markers=markers)
        self.auction_config = config
        self.data = data

    def _worker(self):
        cfg = self.auction_config
        while True:
            job = yield self.queue.get()
            yield self.env.timeout(cfg.app_cpu)
            # "write" reaches Job.kind through the op-class table in
            # build_auction, which flow analysis counts as a dynamic
            # send — not a dead branch, so no REP009 fires here.
            router = self.data.writes if job.kind == "write" else self.data.reads
            sub = Job(self.env, job.kind)
            queued = yield from router.dispatch(sub)
            ok = queued
            if queued:
                deadline = self.env.timeout(cfg.tier_timeout)
                yield AnyOf(self.env, [sub.done, deadline])
                ok = sub.succeeded
            if ok:
                self.jobs_done += 1
                job.complete()
            else:
                job.fail()


class AuctionWebServer(TierServer):
    """Web tier: one op-tagged entry point per operation class is wrapped
    around this server (see :class:`OpEntryPoint`)."""

    def __init__(self, host, config: AuctionConfig, downstream: Dispatcher,
                 markers=None):
        bridge = _tier_config_bridge(config)
        super().__init__(host, "web", bridge, downstream=downstream,
                         markers=markers)
        self.auction_config = config

    def accept_op(self, req: Request, op: str) -> bool:
        if not self.accepting:
            return False
        job = Job(self.env, op)

        def _finish(evt):
            if evt.value and not req.expired:
                req.respond()

        job.done.add_callback(_finish)
        return self.queue.try_put(job)

    def _worker(self):
        cfg = self.auction_config
        while True:
            job = yield self.queue.get()
            yield self.env.timeout(cfg.web_cpu)
            sub = Job(self.env, job.kind)
            queued = yield from self.downstream.dispatch(sub)
            ok = queued
            if queued:
                deadline = self.env.timeout(cfg.tier_timeout)
                yield AnyOf(self.env, [sub.done, deadline])
                ok = sub.succeeded
            if ok:
                self.jobs_done += 1
                job.complete()
            else:
                job.fail()


class OpEntryPoint:
    """Backend adapter tagging every accepted request with one op class."""

    def __init__(self, server: AuctionWebServer, op: str):
        self.server = server
        self.op = op

    @property
    def host(self):
        return self.server.host

    @property
    def listening(self):
        return self.server.listening

    def try_accept(self, req: Request) -> bool:
        return self.server.accept_op(req, self.op)


def _tier_config_bridge(config: AuctionConfig):
    """TierServer expects a BookstoreConfig-shaped object; bridge the
    shared fields."""
    from repro.bookstore.config import BookstoreConfig

    return BookstoreConfig(
        web_cpu=config.web_cpu,
        app_cpu=config.app_cpu,
        db_cpu=config.data_cpu,
        queue_capacity=config.queue_capacity,
        workers_per_node=config.workers_per_node,
        tier_timeout=config.tier_timeout,
    )


def auction_catalog(config: AuctionConfig) -> FaultCatalog:
    n = config.web_nodes + config.app_nodes + 1 + config.data_replicas
    return FaultCatalog([
        FaultRate(FaultKind.NODE_CRASH, 2 * WEEK, 3 * MINUTE, n),
        FaultRate(FaultKind.NODE_FREEZE, 2 * WEEK, 3 * MINUTE, n),
        FaultRate(FaultKind.APP_CRASH, 2 * MONTH, 3 * MINUTE, n),
        FaultRate(FaultKind.APP_HANG, 2 * MONTH, 3 * MINUTE, n),
    ])


@dataclass
class AuctionWorld:
    """Campaign-compatible world with per-class (read/write) accounting."""

    env: Environment
    rngs: RngRegistry
    markers: MarkerLog
    config: AuctionConfig
    hosts: List[Host]
    web: List[AuctionWebServer]
    app: List[AuctionAppServer]
    data: List[AuctionDataServer]
    data_cluster: AuctionDataCluster
    injector: FaultInjector
    stats: RequestStats  # aggregate (reads + writes)
    read_stats: RequestStats
    write_stats: RequestStats
    offered_rate: float
    catalog: FaultCatalog
    version: str = "AUCTION"
    reset_downtime: float = 10.0

    @property
    def servers(self):
        return [*self.web, *self.app, *self.data]

    def host_by_name(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def operator_reset(self) -> None:
        for srv in self.servers:
            if srv.host.is_up and srv.group.alive:
                srv.group.crash()
                srv.on_crash()
        env = self.env

        def _bring_up():
            yield env.timeout(self.reset_downtime)
            for srv in self.servers:
                if srv.host.is_up and not srv.fault_latched:
                    if not srv.group.alive:
                        srv.group.revive()
                    srv.start()

        env.process(_bring_up(), name="auction-reset")

    def default_target(self, kind: FaultKind) -> str:
        return self.data_cluster.master.host.name

    def injectable_kinds(self) -> List[FaultKind]:
        return list(self.catalog.kinds())


def build_auction(
    config: AuctionConfig = AuctionConfig(),
    read_rate: float = 100.0,
    write_rate: float = 25.0,
    seed: int = 0,
) -> AuctionWorld:
    env = Environment()
    rngs = RngRegistry(seed)
    markers = MarkerLog()

    data_cluster = AuctionDataCluster(env, config, markers)
    app_dispatcher = Dispatcher(env, _tier_config_bridge(config))

    hosts: List[Host] = []
    web: List[AuctionWebServer] = []
    app: List[AuctionAppServer] = []
    data: List[AuctionDataServer] = []
    idx = 0

    def new_host(prefix: str) -> Host:
        nonlocal idx
        host = Host(env, f"{prefix}{idx}", idx)
        idx += 1
        hosts.append(host)
        return host

    for _ in range(config.web_nodes):
        web.append(AuctionWebServer(new_host("web"), config, app_dispatcher,
                                    markers))
    for _ in range(config.app_nodes):
        server = AuctionAppServer(new_host("app"), config, data_cluster, markers)
        app.append(server)
        app_dispatcher.attach(server)
    for _ in range(1 + config.data_replicas):
        host = new_host("data")
        Disk(env, host, 0, DiskParams(seek_time=0.010),
             rngs.stream(f"disk.{host.name}"))
        server = AuctionDataServer(host, config, data_cluster, markers,
                                   rng=rngs.stream(f"miss.{host.name}"))
        data.append(server)
        data_cluster.attach(server)

    for host in hosts:
        host.start_all()

    trace = SyntheticTrace(TraceConfig(n_files=200, file_size=2048),
                           rngs.stream("items"))
    stats = RequestStats()
    read_stats, write_stats = RequestStats(), RequestStats()

    class Tee(RequestStats):
        """Record into the class stats and the aggregate simultaneously."""

        def __init__(self, target: RequestStats):
            super().__init__()
            self._target = target

        def record_issue(self, time):
            self._target.record_issue(time)
            stats.record_issue(time)

        def record_success(self, time, latency):
            self._target.record_success(time, latency)
            stats.record_success(time, latency)

        def record_failure(self, time, outcome, latency=None):
            self._target.record_failure(time, outcome, latency=latency)
            stats.record_failure(time, outcome, latency=latency)

    for op, rate, class_stats, stream in (
        ("read", read_rate, read_stats, "readers"),
        ("write", write_rate, write_stats, "writers"),
    ):
        entries = [OpEntryPoint(s, op) for s in web]
        ClientPool(env, trace, DnsRouter(entries), Tee(class_stats),
                   ClientConfig(request_rate=rate, ramp_time=5.0),
                   rngs.stream(stream)).start()

    injector = FaultInjector(
        env,
        hosts={h.name: h for h in hosts},
        app_of=lambda host: next(host.services[n] for n in ("web", "app", "data")
                                 if n in host.services),
        markers=markers,
    )
    return AuctionWorld(
        env=env, rngs=rngs, markers=markers, config=config, hosts=hosts,
        web=web, app=app, data=data, data_cluster=data_cluster,
        injector=injector, stats=stats, read_stats=read_stats,
        write_stats=write_stats, offered_rate=read_rate + write_rate,
        catalog=auction_catalog(config),
    )
