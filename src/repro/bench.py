"""``repro bench``: the kernel benchmark runner, gate, and trend ledger.

Thin orchestration over :mod:`repro.obs.perf` (which owns the scenarios
and the measurement itself):

* :func:`run_bench` measures the requested scenarios under every obs
  mode and assembles the provenance-stamped report
  (``results/BENCH_kernel.json`` in CI);
* :func:`gate` compares a report against the committed baseline
  (``benchmarks/BENCH_kernel.json``): cross-mode digest equality gates
  everywhere, the events/sec floor and observability-overhead ceilings
  gate only on hosts with enough cores (mirroring the
  ``BENCH_parallel.json`` convention — overlap and raw speed are
  hardware properties, determinism is a code property);
* :func:`append_trend` / :func:`format_trend` maintain and render the
  per-run trajectory ledger ``benchmarks/TREND.jsonl`` so "did this PR
  make the kernel faster?" has a longitudinal answer, not an anecdote.

Wall-clock use here times the host and stamps provenance records; it
never touches simulated time (REP001 allowlist).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.perf import (
    BENCH_SCHEMA,
    OBS_MODES,
    SCENARIOS,
    ScenarioReport,
    measure_scenario,
    peak_rss_kb,
    provenance,
)

#: committed baseline the gate compares against
DEFAULT_BASELINE = "benchmarks/BENCH_kernel.json"
#: the longitudinal ledger (one JSON record per bench run)
DEFAULT_TREND = "benchmarks/TREND.jsonl"

#: >20% events/sec regression fails the gate
REGRESSION_TOLERANCE = 0.20
#: cores needed before speed/overhead gating is meaningful
MIN_CORES_FOR_GATE = 4


@dataclass
class BenchReport:
    """One full bench run: every scenario, plus provenance."""

    scenarios: Dict[str, ScenarioReport]
    provenance: Dict[str, Any]
    peak_rss_kb: int

    @property
    def ok(self) -> bool:
        """True when no scenario's digests diverged across obs modes."""
        return all(s.digests_equal for s in self.scenarios.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "ok": self.ok,
            "provenance": self.provenance,
            "peak_rss_kb": self.peak_rss_kb,
            "scenarios": {name: s.to_dict()
                          for name, s in sorted(self.scenarios.items())},
        }


def run_bench(scenario_names: Optional[Sequence[str]] = None,
              modes: Sequence[str] = OBS_MODES,
              attribution: bool = True,
              top_n: int = 10,
              progress=None) -> BenchReport:
    """Measure the requested scenarios (default: the whole standard suite)."""
    names = list(scenario_names) if scenario_names else sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; "
                         f"choose from {sorted(SCENARIOS)}")
    reports: Dict[str, ScenarioReport] = {}
    for name in names:
        if progress is not None:
            progress(f"bench: {name} ({SCENARIOS[name].description})")
        reports[name] = measure_scenario(SCENARIOS[name], modes=modes,
                                         attribution=attribution, top_n=top_n)
    return BenchReport(scenarios=reports, provenance=provenance(),
                       peak_rss_kb=peak_rss_kb())


# ---------------------------------------------------------------------------
# rendering


def format_bench(report: BenchReport, top_n: int = 5) -> str:
    lines: List[str] = []
    prov = report.provenance
    dirty = "+dirty" if prov.get("git_dirty") else ""
    lines.append(f"kernel bench @ {str(prov.get('git_sha', 'unknown'))[:12]}{dirty} "
                 f"on {prov.get('host', '?')} "
                 f"({prov.get('cpu_count', '?')} cores, "
                 f"py{prov.get('python', '?')})")
    lines.append(f"peak RSS: {report.peak_rss_kb} KiB")
    for name, sc in sorted(report.scenarios.items()):
        lines.append("")
        lines.append(f"scenario {name}: {sc.description}")
        lines.append(f"  events/sec (obs off) : {sc.events_per_sec:,.0f}")
        lines.append(f"  wall per cell        : {sc.wall_per_cell:.3f} s "
                     f"({sc.cells} cell{'s' if sc.cells != 1 else ''})")
        lines.append(f"  overhead unsubscribed: {sc.overhead('unsub'):.3f}x")
        lines.append(f"  overhead exporting   : {sc.overhead('on'):.3f}x")
        if "spans" in sc.runs:
            lines.append(f"  overhead span tracing: {sc.overhead('spans'):.3f}x "
                         f"({sc.runs['spans'].spans_recorded:,} spans)")
        lines.append(f"  digests equal        : "
                     f"{'yes' if sc.digests_equal else 'NO — OBS PERTURBED THE RUN'}")
        by_subsystem = sc.attribution.get("by_subsystem") or {}
        if by_subsystem:
            total = sum(by_subsystem.values()) or 1.0
            parts = ", ".join(
                f"{k} {v / total:.0%}"
                for k, v in sorted(by_subsystem.items(),
                                   key=lambda kv: -kv[1])[:top_n])
            lines.append(f"  hot subsystems       : {parts}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# regression gate


@dataclass
class GateResult:
    """Outcome of one baseline comparison."""

    failures: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = []
        for f in self.failures:
            lines.append(f"FAIL: {f}")
        for s in self.skipped:
            lines.append(f"skip: {s}")
        for n in self.notes:
            lines.append(f"ok:   {n}")
        lines.append("gate PASSED" if self.ok else "gate FAILED")
        return "\n".join(lines)


def gate(report: BenchReport, baseline: Dict[str, Any],
         tolerance: float = REGRESSION_TOLERANCE,
         min_cores: int = MIN_CORES_FOR_GATE) -> GateResult:
    """Compare a bench report against the committed baseline document.

    * digest equality across obs modes: gated unconditionally;
    * events/sec floor (``baseline * (1 - tolerance)``) and overhead
      ceilings (from the baseline's ``gate`` section): gated only on
      hosts with at least ``min_cores`` cores.
    """
    result = GateResult()
    cores = os.cpu_count() or 1
    perf_gated = cores >= min_cores
    if not perf_gated:
        result.skipped.append(
            f"speed/overhead gates: host has {cores} core(s) < {min_cores}")
    ceilings = baseline.get("gate", {})
    base_scenarios = baseline.get("scenarios", {})

    for name, sc in sorted(report.scenarios.items()):
        if not sc.digests_equal:
            result.failures.append(
                f"{name}: digests diverged across obs modes {sc.digests}")
        else:
            result.notes.append(f"{name}: digests identical across "
                                f"{len(sc.digests)} obs configurations")
        base = base_scenarios.get(name)
        if base is None:
            result.skipped.append(f"{name}: not in baseline")
            continue
        if not perf_gated:
            continue
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if sc.events_per_sec < floor:
            result.failures.append(
                f"{name}: events/sec {sc.events_per_sec:,.0f} below floor "
                f"{floor:,.0f} (baseline {base['events_per_sec']:,.0f}, "
                f"tolerance {tolerance:.0%})")
        else:
            result.notes.append(
                f"{name}: events/sec {sc.events_per_sec:,.0f} >= floor "
                f"{floor:,.0f}")
        for mode, key in (("unsub", "max_overhead_unsub"),
                          ("on", "max_overhead_on"),
                          ("spans", "max_overhead_spans")):
            ceiling = ceilings.get(key)
            if ceiling is None or mode not in sc.runs:
                continue
            measured = sc.overhead(mode)
            if measured > ceiling:
                result.failures.append(
                    f"{name}: obs overhead ({mode}) {measured:.3f}x exceeds "
                    f"ceiling {ceiling:.3f}x")
    return result


def read_baseline(path: str = DEFAULT_BASELINE) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)


# ---------------------------------------------------------------------------
# trend ledger


def trend_record(report: BenchReport) -> Dict[str, Any]:
    """The one-line-per-run ledger record: provenance + headline numbers."""
    return {
        "schema": BENCH_SCHEMA,
        "provenance": report.provenance,
        "ok": report.ok,
        "peak_rss_kb": report.peak_rss_kb,
        "headline": {
            name: {
                "events_per_sec": sc.events_per_sec,
                "wall_per_cell": sc.wall_per_cell,
                "overhead_unsub": sc.overhead("unsub"),
                "overhead_on": sc.overhead("on"),
                **({"overhead_spans": sc.overhead("spans")}
                   if "spans" in sc.runs else {}),
            }
            for name, sc in sorted(report.scenarios.items())
        },
    }


def append_trend(report: BenchReport, path: str = DEFAULT_TREND) -> Dict[str, Any]:
    """Append this run's record to the ledger; returns the record."""
    record = trend_record(report)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "a", encoding="utf-8") as fp:
        fp.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        fp.write("\n")
    return record


def read_trend(path: str = DEFAULT_TREND) -> List[Dict[str, Any]]:
    p = Path(path)
    if not p.exists():
        return []
    with open(p, "r", encoding="utf-8") as fp:
        return [json.loads(line) for line in fp if line.strip()]


_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Min-max normalized unicode sparkline.

    Degenerate ledgers render flat rather than blank or crashing: a
    single entry, all-equal values, and non-finite values (a corrupt or
    hand-edited TREND line) all map to the mid-level glyph.
    """
    if not values:
        return ""
    finite = [v for v in values if math.isfinite(v)]
    mid = _SPARK[len(_SPARK) // 2]
    if not finite:
        return mid * len(values)
    lo, hi = min(finite), max(finite)
    if hi <= lo:
        return mid * len(values)
    span = hi - lo
    return "".join(
        _SPARK[int((v - lo) / span * (len(_SPARK) - 1))]
        if math.isfinite(v) else mid
        for v in values)


def format_trend(records: List[Dict[str, Any]],
                 scenario: Optional[str] = None) -> str:
    """ASCII table + sparkline of the bench trajectory.

    Runs from different hosts are flagged rather than hidden: the table
    prints each record's host fingerprint, and a note calls out mixed
    hosts (numbers across machines are not comparable).
    """
    if not records:
        return "trend ledger is empty — run `repro bench` to add a record"
    scenarios = sorted({name for r in records for name in r.get("headline", {})})
    if scenario is not None:
        if scenario not in scenarios:
            return f"no trend data for scenario {scenario!r} (have {scenarios})"
        scenarios = [scenario]

    lines = [f"{'#':>3} {'date':<16} {'sha':<12} {'host':<12} "
             + " ".join(f"{s + ' ev/s':>14}" for s in scenarios)]
    for i, rec in enumerate(records):
        prov = rec.get("provenance", {})
        ts = prov.get("timestamp")
        date = time.strftime("%Y-%m-%d %H:%M", time.gmtime(ts)) if ts else "?"
        sha = str(prov.get("git_sha", "?"))[:10]
        if prov.get("git_dirty"):
            sha += "*"
        host = str(prov.get("host_fingerprint", "?"))[:12]
        cells = []
        for s in scenarios:
            head = rec.get("headline", {}).get(s)
            cells.append(f"{head['events_per_sec']:>14,.0f}" if head
                         else f"{'-':>14}")
        lines.append(f"{i:>3} {date:<16} {sha:<12} {host:<12} " + " ".join(cells))

    lines.append("")
    for s in scenarios:
        series = [r["headline"][s]["events_per_sec"]
                  for r in records if s in r.get("headline", {})]
        if series:
            lines.append(f"{s:<8} {sparkline(series)}  "
                         f"last {series[-1]:,.0f} ev/s "
                         f"(min {min(series):,.0f}, max {max(series):,.0f})")
    fingerprints = {r.get("provenance", {}).get("host_fingerprint")
                    for r in records}
    if len(fingerprints) > 1:
        lines.append("")
        lines.append(f"note: records span {len(fingerprints)} distinct hosts — "
                     "compare within one host fingerprint only")
    return "\n".join(lines)
