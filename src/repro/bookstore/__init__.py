"""A 3-tier on-line bookstore (TPC-W-flavoured) on the same substrate.

The paper states that the 7-stage template and the quantification
methodology were also applied to "a 3-tier on-line bookstore based on
the TPC-W benchmark".  This package reproduces that claim: a web tier,
an application tier and a primary/replica database tier built from the
same hosts/disks/fault machinery as PRESS, with inter-tier queues whose
backpressure propagates faults across tiers — so the same campaigns,
template fitter and analytic model apply unchanged.
"""

from repro.bookstore.config import BookstoreConfig
from repro.bookstore.tiers import TierServer, DbServer, DbCluster
from repro.bookstore.world import BookstoreWorld, build_bookstore

__all__ = [
    "BookstoreConfig",
    "TierServer",
    "DbServer",
    "DbCluster",
    "BookstoreWorld",
    "build_bookstore",
]
