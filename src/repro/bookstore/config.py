"""Bookstore deployment tunables."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BookstoreConfig:
    # -- topology ----------------------------------------------------------
    web_nodes: int = 2
    app_nodes: int = 2
    db_replicas: int = 1  # replicas besides the primary

    # -- per-request service times (seconds) --------------------------------
    web_cpu: float = 3.0e-3  # parse + render
    app_cpu: float = 6.0e-3  # business logic per interaction
    db_cpu: float = 4.0e-3  # query execution (buffer-pool hit)
    db_miss_ratio: float = 0.10  # queries that go to disk
    db_disk_bytes: int = 8192  # bytes read per missing query

    # -- request mix (TPC-W browsing vs ordering) -----------------------------
    order_fraction: float = 0.2
    browse_queries: int = 1
    order_queries: int = 3

    # -- queues & workers -----------------------------------------------------
    queue_capacity: int = 64  # per-tier input queue
    workers_per_node: int = 4
    tier_timeout: float = 8.0  # a tier gives up waiting on the next one

    # -- database failover ------------------------------------------------------
    db_heartbeat: float = 2.0
    db_loss_threshold: int = 3
    db_promotion_time: float = 4.0  # log replay before serving

    def with_(self, **changes) -> "BookstoreConfig":
        return replace(self, **changes)

    @property
    def total_nodes(self) -> int:
        return self.web_nodes + self.app_nodes + 1 + self.db_replicas
