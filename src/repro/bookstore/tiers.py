"""Tier servers and the replicated database of the bookstore.

Every tier is a pool of worker threads draining a bounded input queue;
a worker that must call the next tier *blocks* on that tier's queue —
the same backpressure primitive as PRESS's send queues, which is what
makes single-component faults propagate across tiers and produce
7-stage-template behaviour for the whole service.
"""

from __future__ import annotations

from operator import attrgetter
from typing import List, Optional

from repro.hardware.host import Host, NodeService
from repro.sim.conditions import AnyOf
from repro.sim.kernel import Environment, Event
from repro.sim.series import MarkerLog
from repro.sim.store import Store
from repro.bookstore.config import BookstoreConfig

#: least-loaded key, built once — dispatch() runs per job and must not
#: allocate a fresh closure each time
_BACKLOG = attrgetter("queue.backlog")


class Job:
    """One unit of tier work (page render, transaction, query).

    ``done`` triggers with True on success and False on failure, so an
    upstream worker waiting on a failed sub-job is released immediately
    instead of sitting out its whole tier timeout (which would let one
    broken downstream tier starve unrelated traffic of workers).
    """

    __slots__ = ("kind", "done", "created", "queries")

    def __init__(self, env: Environment, kind: str, queries: int = 1):
        self.kind = kind
        self.done = Event(env)
        self.created = env.now
        self.queries = queries

    def complete(self) -> None:
        if not self.done.triggered:
            self.done.succeed(True)

    def fail(self) -> None:
        if not self.done.triggered:
            self.done.succeed(False)

    @property
    def succeeded(self) -> bool:
        return self.done.triggered and bool(self.done.value)


class Dispatcher:
    """Routes jobs to the least-loaded *alive* server of a tier pool.

    A full target queue blocks the caller (backpressure); no alive
    target means waiting and retrying until the tier timeout expires.
    """

    __slots__ = ("env", "config", "servers", "_rr")

    def __init__(self, env: Environment, config: BookstoreConfig):
        self.env = env
        self.config = config
        self.servers: List["TierServer"] = []
        self._rr = 0  # rotates least-loaded ties so idle pools round-robin

    def attach(self, server: "TierServer") -> None:
        self.servers.append(server)

    def candidates(self) -> List["TierServer"]:
        return [s for s in self.servers if s.accepting]

    #: how long to keep retrying when *no* server of the tier is alive
    #: before failing fast (a worker must not sit on "no primary" for the
    #: whole tier timeout and starve unrelated work behind it)
    NO_TARGET_PATIENCE = 0.1

    def dispatch(self, job: Job):
        """Generator: returns True once the job is queued, False on timeout."""
        env = self.env
        deadline = env.now + self.config.tier_timeout
        empty_deadline = env.now + min(self.NO_TARGET_PATIENCE,
                                       self.config.tier_timeout)
        while env.now < deadline:
            targets = self.candidates()
            if targets:
                self._rr += 1
                rotated = targets[self._rr % len(targets):] + \
                    targets[:self._rr % len(targets)]
                target = min(rotated, key=_BACKLOG)
                put_ev = target.queue.put(job)
                timeout = env.timeout(max(deadline - env.now, 0.0))
                yield AnyOf(env, [put_ev, timeout])
                if put_ev.triggered:
                    return True
                put_ev.cancel()
                return False
            if self.env.now >= empty_deadline:
                return False  # fail fast: the whole tier is gone right now
            yield env.timeout(0.05)
        return False


class TierServer(NodeService):
    """A generic staged server (web or application tier)."""

    __slots__ = ("tier", "config", "downstream", "markers", "queue",
                 "_running", "jobs_done")

    def __init__(
        self,
        host: Host,
        tier: str,
        config: BookstoreConfig,
        downstream: Optional[Dispatcher] = None,
        markers: Optional[MarkerLog] = None,
    ):
        self.tier = tier
        super().__init__(host, name=tier)
        self.config = config
        self.downstream = downstream
        self.markers = markers if markers is not None else MarkerLog()
        self.queue = self.group.own_store(
            Store(self.env, capacity=config.queue_capacity, name=f"{host.name}.{tier}q")
        )
        self._running = False
        self.jobs_done = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._running or self.fault_latched or not self.host.is_up:
            return
        if not self.group.alive:
            return
        self._running = True
        for i in range(self.config.workers_per_node):
            self.env.process(self._worker(), owner=self.group,
                             name=f"{self.host.name}.{self.tier}.w{i}")

    def on_crash(self) -> None:
        self._running = False

    @property
    def accepting(self) -> bool:
        return self._running and self.group.alive and self.host.is_up

    @property
    def listening(self) -> bool:  # workload.client protocol
        return self.accepting

    # -- work -------------------------------------------------------------
    def service_time(self) -> float:
        return self.config.web_cpu if self.tier == "web" else self.config.app_cpu

    def _worker(self):
        cfg = self.config
        while True:
            job = yield self.queue.get()
            yield self.env.timeout(self.service_time())
            ok = True
            if self.downstream is not None:
                for _ in range(job.queries):
                    # Job.kind is a diagnostic label here — bookstore routing
                    # is positional (per-tier queue), not kind-dispatched.
                    sub = Job(self.env, "down", queries=1)  # reprolint: disable=REP008
                    queued = yield from self.downstream.dispatch(sub)
                    if not queued:
                        ok = False
                        break
                    deadline = self.env.timeout(cfg.tier_timeout)
                    yield AnyOf(self.env, [sub.done, deadline])
                    if not sub.succeeded:
                        ok = False
                        break
            if ok:
                self.jobs_done += 1
                job.complete()
            else:
                job.fail()  # release upstream waiters immediately


class WebServer(TierServer):
    """Web tier: the client-facing entry point (workload.client protocol)."""

    def __init__(self, host, config, downstream, markers=None, rng=None):
        super().__init__(host, "web", config, downstream, markers)
        self.rng = rng
        self.client_pending = 0

    def try_accept(self, req) -> bool:
        if not self.accepting:
            return False
        if self.queue.backlog >= self.config.queue_capacity:
            return False
        order = (self.rng.random() < self.config.order_fraction
                 if self.rng is not None else False)
        queries = (self.config.order_queries if order
                   else self.config.browse_queries)
        # label only; the web tier never dispatches on Job.kind
        job = Job(self.env, "page", queries=queries)  # reprolint: disable=REP008

        def _finish(evt):
            if evt.value and not req.expired:
                req.respond()

        job.done.add_callback(_finish)
        return self.queue.try_put(job)

    @property
    def load(self) -> int:
        return self.queue.backlog


class DbServer(TierServer):
    """Database node: queries hit the buffer pool or the local disks."""

    def __init__(self, host, config, cluster: "DbCluster", markers=None, rng=None):
        super().__init__(host, "db", config, downstream=None, markers=markers)
        self.cluster = cluster
        self.rng = rng

    def start(self) -> None:
        if self._running:
            return
        super().start()
        if self._running:
            self.cluster.on_db_start(self)

    def service_time(self) -> float:
        return self.config.db_cpu

    def _worker(self):
        cfg = self.config
        disks = self.host.disks
        i = 0
        while True:
            job = yield self.queue.get()
            yield self.env.timeout(cfg.db_cpu)
            miss = (self.rng.random() < cfg.db_miss_ratio
                    if self.rng is not None else False)
            if miss and disks:
                i += 1
                disk = disks[i % len(disks)]
                sub = disk.submit(cfg.db_disk_bytes)
                yield sub.enqueued
                yield sub.done  # a faulty disk wedges the worker here
            self.jobs_done += 1
            job.complete()


class DbCluster(Dispatcher):
    """Primary/replica database with heartbeat-driven failover.

    Queries go to the primary only.  Each replica monitors the primary's
    heartbeats (emitted by the primary's database *process*, so a node
    crash, freeze or process death silences them — but a disk fault does
    not: the database wedges while still heartbeating, the same
    blind spot PRESS's membership service has).
    """

    __slots__ = ("markers", "primary", "_promoting", "_hb_seen")

    def __init__(self, env, config: BookstoreConfig,
                 markers: Optional[MarkerLog] = None):
        super().__init__(env, config)
        self.markers = markers if markers is not None else MarkerLog()
        self.primary: Optional[DbServer] = None
        self._promoting = False
        self._hb_seen = env.now

    # -- routing --------------------------------------------------------------
    def candidates(self) -> List[TierServer]:
        if self.primary is not None and self.primary.accepting:
            return [self.primary]
        return []

    # -- membership -------------------------------------------------------------
    def attach(self, server: DbServer) -> None:
        super().attach(server)
        if self.primary is None:
            self.primary = server

    def on_db_start(self, server: DbServer) -> None:
        """(Re)spawn the node's heartbeat/monitor role; called from
        DbServer.start so a rebooted node resumes its duties."""
        self.env.process(self._heartbeat_duty(server), owner=server.group,
                         name=f"{server.host.name}.db.hb")

    def _heartbeat_duty(self, server: DbServer):
        """Runs on every db node: primaries emit heartbeats, replicas
        watch them and promote themselves when the primary goes silent."""
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.db_heartbeat)
            if server is self.primary:
                # Both writers (_heartbeat_duty and _promote) refresh
                # the watchdog to env.now, so same-instant order cannot
                # change the stored value.
                self._hb_seen = self.env.now  # reprolint: disable=REP014
            else:
                silent = self.env.now - self._hb_seen
                if (silent > cfg.db_loss_threshold * cfg.db_heartbeat
                        and not self._promoting and server.accepting):
                    yield from self._promote(server)

    def _promote(self, server: DbServer):
        self._promoting = True
        old = self.primary
        self.markers.mark(self.env.now, "detected",
                          ("db_failover", server.host.name,
                           old.host.name if old else "?"))
        self.markers.mark(self.env.now, "db_failover", server.host.name)
        yield self.env.timeout(self.config.db_promotion_time)  # log replay
        self.primary = server
        self._hb_seen = self.env.now
        self._promoting = False
