"""Bookstore deployment builder (campaign-compatible world)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bookstore.config import BookstoreConfig
from repro.bookstore.tiers import DbCluster, DbServer, Dispatcher, TierServer, WebServer
from repro.faults.injector import FaultInjector
from repro.faults.faultload import FaultCatalog, FaultRate, HOUR, MINUTE, MONTH, WEEK, YEAR
from repro.faults.types import FaultKind
from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.series import MarkerLog
from repro.workload.client import ClientConfig, ClientPool, DnsRouter
from repro.workload.stats import RequestStats
from repro.workload.trace import SyntheticTrace, TraceConfig


def bookstore_catalog(config: BookstoreConfig) -> FaultCatalog:
    """A Table-1-style fault load for the 3-tier deployment."""
    n = config.total_nodes
    db_nodes = 1 + config.db_replicas
    return FaultCatalog([
        FaultRate(FaultKind.NODE_CRASH, 2 * WEEK, 3 * MINUTE, n),
        FaultRate(FaultKind.NODE_FREEZE, 2 * WEEK, 3 * MINUTE, n),
        FaultRate(FaultKind.APP_CRASH, 2 * MONTH, 3 * MINUTE, n),
        FaultRate(FaultKind.APP_HANG, 2 * MONTH, 3 * MINUTE, n),
        FaultRate(FaultKind.SCSI_TIMEOUT, 1 * YEAR, 1 * HOUR, 2 * db_nodes),
    ])


@dataclass
class BookstoreWorld:
    """Same protocol as :class:`repro.experiments.runner.World`."""

    env: Environment
    rngs: RngRegistry
    markers: MarkerLog
    config: BookstoreConfig
    hosts: List[Host]
    web: List[WebServer]
    app: List[TierServer]
    db: List[DbServer]
    db_cluster: DbCluster
    disks: Dict[str, Disk]
    injector: FaultInjector
    stats: RequestStats
    offered_rate: float
    catalog: FaultCatalog
    version: str = "BOOKSTORE"
    reset_downtime: float = 10.0

    @property
    def servers(self) -> List[TierServer]:
        return [*self.web, *self.app, *self.db]

    def host_by_name(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def operator_reset(self) -> None:
        for srv in self.servers:
            if srv.host.is_up and srv.group.alive:
                srv.group.crash()
                srv.on_crash()
        env = self.env

        def _bring_up():
            yield env.timeout(self.reset_downtime)
            for srv in self.servers:
                if not srv.host.is_up or srv.fault_latched:
                    continue
                if not srv.group.alive:
                    srv.group.revive()
                srv.start()

        env.process(_bring_up(), name="bookstore-reset")

    def default_target(self, kind: FaultKind) -> str:
        """Faults land on the most interesting component of each kind:
        node-level faults on an app node, disk faults on the db primary."""
        if kind is FaultKind.SCSI_TIMEOUT:
            return f"{self.db[0].host.name}.disk0"
        if kind in (FaultKind.APP_CRASH, FaultKind.APP_HANG):
            return self.app[0].host.name
        return self.app[0].host.name

    def db_target(self, kind: FaultKind) -> str:
        """Inject against the database primary instead."""
        if kind is FaultKind.SCSI_TIMEOUT:
            return f"{self.db[0].host.name}.disk0"
        return self.db[0].host.name

    def injectable_kinds(self) -> List[FaultKind]:
        return list(self.catalog.kinds())


def build_bookstore(
    config: BookstoreConfig = BookstoreConfig(),
    rate: float = 120.0,
    seed: int = 0,
) -> BookstoreWorld:
    env = Environment()
    rngs = RngRegistry(seed)
    markers = MarkerLog()

    db_cluster = DbCluster(env, config, markers)
    app_dispatcher = Dispatcher(env, config)

    hosts: List[Host] = []
    disks: Dict[str, Disk] = {}
    web: List[WebServer] = []
    app: List[TierServer] = []
    db: List[DbServer] = []
    idx = 0

    def new_host(prefix: str) -> Host:
        nonlocal idx
        host = Host(env, f"{prefix}{idx}", idx)
        idx += 1
        hosts.append(host)
        return host

    for _ in range(config.web_nodes):
        host = new_host("web")
        web.append(WebServer(host, config, app_dispatcher, markers,
                             rng=rngs.stream(f"mix.{host.name}")))
    for _ in range(config.app_nodes):
        host = new_host("app")
        server = TierServer(host, "app", config, downstream=db_cluster,
                            markers=markers)
        app.append(server)
        app_dispatcher.attach(server)
    for _ in range(1 + config.db_replicas):
        host = new_host("db")
        for d in range(2):
            disk = Disk(env, host, d, DiskParams(seek_time=0.012),
                        rngs.stream(f"disk.{host.name}.{d}"))
            disks[disk.name] = disk
        server = DbServer(host, config, db_cluster, markers,
                          rng=rngs.stream(f"dbmiss.{host.name}"))
        db.append(server)
        db_cluster.attach(server)

    for host in hosts:
        host.start_all()

    stats = RequestStats()
    trace = SyntheticTrace(TraceConfig(n_files=100, file_size=4096),
                           rngs.stream("pages"))
    client_cfg = ClientConfig(request_rate=rate, ramp_time=10.0)
    ClientPool(env, trace, DnsRouter(web), stats, client_cfg,
               rngs.stream("clients")).start()

    def app_of(host: Host):
        # the single tier service installed on this host
        for name in ("web", "app", "db"):
            if name in host.services:
                return host.services[name]
        raise KeyError(host.name)

    injector = FaultInjector(
        env,
        hosts={h.name: h for h in hosts},
        disks=disks,
        app_of=app_of,
        markers=markers,
    )
    return BookstoreWorld(
        env=env, rngs=rngs, markers=markers, config=config, hosts=hosts,
        web=web, app=app, db=db, db_cluster=db_cluster, disks=disks,
        injector=injector, stats=stats, offered_rate=rate,
        catalog=bookstore_catalog(config),
    )
