"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``versions``
    List the named system versions and their composition.
``quantify VERSION [...]``
    Run the full two-phase methodology for one or more versions.
``inject VERSION FAULT``
    One single-fault experiment with a throughput timeline.
``figure NAME``
    Regenerate one of the paper's figures/tables (fig1a..fig10, table1/2).
``validate VERSION``
    Empirical model validation under a random fault load.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.quantify import QuantifyConfig, quantify_version, run_single_fault
from repro.core.report import format_bar, format_comparison, format_model_result
from repro.experiments.configs import VERSIONS, version
from repro.faults.types import FaultKind


def _config(args) -> QuantifyConfig:
    return QuantifyConfig.quick() if args.quick else QuantifyConfig.from_env()


def cmd_versions(_args) -> int:
    print(f"{'name':<12} composition")
    for name, spec in VERSIONS.items():
        parts = []
        parts.append("cooperative" if spec.cooperative else "independent")
        parts.append(f"{spec.server_count} nodes")
        if spec.frontend:
            parts.append("front-end" + ("(conn-mon)" if spec.fe_conn_monitoring else "(ping)"))
        if spec.membership:
            parts.append("membership")
        if spec.queue_monitoring:
            parts.append("queue-mon")
        if spec.fme:
            parts.append("FME")
        if spec.sfme:
            parts.append("S-FME")
        if spec.catalog_transforms:
            parts.append("+".join(spec.catalog_transforms))
        print(f"{name:<12} {', '.join(parts)}")
    return 0


def cmd_quantify(args) -> int:
    config = _config(args)
    results = []
    for name in args.versions:
        print(f"quantifying {name}...", file=sys.stderr)
        va = quantify_version(name, config)
        results.append(va.result)
        print(format_model_result(va.result))
        print()
    if len(results) > 1:
        print(format_comparison(results, "comparison"))
    return 0


def cmd_inject(args) -> int:
    config = _config(args)
    kind = FaultKind(args.fault)
    trace, world = run_single_fault(version(args.version), kind, config,
                                    target=args.target)
    start = max(trace.t_inject - 20.0, 0.0)
    times, rates = trace.series.bucketize(5.0, start, trace.t_end)
    peak = max(float(rates.max()), 1.0)
    for t, r in zip(times, rates):
        marks = []
        for label, t_ev in (("INJECT", trace.t_inject), ("DETECT", trace.t_detect),
                            ("REPAIR", trace.t_repair), ("RESET", trace.t_reset)):
            if t_ev is not None and t <= t_ev < t + 5.0:
                marks.append(label)
        print(f"{t:7.0f} {r:7.1f} {format_bar(r, peak)} {' '.join(marks)}")
    print(f"\ncooperation sets: "
          f"{[sorted(getattr(s, 'coop', [])) for s in world.servers]}")
    return 0


def cmd_figure(args) -> int:
    from repro.experiments.figures import ALL_FIGURES, Evaluation

    fig_fn = ALL_FIGURES.get(args.name)
    if fig_fn is None:
        print(f"unknown figure {args.name!r}; choose from {sorted(ALL_FIGURES)}",
              file=sys.stderr)
        return 2
    ev = Evaluation(_config(args))
    print(fig_fn(ev))
    return 0


def cmd_sensitivity(args) -> int:
    """Which lever buys the most availability next (Section 8's question)."""
    from repro.core.quantify import quantify_version
    from repro.core.sensitivity import SensitivityAnalysis, format_levers
    from repro.experiments.runner import build_world

    config = _config(args)
    va = quantify_version(args.version, config)
    world = build_world(va.spec, config.profile, seed=config.seed)
    analysis = SensitivityAnalysis(
        va.templates, world.catalog, config.environment,
        va.normal_tput, va.offered_rate, version=args.version)
    print(f"{args.version}: availability {analysis.baseline.availability:.5f} "
          f"({analysis.nines():.2f} nines)\n")
    print(format_levers(analysis.ranked_levers(),
                        analysis.baseline.unavailability))
    if args.target:
        steps = analysis.path_to(args.target)
        print(f"\ngreedy path toward {args.target}:")
        for i, step in enumerate(steps, 1):
            print(f"  {i}. {step.description} -> {step.new_unavailability:.2e}")
        if not steps:
            print("  (already there, or no lever helps)")
    return 0


def cmd_validate(args) -> int:
    from repro.core.validation import validate_model

    result = validate_model(args.version, horizon=args.horizon)
    print(f"version {result.version}: predicted availability "
          f"{result.predicted_availability:.5f}, measured "
          f"{result.measured_availability:.5f} "
          f"({result.faults_injected} random faults over {result.horizon:.0f}s)")
    print(f"measured/predicted unavailability ratio: {result.ratio:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC'03 cluster-service availability reproduction",
    )
    parser.add_argument("--quick", action="store_true",
                        help="shorter experiment windows")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("versions", help="list system versions").set_defaults(fn=cmd_versions)

    p = sub.add_parser("quantify", help="run the methodology for versions")
    p.add_argument("versions", nargs="+", choices=sorted(VERSIONS))
    p.set_defaults(fn=cmd_quantify)

    p = sub.add_parser("inject", help="one single-fault experiment")
    p.add_argument("version", choices=sorted(VERSIONS))
    p.add_argument("fault", choices=[k.value for k in FaultKind])
    p.add_argument("--target", default=None)
    p.set_defaults(fn=cmd_inject)

    p = sub.add_parser("figure", help="regenerate a paper figure/table")
    p.add_argument("name")
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser("validate", help="empirical model validation")
    p.add_argument("version", choices=sorted(VERSIONS))
    p.add_argument("--horizon", type=float, default=7200.0)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("sensitivity",
                       help="rank what-if levers; optionally search a path "
                            "to a target availability")
    p.add_argument("version", choices=sorted(VERSIONS))
    p.add_argument("--target", type=float, default=None,
                   help="e.g. 0.99999 for five nines")
    p.set_defaults(fn=cmd_sensitivity)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
