"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``versions``
    List the named system versions and their composition.
``quantify VERSION [...]``
    Run the full two-phase methodology for one or more versions;
    ``--jobs N`` fans the campaign cells out over N worker processes
    (byte-identical results, see docs/PERFORMANCE.md), ``--retries K``
    re-executes cells whose worker crashed.
``sweep VERSION KNOB VALUE [...]``
    Vary one profile knob across values and tabulate availability;
    ``--jobs N`` measures the points in parallel.
``inject VERSION FAULT``
    One single-fault experiment with a throughput timeline.
``trace VERSION FAULT``
    One single-fault experiment, emitting the structured telemetry trace
    (JSONL by default, ``--format csv`` for spreadsheets; ``--kind`` /
    ``--component`` / ``--limit`` select a subset).
``spans VERSION FAULT``
    One single-fault experiment under causal request tracing: per-request
    span trees.  ``--waterfall REQ`` renders one request's ASCII
    waterfall, ``--critical-path REQ`` its per-hop latency attribution,
    and the default ``--blame`` groups the p99-slowest requests by
    critical-path signature and dominant hop before/during/after the
    fault.  ``--sample``/``--max-requests`` bound the recording cost;
    ``--out`` exports spans as JSONL trace events.
``metrics VERSION``
    Fault-free run; dump the metrics registry snapshot (histograms include
    p50/p90/p99).
``profile VERSION``
    Fault-free run with kernel profiling; report the event-loop hot
    spots (``--time`` adds wall-time attribution per event kind /
    process type / subsystem; ``--json``/``--top N`` for machines).
``bench``
    Kernel benchmark harness: standardized scenarios measured with
    observability off / enabled-unsubscribed / fully exporting —
    events/sec, wall-per-cell, overhead ratios, hot-path attribution.
    ``--gate`` enforces the committed ``benchmarks/BENCH_kernel.json``
    baseline; every run appends a provenance-stamped record to
    ``benchmarks/TREND.jsonl`` (``--trend`` renders the trajectory).
``record VERSION FAULT``
    One single-fault experiment captured as a replayable flight-recorder
    artifact (JSON) for offline re-analysis.
``budget RECORD [RECORD ...]``
    Re-fit and attribute recorded flights; print the per-version
    unavailability error budget with stage-level drill-down.
``timeline RECORD``
    ASCII throughput/stage timeline of a recorded flight.
``figure NAME``
    Regenerate one of the paper's figures/tables (fig1a..fig10, table1/2).
``validate VERSION``
    Empirical model validation under a random fault load.
``lint [PATH ...]``
    Repo-native static analysis (reprolint, rules REP001..REP013) over
    the source tree; ``--flow`` adds the whole-program call-graph pass,
    ``--diff REF`` restricts reporting to files changed since a git ref,
    ``--format json`` for the CI artifact.
``sanitize``
    Runtime determinism check: the same campaign twice under different
    ``PYTHONHASHSEED`` values; trace digests and metrics must match.
``digest VERSION FAULT``
    Fingerprint one run (chained per-event digests) — the worker
    ``sanitize`` spawns, also useful for manual diffing.

Version names are case-insensitive and accept aliases (``pressha`` is
the paper's fully-hardened FME configuration).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.quantify import QuantifyConfig, quantify_version, run_single_fault
from repro.core.report import (
    format_bar,
    format_comparison,
    format_model_result,
    model_result_to_dict,
)
from repro.experiments.configs import VERSIONS, version
from repro.faults.types import FaultKind
from repro.obs.export import (
    event_to_dict,
    filter_events,
    format_metrics,
    write_csv,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.telemetry import Telemetry


def _config(args) -> QuantifyConfig:
    return QuantifyConfig.quick() if args.quick else QuantifyConfig.from_env()


def _version(name: str):
    """Alias-aware version lookup with a CLI-friendly error."""
    try:
        return version(name)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def cmd_versions(args) -> int:
    if args.json:
        from dataclasses import asdict

        print(json.dumps({name: asdict(spec) for name, spec in VERSIONS.items()},
                         indent=2, sort_keys=True))
        return 0
    print(f"{'name':<12} composition")
    for name, spec in VERSIONS.items():
        parts = []
        parts.append("cooperative" if spec.cooperative else "independent")
        parts.append(f"{spec.server_count} nodes")
        if spec.frontend:
            parts.append("front-end" + ("(conn-mon)" if spec.fe_conn_monitoring else "(ping)"))
        if spec.membership:
            parts.append("membership")
        if spec.queue_monitoring:
            parts.append("queue-mon")
        if spec.fme:
            parts.append("FME")
        if spec.sfme:
            parts.append("S-FME")
        if spec.catalog_transforms:
            parts.append("+".join(spec.catalog_transforms))
        print(f"{name:<12} {', '.join(parts)}")
    return 0


def cmd_quantify(args) -> int:
    config = _config(args)
    results = []
    if args.jobs > 1:
        from repro.parallel import CellExecutionError, quantify_grid

        specs = [_version(name) for name in args.versions]
        print(f"quantifying {', '.join(s.name for s in specs)} "
              f"({args.jobs} workers)...", file=sys.stderr)
        stats_out = []
        try:
            grid = quantify_grid(
                specs, config, jobs=args.jobs, retries=args.retries,
                progress=lambda line: print(line, file=sys.stderr),
                stats_out=stats_out)
        except (CellExecutionError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
        for spec in specs:
            va = grid[spec.name]
            results.append(va.result)
            if not args.json:
                print(format_model_result(va.result, stages=args.stages))
                print()
        for s in stats_out:
            print(f"parallel: {s.cells} cells on {s.jobs} workers in "
                  f"{s.wall_seconds:.1f}s wall ({s.cell_seconds:.1f}s of "
                  f"cell work, {s.speedup:.2f}x overlap)", file=sys.stderr)
    else:
        for name in args.versions:
            print(f"quantifying {name}...", file=sys.stderr)
            va = quantify_version(_version(name), config)
            results.append(va.result)
            if not args.json:
                print(format_model_result(va.result, stages=args.stages))
                print()
    if args.json:
        print(json.dumps([model_result_to_dict(r) for r in results],
                         indent=2, sort_keys=True))
    elif len(results) > 1:
        print(format_comparison(results, "comparison"))
    return 0


def _timeline_dict(trace) -> dict:
    return {
        "t_inject": trace.t_inject,
        "t_detect": trace.t_detect,
        "t_repair": trace.t_repair,
        "t_reset": trace.t_reset,
        "t_end": trace.t_end,
        "normal_tput": trace.normal_tput,
    }


def cmd_inject(args) -> int:
    config = _config(args)
    kind = FaultKind(args.fault)
    telemetry = Telemetry()
    trace, world = run_single_fault(_version(args.version), kind, config,
                                    target=args.target, telemetry=telemetry)
    if args.json:
        start = max(trace.t_inject - 20.0, 0.0)
        times, rates = trace.series.bucketize(5.0, start, trace.t_end)
        print(json.dumps({
            "version": trace.version,
            "fault": kind.value,
            "target": args.target or world.default_target(kind),
            "timeline": _timeline_dict(trace),
            "throughput": {"times": [float(t) for t in times],
                           "rates": [float(r) for r in rates]},
            "events": [event_to_dict(e) for e in telemetry.tracer.events],
        }, sort_keys=True))
        return 0
    start = max(trace.t_inject - 20.0, 0.0)
    times, rates = trace.series.bucketize(5.0, start, trace.t_end)
    peak = max(float(rates.max()), 1.0)
    for t, r in zip(times, rates):
        marks = []
        for label, t_ev in (("INJECT", trace.t_inject), ("DETECT", trace.t_detect),
                            ("REPAIR", trace.t_repair), ("RESET", trace.t_reset)):
            if t_ev is not None and t <= t_ev < t + 5.0:
                marks.append(label)
        print(f"{t:7.0f} {r:7.1f} {format_bar(r, peak)} {' '.join(marks)}")
    print(f"\ncooperation sets: "
          f"{[sorted(getattr(s, 'coop', [])) for s in world.servers]}")
    return 0


def cmd_trace(args) -> int:
    config = _config(args)
    kind = FaultKind(args.fault)
    telemetry = Telemetry()
    trace, _world = run_single_fault(_version(args.version), kind, config,
                                     target=args.target, telemetry=telemetry)
    events = filter_events(telemetry.tracer.events, kinds=args.kind or None,
                           components=args.component or None,
                           limit=args.limit)
    writer = write_csv if args.format == "csv" else write_jsonl
    if args.out:
        n = writer(events, args.out)
    else:
        n = writer(events, sys.stdout)
    kinds = {}
    for e in events:
        kinds[e.kind] = kinds.get(e.kind, 0) + 1
    print(f"{n} events ({', '.join(f'{k}:{v}' for k, v in sorted(kinds.items()))})",
          file=sys.stderr)
    print(f"inject={trace.t_inject:.1f} detect={trace.t_detect} "
          f"repair={trace.t_repair:.1f} end={trace.t_end:.1f}", file=sys.stderr)
    return 0


def cmd_spans(args) -> int:
    from repro.obs.spans import (
        analyze_tree,
        blame_report,
        filter_spans,
        format_blame,
        format_critical_path,
        phases_from_trace,
        render_waterfall,
        span_event,
        spans_digest,
    )

    config = _config(args)
    kind = FaultKind(args.fault)
    telemetry = Telemetry(trace_spans=True, span_sample=args.sample,
                          span_seed=args.span_seed,
                          span_max_requests=args.max_requests)
    run_single_fault(_version(args.version), kind, config,
                     target=args.target, telemetry=telemetry)
    spans = telemetry.spans

    if args.out:
        selected = filter_spans(spans.spans(), kinds=args.kind or None,
                                components=args.component or None,
                                limit=args.limit)
        n = write_jsonl((span_event(s) for s in selected), args.out)
        print(f"{n} spans exported to {args.out}", file=sys.stderr)

    if args.waterfall is not None:
        tree = spans.tree(args.waterfall)
        if not tree:
            ids = spans.request_ids
            print(f"error: request {args.waterfall} was not sampled "
                  f"({len(ids)} trees recorded"
                  + (f"; e.g. {ids[:5]}" if ids else "") + ")",
                  file=sys.stderr)
            return 1
        if args.json:
            record = analyze_tree(args.waterfall, tree)
            print(json.dumps(record, sort_keys=True))
        else:
            print(render_waterfall(tree))
        return 0

    if args.critical_path is not None:
        tree = spans.tree(args.critical_path)
        record = analyze_tree(args.critical_path, tree) if tree else None
        if record is None:
            print(f"error: request {args.critical_path} was not sampled",
                  file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(record, sort_keys=True))
        else:
            print(format_critical_path(record))
        return 0

    # default: the tail-latency blame report, phased around the fault
    phases = phases_from_trace(telemetry.tracer.events)
    report = blame_report(spans.trees(), percentile=args.percentile,
                          phases=phases, top=args.top)
    report["digest"] = spans_digest(spans.spans())
    report["dropped_trees"] = spans.dropped
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(format_blame(report))
    return 0


def cmd_metrics(args) -> int:
    from repro.experiments.runner import build_world

    config = _config(args)
    telemetry = Telemetry()
    world = build_world(_version(args.version), config.profile,
                        seed=config.seed, telemetry=telemetry)
    until = args.until
    if until is None:
        until = config.campaign.warmup + config.campaign.normal_window
    world.env.run(until=until)
    snapshot = telemetry.metrics.snapshot()
    if args.json:
        write_metrics_json(snapshot, sys.stdout)
    else:
        print(format_metrics(snapshot))
    return 0


def cmd_profile(args) -> int:
    from repro.experiments.runner import build_world

    config = _config(args)
    telemetry = Telemetry(profile_kernel=True, profile_time=args.time)
    world = build_world(_version(args.version), config.profile,
                        seed=config.seed, telemetry=telemetry)
    until = args.until
    if until is None:
        until = config.campaign.warmup + config.campaign.normal_window
    world.env.run(until=until)
    profiler = telemetry.profiler
    assert profiler is not None
    if args.json:
        doc = profiler.snapshot()
        # machine-readable top-N, mirroring the text report's sorting
        doc["top"] = [{"owner": owner, "events": count}
                      for owner, count in profiler.top(args.top)]
        if args.time:
            for table in ("subsystem", "kind", "type"):
                doc[f"top_{table}"] = [
                    {table: key, "seconds": secs}
                    for key, secs in profiler.top_times(table, args.top)
                ]
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(profiler.report(top_n=args.top))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import (
        append_trend,
        format_bench,
        format_trend,
        gate,
        read_baseline,
        read_trend,
        run_bench,
    )

    if args.trend:
        print(format_trend(read_trend(args.trend_file),
                           scenario=args.scenario[0] if args.scenario else None))
        return 0

    try:
        report = run_bench(
            scenario_names=args.scenario or None,
            attribution=not args.no_attribution,
            top_n=args.top,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    doc = report.to_dict()
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(doc, fp, indent=2, sort_keys=True)
            fp.write("\n")
    if not args.no_trend_append:
        append_trend(report, args.trend_file)
        print(f"trend: appended to {args.trend_file}", file=sys.stderr)

    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_bench(report))

    rc = 0
    if args.gate:
        try:
            baseline = read_baseline(args.baseline)
        except OSError as exc:
            raise SystemExit(f"error: cannot read baseline {args.baseline!r}: "
                             f"{exc}")
        verdict = gate(report, baseline)
        print(verdict.describe(), file=sys.stderr)
        rc = 0 if verdict.ok else 1
    elif not report.ok:
        # even ungated, a digest divergence is always an error
        print("error: observability perturbed simulation results "
              "(digest mismatch)", file=sys.stderr)
        rc = 1
    return rc


def cmd_record(args) -> int:
    from repro.obs.attribution import StageAttributor
    from repro.obs.recorder import record_flight, write_record

    config = _config(args)
    kind = FaultKind(args.fault)
    record = record_flight(_version(args.version), kind, config,
                           target=args.target, seed=args.seed)
    out = args.out
    if out is None:
        out = f"results/records/{record.version}-{kind.value}.json"
    write_record(record, out)
    report = StageAttributor().attribute(record)
    if args.json:
        print(json.dumps({
            "artifact": out,
            "version": record.version,
            "fault": record.fault,
            "target": record.target,
            "seed": record.seed,
            "samples": len(record.samples),
            "events": len(record.events),
            "attribution": report.to_dict(),
        }, sort_keys=True))
        return 0
    print(f"recorded {record.version}/{kind.value} -> {out}")
    print(f"  {len(record.samples)} samples, {len(record.events)} events, "
          f"seed {record.seed}, profile {record.profile}")
    print(f"  attribution: {report.coverage * 100:.1f}% of "
          f"{report.total_lost:.1f} lost request-seconds named; "
          f"fit cross-check "
          f"{'agrees' if report.agrees_with_fit else 'DISAGREES'}")
    return 0


def _load_records(paths):
    from repro.obs.recorder import read_record

    records = []
    for path in paths:
        try:
            records.append(read_record(path))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"error: cannot read record {path!r}: {exc}")
    return records


def cmd_budget(args) -> int:
    from repro.core.model import EnvironmentParams
    from repro.obs.budget import budget_from_records, format_budget

    records = _load_records(args.records)
    env = EnvironmentParams(operator_response=args.operator_response,
                            reset_duration=args.reset_duration)
    try:
        report = budget_from_records(records, environment=env,
                                     objective=args.objective)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_budget(report))
    return 0


def cmd_timeline(args) -> int:
    from repro.obs.timeline import render_timeline

    record = _load_records([args.record])[0]
    print(render_timeline(record, bucket=args.bucket, width=args.width))
    return 0


def cmd_figure(args) -> int:
    from repro.experiments.figures import ALL_FIGURES, Evaluation

    fig_fn = ALL_FIGURES.get(args.name)
    if fig_fn is None:
        print(f"unknown figure {args.name!r}; choose from {sorted(ALL_FIGURES)}",
              file=sys.stderr)
        return 2
    ev = Evaluation(_config(args))
    print(fig_fn(ev))
    return 0


# -- sweep command ----------------------------------------------------------
# Knob appliers and the measurement live at module level so that a
# parallel sweep (spawn pool) can pickle them; closures cannot cross the
# process boundary.

def _knob_heartbeat(profile, value):
    from dataclasses import replace

    return replace(profile, press=profile.press.with_(heartbeat_interval=value))


def _knob_cache_files(profile, value):
    return profile.with_cache_files(int(value))


def _knob_disk_queue(profile, value):
    from dataclasses import replace

    return replace(profile,
                   press=profile.press.with_(disk_queue_capacity=int(value)))


def _knob_coop_rate(profile, value):
    from dataclasses import replace

    return replace(profile, coop_rate=float(value))


#: knob name -> (help text, apply(profile, value) -> profile)
SWEEP_KNOBS = {
    "heartbeat": ("heartbeat interval in seconds", _knob_heartbeat),
    "cache-files": ("per-node cache size in files", _knob_cache_files),
    "disk-queue": ("disk queue capacity in requests", _knob_disk_queue),
    "coop-rate": ("offered load for cooperative versions (req/s)",
                  _knob_coop_rate),
}


def _sweep_availability(version_name: str, config: QuantifyConfig) -> dict:
    """One sweep point: quantify the version under the varied profile."""
    va = quantify_version(version(version_name), config)
    return {
        "availability": va.availability,
        "unavailability": va.unavailability,
        "normal_tput": va.normal_tput,
    }


def cmd_sweep(args) -> int:
    import functools

    from repro.experiments.sweep import Sweep

    spec = _version(args.version)  # alias-aware existence check
    _help, apply_fn = SWEEP_KNOBS[args.knob]
    sweep = Sweep(args.knob, values=args.values, apply=apply_fn,
                  quick=not args.full, seed=args.seed)
    measure = functools.partial(_sweep_availability, spec.name)
    if args.jobs > 1:
        print(f"sweeping {args.knob} over {len(args.values)} points "
              f"({args.jobs} workers)...", file=sys.stderr)
    result = sweep.run(measure, jobs=args.jobs)
    if args.json:
        print(json.dumps({"version": spec.name, "sweep": result.name,
                          "rows": result.rows}, indent=2, sort_keys=True))
    else:
        print(f"{spec.name}: {args.knob} sweep")
        print(result.text())
    return 0


def cmd_sensitivity(args) -> int:
    """Which lever buys the most availability next (Section 8's question)."""
    from repro.core.quantify import quantify_version
    from repro.core.sensitivity import SensitivityAnalysis, format_levers
    from repro.experiments.runner import build_world

    config = _config(args)
    va = quantify_version(_version(args.version), config)
    world = build_world(va.spec, config.profile, seed=config.seed)
    analysis = SensitivityAnalysis(
        va.templates, world.catalog, config.environment,
        va.normal_tput, va.offered_rate, version=args.version)
    print(f"{args.version}: availability {analysis.baseline.availability:.5f} "
          f"({analysis.nines():.2f} nines)\n")
    print(format_levers(analysis.ranked_levers(),
                        analysis.baseline.unavailability))
    if args.target:
        steps = analysis.path_to(args.target)
        print(f"\ngreedy path toward {args.target}:")
        for i, step in enumerate(steps, 1):
            print(f"  {i}. {step.description} -> {step.new_unavailability:.2e}")
        if not steps:
            print("  (already there, or no lever helps)")
    return 0


def _git_changed_files(ref: str) -> List[str]:
    """``*.py`` paths changed since ``ref`` (per ``git diff --name-only``)."""
    import subprocess

    proc = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        capture_output=True, text=True, check=False,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"error: git diff {ref} failed: {proc.stderr.strip()}")
    return [ln.strip() for ln in proc.stdout.splitlines()
            if ln.strip().endswith(".py")]


def _restrict_to_changed(paths: List[str], ref: str) -> List[str]:
    """The requested lint targets, narrowed to files changed since ``ref``."""
    from repro.analysis.lint import iter_python_files

    wanted = {str(Path(p).resolve()) for p in iter_python_files(paths)}
    changed = [c for c in _git_changed_files(ref)
               if Path(c).exists() and str(Path(c).resolve()) in wanted]
    return sorted(changed)


def cmd_lint(args) -> int:
    from repro.analysis.lint import lint_paths
    from repro.analysis.report import (
        render_json,
        render_rules,
        render_text,
        write_json,
    )

    if args.list_rules:
        print(render_rules())
        return 0
    if args.docs:
        # the docs pass is its own domain (markdown corpus, not python
        # sources) — it runs standalone and every finding is an error
        from repro.analysis.doccheck import check_docs, format_doccheck

        docs_result = check_docs(root=args.docs_root)
        if args.out:
            Path(args.out).parent.mkdir(parents=True, exist_ok=True)
            with open(args.out, "w", encoding="utf-8") as fp:
                json.dump(docs_result.to_dict(), fp, indent=2, sort_keys=True)
                fp.write("\n")
        if args.format == "json":
            print(json.dumps(docs_result.to_dict(), indent=2, sort_keys=True))
        else:
            print(format_doccheck(docs_result))
        return 0 if docs_result.ok else 1
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"error: no such path: {', '.join(missing)}")

    run_flow = args.flow or bool(args.callgraph_out)
    run_perf = args.perf or args.validate
    changed: Optional[List[str]] = None
    if args.diff is not None:
        changed = _restrict_to_changed(args.paths, args.diff)

    lint_targets = args.paths if changed is None else changed
    result = lint_paths(lint_targets)

    flow = None
    if run_flow:
        from repro.analysis.flow import analyze_flow
        from repro.analysis.lint import Finding, LintResult

        # the graph always spans the full requested tree — a --diff run
        # narrows which findings are *reported*, not what is analyzed
        flow = analyze_flow(args.paths)
        flow_findings: List[Finding] = flow.findings
        if changed is not None:
            keep = {str(Path(c).resolve()) for c in changed}
            flow_findings = [f for f in flow_findings
                            if str(Path(f.path).resolve()) in keep]
        merged = sorted(result.findings + flow_findings,
                        key=lambda f: (f.path, f.line, f.col, f.rule))
        result = LintResult(findings=merged,
                            files_scanned=result.files_scanned,
                            suppressed=result.suppressed + flow.suppressed,
                            declared_suppressions=result.declared_suppressions,
                            used_suppressions=result.used_suppressions)
        if args.callgraph_out:
            Path(args.callgraph_out).parent.mkdir(parents=True, exist_ok=True)
            with open(args.callgraph_out, "w", encoding="utf-8") as fp:
                flow.graph.write_json(fp, sim_seeds=flow.sim_seeds,
                                      sim_reachable=flow.sim_reachable)

    perf = None
    if run_perf:
        from repro.analysis.lint import Finding, LintResult
        from repro.analysis.perfcheck import (
            analyze_perf,
            validate_against_profile,
        )

        # like --flow, the hot set spans the full requested tree; --diff
        # narrows which findings are reported, not what is analyzed
        perf = analyze_perf(args.paths)
        if args.validate:
            print("perf: running the steady bench scenario for dynamic "
                  "attribution...", file=sys.stderr)
            validate_against_profile(perf)
        perf_findings: List[Finding] = perf.findings
        if changed is not None:
            keep = {str(Path(c).resolve()) for c in changed}
            perf_findings = [f for f in perf_findings
                             if str(Path(f.path).resolve()) in keep]
        merged = sorted(result.findings + perf_findings,
                        key=lambda f: (f.path, f.line, f.col, f.rule))
        result = LintResult(findings=merged,
                            files_scanned=result.files_scanned,
                            suppressed=result.suppressed + perf.suppressed,
                            declared_suppressions=result.declared_suppressions,
                            used_suppressions=result.used_suppressions)

    from repro.analysis.lint import LintResult, audit_suppressions

    used = {path: dict(by_line)
            for path, by_line in result.used_suppressions.items()}
    for extra in (flow, perf):
        if extra is None:
            continue
        for path, by_line in extra.used_suppressions.items():
            dst = used.setdefault(path, {})
            for line, ids in by_line.items():
                dst[line] = dst.get(line, set()) | ids
    audit = audit_suppressions(result.declared_suppressions, used,
                               flow_ran=run_flow, perf_ran=run_perf)
    if changed is not None:
        keep = {str(Path(c).resolve()) for c in changed}
        audit = [f for f in audit if str(Path(f.path).resolve()) in keep]
    if audit:
        merged = sorted(result.findings + audit,
                        key=lambda f: (f.path, f.line, f.col, f.rule))
        result = LintResult(findings=merged,
                            files_scanned=result.files_scanned,
                            suppressed=result.suppressed,
                            declared_suppressions=result.declared_suppressions,
                            used_suppressions=result.used_suppressions)

    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fp:
            write_json(result, fp, flow=flow, perf=perf)
    if args.format == "json":
        print(json.dumps(render_json(result, flow=flow, perf=perf), indent=2,
                         sort_keys=True))
    else:
        print(render_text(result, verbose=args.verbose, flow=flow, perf=perf))
    failed = bool(result.errors) or (args.strict and result.warnings)
    return 1 if failed else 0


def cmd_sanitize(args) -> int:
    from repro.analysis.sanitize import format_sanitize, run_sanitize

    try:
        result = run_sanitize(
            version_name=args.version,
            fault=args.fault,
            seed=args.seed,
            hash_seeds=tuple(args.hash_seeds),
            quick=not args.full,
            smoke=args.smoke,
        )
    except (RuntimeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_sanitize(result))
    return 0 if result.ok else 1


def cmd_racecheck(args) -> int:
    from repro.analysis.racecheck import format_racecheck, run_racecheck

    try:
        result = run_racecheck(
            version_name=args.version,
            fault=args.fault,
            seed=args.seed,
            tiebreak_seeds=tuple(args.tiebreak_seeds),
            quick=not args.full,
            smoke=args.smoke,
            paths=tuple(args.paths),
            static=not args.no_static,
            dynamic=not args.no_dynamic,
        )
    except (RuntimeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(result.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_racecheck(result))
    return 0 if result.ok else 1


def cmd_digest(args) -> int:
    from repro.analysis.sanitize import campaign_fingerprint

    _version(args.version)  # alias-aware existence check
    doc = campaign_fingerprint(args.version, args.fault, seed=args.seed,
                               quick=getattr(args, "quick", False),
                               smoke=args.smoke,
                               tiebreak_seed=args.tiebreak_seed)
    print(json.dumps(doc, sort_keys=True))
    return 0


def cmd_validate(args) -> int:
    from repro.core.validation import validate_model

    result = validate_model(args.version, horizon=args.horizon)
    print(f"version {result.version}: predicted availability "
          f"{result.predicted_availability:.5f}, measured "
          f"{result.measured_availability:.5f} "
          f"({result.faults_injected} random faults over {result.horizon:.0f}s)")
    print(f"measured/predicted unavailability ratio: {result.ratio:.2f}")
    return 0


def cmd_reproduce_all(args) -> int:
    from repro.artifacts import format_manifest, reproduce_all

    try:
        manifest = reproduce_all(
            only=args.only,
            quick=getattr(args, "quick", False),
            jobs=args.jobs,
            check=args.check,
            out_dir=args.out_dir,
            manifest_path=args.manifest,
            progress=lambda msg: print(msg, file=sys.stderr, flush=True),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_manifest(manifest))
    return 0 if manifest.ok else 1


def _add_common(p: argparse.ArgumentParser, json_flag: bool = False) -> None:
    # --quick is also accepted after the subcommand; SUPPRESS keeps the
    # subparser from clobbering a top-level `--quick` with a False default.
    p.add_argument("--quick", action="store_true", default=argparse.SUPPRESS,
                   help="shorter experiment windows")
    if json_flag:
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC'03 cluster-service availability reproduction",
    )
    parser.add_argument("--quick", action="store_true",
                        help="shorter experiment windows")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("versions", help="list system versions")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_versions)

    p = sub.add_parser("quantify", help="run the methodology for versions")
    p.add_argument("versions", nargs="+", metavar="VERSION")
    p.add_argument("--stages", action="store_true",
                   help="per-fault 7-stage drill-down in the report")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan campaign cells out over N worker processes "
                        "(results are byte-identical to --jobs 1)")
    p.add_argument("--retries", type=int, default=0,
                   help="re-executions allowed per crashed/failed cell")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_quantify)

    p = sub.add_parser("sweep",
                       help="vary one profile knob; tabulate availability")
    p.add_argument("version")
    p.add_argument("knob", choices=sorted(SWEEP_KNOBS),
                   help="; ".join(f"{k}: {h}"
                                  for k, (h, _) in sorted(SWEEP_KNOBS.items())))
    p.add_argument("values", nargs="+", type=float, metavar="VALUE")
    p.add_argument("--jobs", type=int, default=1,
                   help="measure sweep points on N worker processes")
    p.add_argument("--seed", type=int, default=0, help="master RNG seed")
    p.add_argument("--full", action="store_true",
                   help="full-length campaign windows (default: quick)")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("inject", help="one single-fault experiment")
    p.add_argument("version")
    p.add_argument("fault", choices=[k.value for k in FaultKind])
    p.add_argument("--target", default=None)
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_inject)

    p = sub.add_parser("trace",
                       help="one single-fault experiment; emit the "
                            "structured telemetry trace")
    p.add_argument("version")
    p.add_argument("fault", choices=[k.value for k in FaultKind])
    p.add_argument("--target", default=None)
    p.add_argument("--format", choices=("jsonl", "csv"), default="jsonl")
    p.add_argument("--out", default=None,
                   help="write events to this file instead of stdout")
    p.add_argument("--kind", action="append", default=[],
                   help="only events of this kind (repeatable)")
    p.add_argument("--component", action="append", default=[],
                   help="only events from this source component (repeatable)")
    p.add_argument("--limit", type=int, default=None,
                   help="stop after this many matching events")
    _add_common(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("spans",
                       help="one single-fault experiment under causal "
                            "request tracing: waterfalls, critical paths, "
                            "tail-latency blame")
    p.add_argument("version")
    p.add_argument("fault", choices=[k.value for k in FaultKind])
    p.add_argument("--target", default=None)
    p.add_argument("--waterfall", type=int, default=None, metavar="REQ",
                   help="render request REQ's span tree as an ASCII "
                        "waterfall")
    p.add_argument("--critical-path", type=int, default=None, metavar="REQ",
                   help="request REQ's critical path with per-hop "
                        "latency attribution")
    p.add_argument("--blame", action="store_true",
                   help="tail-latency blame report per fault phase "
                        "(the default mode)")
    p.add_argument("--percentile", type=float, default=99.0,
                   help="tail percentile for --blame (default 99)")
    p.add_argument("--top", type=int, default=5,
                   help="signature groups per phase in --blame")
    p.add_argument("--sample", type=float, default=1.0,
                   help="head-sampling fraction (deterministic in req_id)")
    p.add_argument("--span-seed", type=int, default=0,
                   help="sampling seed (varies which requests are kept)")
    p.add_argument("--max-requests", type=int, default=None,
                   help="ring-buffer retention: keep at most this many "
                        "newest request trees")
    p.add_argument("--kind", action="append", default=[],
                   help="--out filter: only spans of this category "
                        "(repeatable)")
    p.add_argument("--component", action="append", default=[],
                   help="--out filter: only spans from this node "
                        "(repeatable)")
    p.add_argument("--limit", type=int, default=None,
                   help="--out filter: cap exported spans")
    p.add_argument("--out", default=None,
                   help="also export the (filtered) spans as JSONL "
                        "trace events")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_spans)

    p = sub.add_parser("metrics",
                       help="fault-free run; dump the metrics registry")
    p.add_argument("version")
    p.add_argument("--until", type=float, default=None,
                   help="simulated seconds to run (default: warmup+window)")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("profile",
                       help="fault-free run with kernel profiling")
    p.add_argument("version")
    p.add_argument("--until", type=float, default=None,
                   help="simulated seconds to run (default: warmup+window)")
    p.add_argument("--top", type=int, default=15,
                   help="entries per ranking (text and --json)")
    p.add_argument("--time", action="store_true",
                   help="wall-time attribution per event kind / process "
                        "type / subsystem (TimingProfiler)")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("bench",
                       help="kernel benchmark harness: events/sec, "
                            "obs-overhead ratios, time attribution, "
                            "trend ledger")
    p.add_argument("--scenario", action="append", default=[],
                   metavar="NAME",
                   help="scenario to run (repeatable; default: all); "
                        "with --trend, the scenario to render")
    p.add_argument("--gate", action="store_true",
                   help="compare against the committed baseline; exit 1 "
                        "on >20%% events/sec regression or digest "
                        "divergence")
    p.add_argument("--baseline", default="benchmarks/BENCH_kernel.json",
                   help="baseline document for --gate")
    p.add_argument("--trend", action="store_true",
                   help="render the trend ledger and exit (no run)")
    p.add_argument("--trend-file", default="benchmarks/TREND.jsonl",
                   help="trajectory ledger path")
    p.add_argument("--no-trend-append", action="store_true",
                   help="do not append this run to the trend ledger")
    p.add_argument("--out", default=None,
                   help="also write the full JSON report to this file")
    p.add_argument("--top", type=int, default=10,
                   help="entries per attribution ranking")
    p.add_argument("--no-attribution", action="store_true",
                   help="skip the time-attribution pass")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("record",
                       help="one single-fault experiment captured as a "
                            "replayable flight-recorder artifact")
    p.add_argument("version")
    p.add_argument("fault", choices=[k.value for k in FaultKind])
    p.add_argument("--target", default=None)
    p.add_argument("--seed", type=int, default=None,
                   help="master RNG seed (default: config seed)")
    p.add_argument("--out", default=None,
                   help="artifact path (default: "
                        "results/records/<version>-<fault>.json)")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("budget",
                       help="unavailability error budget from recorded "
                            "flights, with stage drill-down")
    p.add_argument("records", nargs="+", metavar="RECORD",
                   help="flight-recorder artifacts (one version)")
    p.add_argument("--objective", type=float, default=0.999,
                   help="availability objective (default 0.999)")
    p.add_argument("--operator-response", type=float, default=1800.0,
                   help="stage-E duration assumption (seconds)")
    p.add_argument("--reset-duration", type=float, default=10.0,
                   help="stage-F duration assumption (seconds)")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_budget)

    p = sub.add_parser("timeline",
                       help="ASCII throughput/stage timeline of a "
                            "recorded flight")
    p.add_argument("record", metavar="RECORD")
    p.add_argument("--bucket", type=float, default=5.0,
                   help="chart bucket width in seconds")
    p.add_argument("--width", type=int, default=40,
                   help="bar width in characters")
    _add_common(p)
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("figure", help="regenerate a paper figure/table")
    p.add_argument("name")
    _add_common(p)
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser("validate", help="empirical model validation")
    p.add_argument("version")
    p.add_argument("--horizon", type=float, default=7200.0)
    _add_common(p)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("lint",
                       help="repo-native static analysis "
                            "(reprolint rules REP001..REP021)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--out", default=None,
                   help="also write the JSON report to this file")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail the gate")
    p.add_argument("--verbose", action="store_true",
                   help="append each finding's rationale")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.add_argument("--flow", action="store_true",
                   help="whole-program pass: call-graph sim-scope "
                        "propagation, protocol consistency (REP008-010), "
                        "lost generators (REP011-012)")
    p.add_argument("--callgraph-out", default=None, metavar="FILE",
                   help="write the call graph as JSON (implies --flow)")
    p.add_argument("--perf", action="store_true",
                   help="hot-path cost analysis: kernel hot set + "
                        "REP017-021 (allocation, __slots__, telemetry "
                        "formatting, attribute reloads, linear scans)")
    p.add_argument("--validate", action="store_true",
                   help="cross-check the static hot set against dynamic "
                        "TimingProfiler attribution (runs the steady "
                        "bench scenario; implies --perf)")
    p.add_argument("--diff", default=None, metavar="GIT_REF",
                   help="only report findings in files changed since "
                        "GIT_REF (fast pre-commit mode)")
    p.add_argument("--docs", action="store_true",
                   help="standalone docs cross-reference pass: every "
                        "path, CLI subcommand, make target, BENCH_* "
                        "document, and rule id referenced in README.md/"
                        "ARTIFACTS.md/docs/*.md must exist")
    p.add_argument("--docs-root", default=".", metavar="DIR",
                   help="repo root the docs corpus is resolved against "
                        "(default: .)")
    _add_common(p)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("sanitize",
                       help="runtime determinism check: same campaign, "
                            "two PYTHONHASHSEED values, digests must match")
    p.add_argument("--version", default="coop", dest="version",
                   help="system version to run (default: coop)")
    p.add_argument("--fault", default="node_crash",
                   choices=[k.value for k in FaultKind])
    p.add_argument("--seed", type=int, default=0, help="master RNG seed")
    p.add_argument("--hash-seeds", type=int, nargs=2, default=[101, 202],
                   metavar=("A", "B"),
                   help="the two PYTHONHASHSEED values (must differ)")
    p.add_argument("--smoke", action="store_true",
                   help="short fixed scenario instead of a full campaign")
    p.add_argument("--full", action="store_true",
                   help="full-length campaign windows (default: quick)")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_sanitize)

    p = sub.add_parser("digest",
                       help="fingerprint one run (chained trace-event "
                            "digests; the sanitize worker)")
    p.add_argument("version")
    p.add_argument("fault", nargs="?", default="node_crash",
                   choices=[k.value for k in FaultKind])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="short fixed scenario instead of a full campaign")
    p.add_argument("--tiebreak-seed", type=int, default=None,
                   help="perturb same-instant event order with this seed "
                        "(the racecheck sanitizer's knob)")
    _add_common(p)
    p.set_defaults(fn=cmd_digest)

    p = sub.add_parser("racecheck",
                       help="race detector: static shared-state effect "
                            "analysis + schedule-perturbation sanitizer")
    p.add_argument("--version", default="coop", dest="version",
                   help="system version to run (default: coop)")
    p.add_argument("--fault", default="node_crash",
                   choices=[k.value for k in FaultKind])
    p.add_argument("--seed", type=int, default=0, help="master RNG seed")
    p.add_argument("--tiebreak-seeds", type=int, nargs="+", default=[1, 2],
                   metavar="S",
                   help="tie-break seeds for the perturbed runs "
                        "(default: 1 2)")
    p.add_argument("--paths", nargs="+", default=["src/repro"],
                   help="tree the static tier analyzes "
                        "(default: src/repro)")
    p.add_argument("--smoke", action="store_true",
                   help="short fixed scenario instead of a full campaign")
    p.add_argument("--full", action="store_true",
                   help="full-length campaign windows (default: quick)")
    p.add_argument("--no-static", action="store_true",
                   help="skip the static effect-analysis tier")
    p.add_argument("--no-dynamic", action="store_true",
                   help="skip the schedule-perturbation runs")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON race report to PATH")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_racecheck)

    p = sub.add_parser("sensitivity",
                       help="rank what-if levers; optionally search a path "
                            "to a target availability")
    p.add_argument("version")
    p.add_argument("--target", type=float, default=None,
                   help="e.g. 0.99999 for five nines")
    _add_common(p)
    p.set_defaults(fn=cmd_sensitivity)

    p = sub.add_parser(
        "reproduce-all",
        help="regenerate every registered artifact (figures, BENCH_* "
             "documents, analysis reports) with a SHA-256 + provenance "
             "manifest; see ARTIFACTS.md")
    p.add_argument("--only", default=None, metavar="GLOB",
                   help="restrict to artifacts whose name matches GLOB "
                        "(fnmatch, e.g. 'fig*' or 'bench-*')")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan campaign cells out over N worker processes "
                        "(results are byte-identical to --jobs 1)")
    p.add_argument("--check", action="store_true",
                   help="diff regenerated artifacts against their "
                        "committed baselines; drift fails the run")
    p.add_argument("--out-dir", default="results/reproduce", metavar="DIR",
                   help="directory regenerated artifacts are written to")
    p.add_argument("--manifest", default="results/MANIFEST.json",
                   metavar="FILE",
                   help="where to write the provenance manifest")
    _add_common(p, json_flag=True)
    p.set_defaults(fn=cmd_reproduce_all)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
