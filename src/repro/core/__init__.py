"""The paper's primary contribution: the availability quantification core.

Two-phase methodology (Section 2):

* **Phase 1** — :mod:`repro.core.template`: fit the measured throughput
  timeline of a single-fault injection experiment to the 7-stage
  piece-wise-linear template (stages A-G).
* **Phase 2** — :mod:`repro.core.model`: combine the per-fault templates
  with an expected fault load (MTTF/MTTR per component, Table 1) into
  expected average throughput (AT) and availability (AA).

Plus :mod:`repro.core.scaling` (Section 6.3's rules for extrapolating
4-node measurements to larger clusters), :mod:`repro.core.quantify`
(end-to-end pipeline: build world -> campaign -> fit -> model), and
:mod:`repro.core.report` (tabular output).
"""

from repro.core.template import Stage, SevenStageTemplate, TemplateFitter, FitConfig
from repro.core.model import (
    AvailabilityModel,
    EnvironmentParams,
    ModelResult,
    FaultContribution,
)
from repro.core.scaling import ScalingRules, scale_template
from repro.core.quantify import (
    quantify_version,
    run_single_fault,
    measure_fault_free,
    VersionAvailability,
    QuantifyConfig,
)
from repro.core.report import format_model_result, format_comparison
from repro.core.validation import (
    ValidationResult,
    validate_model,
    validation_catalog,
)
from repro.core.sensitivity import (
    Improvement,
    SensitivityAnalysis,
    format_levers,
)

__all__ = [
    "Stage",
    "SevenStageTemplate",
    "TemplateFitter",
    "FitConfig",
    "AvailabilityModel",
    "EnvironmentParams",
    "ModelResult",
    "FaultContribution",
    "ScalingRules",
    "scale_template",
    "quantify_version",
    "run_single_fault",
    "measure_fault_free",
    "VersionAvailability",
    "QuantifyConfig",
    "format_model_result",
    "format_comparison",
    "ValidationResult",
    "validate_model",
    "validation_catalog",
    "Improvement",
    "SensitivityAnalysis",
    "format_levers",
]
