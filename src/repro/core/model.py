"""Phase 2: the analytic performability model (Section 2).

With ``T`` the normal-operation throughput, and for each fault type ``i``
(with ``n_i`` components of mean time to failure ``MTTF_i``) a fitted
template with stage durations ``d_s,i`` and throughputs ``T_s,i``::

    f_i = n_i * (sum_s d_s,i) / MTTF_i          (fraction of time in fault i)
    AT  = (1 - sum_i f_i) * T
          + sum_i f_i * (sum_s d_s,i * T_s,i) / (sum_s d_s,i)
    AA  = AT / lambda                            (lambda = offered load)

following the paper's equations (including the footnote that the
denominator of ``f_i`` is correctly MTTF, not MTTF plus the fault
duration).  The model assumes single, uncorrelated, queued faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.template import SevenStageTemplate
from repro.faults.faultload import FaultCatalog
from repro.faults.types import FAULT_LABELS, FaultKind


@dataclass(frozen=True)
class EnvironmentParams:
    """Supplied environmental values for the non-measured stage durations.

    ``operator_response`` is the time a degraded-but-up configuration
    (e.g. a splintered cluster) persists before an operator notices and
    resets the service — the paper treats it as a supplied parameter; we
    default to 30 minutes of human response time.
    """

    operator_response: float = 1800.0  # time until an operator resets (stage E)
    reset_duration: float = 10.0  # service restart time (stage F)

    def __post_init__(self) -> None:
        if self.operator_response < 0 or self.reset_duration < 0:
            raise ValueError("environment durations must be non-negative")


@dataclass(frozen=True)
class FaultContribution:
    """One fault class's share of the expected unavailability."""

    kind: FaultKind
    count: int
    mttf: float
    fault_fraction: float  # f_i
    degraded_tput: float  # average throughput while in this fault
    unavailability: float  # contribution to 1 - AA
    template: SevenStageTemplate

    @property
    def label(self) -> str:
        return FAULT_LABELS.get(self.kind, self.kind.value)


@dataclass(frozen=True)
class ModelResult:
    """Expected average throughput and availability for one version."""

    version: str
    normal_tput: float
    offered_rate: float
    average_throughput: float  # AT
    availability: float  # AA
    contributions: List[FaultContribution] = field(default_factory=list)
    baseline_unavailability: float = 0.0

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability

    def contribution(self, kind: FaultKind) -> Optional[FaultContribution]:
        for c in self.contributions:
            if c.kind is kind:
                return c
        return None

    def by_kind(self) -> Dict[FaultKind, float]:
        return {c.kind: c.unavailability for c in self.contributions}


class AvailabilityModel:
    """Combines fitted templates with a fault catalog."""

    def __init__(
        self,
        catalog: FaultCatalog,
        environment: EnvironmentParams = EnvironmentParams(),
    ):
        self.catalog = catalog
        self.environment = environment

    def evaluate(
        self,
        templates: Mapping[FaultKind, SevenStageTemplate],
        normal_tput: float,
        offered_rate: float,
        version: str = "",
        assume_unsaturated: bool = True,
    ) -> ModelResult:
        """Compute AT and AA.

        ``templates`` must cover every fault kind present in the catalog
        that the deployment can experience; kinds missing from the
        catalog are ignored.

        ``assume_unsaturated`` applies the paper's stated assumption that
        the server is not saturated under normal operation, i.e. the
        fault-free system serves the entire offered load (T = lambda).
        Without it, Poisson sampling noise in the measured normal
        throughput (~1% for our window sizes) would swamp the
        fault-induced unavailability the methodology is after.  The
        measured fault-free level is still reported via
        ``baseline_unavailability``.
        """
        if offered_rate <= 0:
            raise ValueError("offered_rate must be positive")
        measured_normal = min(normal_tput, offered_rate)
        normal_tput = offered_rate if assume_unsaturated else measured_normal
        env = self.environment
        total_fault_fraction = 0.0
        fault_throughput = 0.0  # sum_i f_i * avg_i
        contributions: List[FaultContribution] = []

        for rate in self.catalog:
            template = templates.get(rate.kind)
            if template is None:
                continue
            resolved = template.resolved(
                mttr=rate.mttr,
                operator_response=env.operator_response,
                reset_duration=env.reset_duration,
            )
            duration = resolved.total_duration
            if duration <= 0:
                continue
            f_i = rate.count * duration / rate.mttf
            avg_tput = resolved.served_during_fault() / duration
            total_fault_fraction += f_i
            fault_throughput += f_i * avg_tput
            # Unavailability attributable to this fault class: requests
            # offered while degraded that are not served (relative to the
            # fault-free service level).
            u_i = f_i * max(normal_tput - avg_tput, 0.0) / offered_rate
            contributions.append(
                FaultContribution(
                    kind=rate.kind,
                    count=rate.count,
                    mttf=rate.mttf,
                    fault_fraction=f_i,
                    degraded_tput=avg_tput,
                    unavailability=u_i,
                    template=resolved,
                )
            )

        if total_fault_fraction >= 1.0:
            raise ValueError(
                f"fault fractions sum to {total_fault_fraction:.3f} >= 1; "
                "the single-fault-at-a-time model does not apply"
            )

        at = (1.0 - total_fault_fraction) * normal_tput + fault_throughput
        aa = min(at / offered_rate, 1.0)
        baseline_u = (1.0 - total_fault_fraction) * max(
            offered_rate - measured_normal, 0.0
        ) / offered_rate
        contributions.sort(key=lambda c: c.unavailability, reverse=True)
        return ModelResult(
            version=version,
            normal_tput=normal_tput,
            offered_rate=offered_rate,
            average_throughput=at,
            availability=aa,
            contributions=contributions,
            baseline_unavailability=baseline_u,
        )
