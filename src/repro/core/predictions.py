"""Analytical prediction of HA-technique impact from COOP measurements.

Figure 7 of the paper pairs two bars per version: unavailability *modeled
from the base (COOP) fault-injection measurements* and unavailability
modeled from measurements of the fully implemented version.  Figure 1(b)
similarly extrapolates the impact of hardware and software before any of
it was built.

This module implements the left bars: rule-based surgery on COOP's
fitted templates describing what each technique is *designed* to do:

* **front-end + extra node** — after detection, a down node's share is
  re-routed, so post-detection stages lose their single-node deficit for
  node-level faults Mon can see (crash, freeze);
* **membership** — nodes unreachable or down are excluded within the
  membership detection time and *re-integrated* on recovery: stage E-G
  (operator reset) disappear for link/crash/freeze; blind to SCSI and
  application hangs, whose whole-MTTR stall it cannot shorten;
* **queue monitoring** — a stalled peer is excluded within seconds
  (stage A shrinks to the queue-trip time) for every fault that stops a
  peer from draining its queues, but recovered nodes are not re-admitted
  (stages E-G remain);
* **FME** — SCSI faults and application hangs are converted to node/app
  crash-restarts: their templates are *replaced* by the measured crash
  templates (with FME's detection latency for stage A).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping

from repro.core.template import SevenStageTemplate
from repro.experiments.configs import VersionSpec
from repro.faults.types import FaultKind

#: faults visible to ping-based node monitoring (Mon) and to the
#: membership service's heartbeats
NODE_LEVEL = (FaultKind.NODE_CRASH, FaultKind.NODE_FREEZE, FaultKind.LINK_DOWN)
#: faults that stall a peer's queues (queue monitoring's detection surface)
QUEUE_VISIBLE = (
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.LINK_DOWN,
    FaultKind.SCSI_TIMEOUT,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
)

QMON_TRIP_TIME = 3.0  # seconds for a send queue to hit its threshold
MEMBERSHIP_DETECT = 16.0  # 3 lost heartbeats + a protocol round


def _with_stage(tpl: SevenStageTemplate, name: str, **changes) -> SevenStageTemplate:
    stages = dict(tpl.stages)
    stages[name] = replace(stages[name], **changes)
    return replace(tpl, stages=stages)


def _mask_degraded_stages(tpl: SevenStageTemplate) -> SevenStageTemplate:
    """Front-end masking: post-detection stages serve the full load."""
    out = tpl
    for name in ("C", "D", "E"):
        out = _with_stage(out, name, throughput=tpl.normal_tput)
    return out


def predict_templates(
    coop: Mapping[FaultKind, SevenStageTemplate],
    spec: VersionSpec,
) -> Dict[FaultKind, SevenStageTemplate]:
    """Predict a version's templates from COOP's measured ones."""
    out: Dict[FaultKind, SevenStageTemplate] = dict(coop)

    if spec.queue_monitoring:
        for kind in QUEUE_VISIBLE:
            if kind in out:
                tpl = out[kind]
                # Detection now takes the queue-trip time; the cluster no
                # longer stalls at ~0 while waiting for heartbeats.
                out[kind] = _with_stage(tpl, "A", duration=min(
                    QMON_TRIP_TIME, tpl.stage("A").duration))

    if spec.membership:
        for kind in NODE_LEVEL:
            if kind in out:
                tpl = out[kind]
                tpl = _with_stage(tpl, "A", duration=min(
                    MEMBERSHIP_DETECT, tpl.stage("A").duration))
                # Re-integration on recovery: no operator reset needed.
                out[kind] = replace(tpl, self_recovered=True)

    if spec.membership and spec.queue_monitoring:
        # Section 6.1 on MQ: "Because the system state view of each of the
        # techniques is combined into a single view, the result is that
        # the system can handle all errors" — no operator resets remain
        # for queue-visible faults (only the leave/re-enter oscillation,
        # which stays in the measured degraded levels).
        for kind in QUEUE_VISIBLE:
            if kind in out:
                out[kind] = replace(out[kind], self_recovered=True)

    if spec.fme:
        # SCSI -> node-crash semantics; app hang -> app-crash-restart.
        if FaultKind.SCSI_TIMEOUT in out and FaultKind.NODE_CRASH in out:
            out[FaultKind.SCSI_TIMEOUT] = out[FaultKind.NODE_CRASH]
        if FaultKind.APP_HANG in out and FaultKind.APP_CRASH in out:
            out[FaultKind.APP_HANG] = out[FaultKind.APP_CRASH]

    if spec.frontend and spec.extra_node:
        for kind in NODE_LEVEL:
            if kind in out:
                out[kind] = _mask_degraded_stages(out[kind])
        if spec.fme and FaultKind.SCSI_TIMEOUT in out:
            out[FaultKind.SCSI_TIMEOUT] = _mask_degraded_stages(
                out[FaultKind.SCSI_TIMEOUT])

    return out
