"""End-to-end quantification pipeline: build -> inject -> fit -> model.

``quantify_version`` is the whole methodology for one system version:
for every injectable fault kind it builds a fresh deployment, runs a
single-fault campaign (phase 1), fits the 7-stage template, and finally
evaluates the analytic model (phase 2) against the version's fault
catalog.  This is what the figure-reproduction entry points call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.model import AvailabilityModel, EnvironmentParams, ModelResult
from repro.core.template import FitConfig, SevenStageTemplate, TemplateFitter
from repro.experiments.configs import VersionSpec, version as version_by_name
from repro.experiments.profiles import SMALL, ScaleProfile
from repro.experiments.runner import build_world
from repro.faults.campaign import CampaignConfig, ExperimentTrace, SingleFaultCampaign
from repro.faults.types import FaultKind


def _default_campaign() -> CampaignConfig:
    # Warm-up must cover the client ramp plus cache fill; the fault stays
    # active long enough for stage C to stabilize even with slow (25 s)
    # heartbeat+queue detection paths.
    return CampaignConfig(
        warmup=90.0,
        normal_window=20.0,
        fault_active=90.0,
        post_repair_observe=100.0,
        reset_duration=10.0,
        post_reset_observe=60.0,
    )


def _quick_campaign() -> CampaignConfig:
    return CampaignConfig(
        warmup=75.0,
        normal_window=15.0,
        fault_active=60.0,
        post_repair_observe=75.0,
        reset_duration=10.0,
        post_reset_observe=40.0,
    )


@dataclass(frozen=True)
class QuantifyConfig:
    """Everything the pipeline needs besides the version spec."""

    profile: ScaleProfile = SMALL
    seed: int = 0
    campaign: CampaignConfig = field(default_factory=_default_campaign)
    environment: EnvironmentParams = field(default_factory=EnvironmentParams)
    fit: FitConfig = field(default_factory=FitConfig)
    kinds: Optional[tuple] = None  # default: all injectable

    def __post_init__(self) -> None:
        # Mirrors RngRegistry: a negative master seed must fail at
        # configuration time, not deep inside a campaign.
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    @classmethod
    def quick(cls, **overrides) -> "QuantifyConfig":
        """Shorter experiment windows (tests / smoke benches)."""
        return cls(campaign=_quick_campaign(), **overrides)

    @classmethod
    def from_env(cls) -> "QuantifyConfig":
        """Full-length runs unless REPRO_QUICK is set."""
        if os.environ.get("REPRO_QUICK"):
            return cls.quick()
        return cls()


@dataclass
class VersionAvailability:
    """Quantification output for one system version."""

    spec: VersionSpec
    result: ModelResult
    templates: Dict[FaultKind, SevenStageTemplate]
    traces: Dict[FaultKind, ExperimentTrace]
    normal_tput: float
    offered_rate: float
    #: flight records per fault kind (populated by ``keep_records=True``)
    records: Dict[FaultKind, "FlightRecord"] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        return self.result.availability

    @property
    def unavailability(self) -> float:
        return self.result.unavailability

    def stage_budget(self, objective: float = 0.999,
                     environment: Optional[EnvironmentParams] = None):
        """Roll the fitted templates into an unavailability error budget
        with stage-level drill-down (see :mod:`repro.obs.budget`)."""
        from repro.faults.faultload import table1_catalog
        from repro.obs.budget import build_budget

        catalog = self.spec.transform_catalog(table1_catalog(
            n_nodes=self.spec.server_count,
            disks_per_node=2,
            with_frontend=self.spec.frontend,
        ))
        return build_budget(
            self.templates,
            catalog,
            offered_rate=self.offered_rate,
            version=self.spec.name,
            environment=environment or EnvironmentParams(),
            objective=objective,
        )


def measure_fault_free(
    spec: VersionSpec,
    config: QuantifyConfig = QuantifyConfig(),
) -> Dict[str, float]:
    """Fault-free throughput/availability (Figure 1a's throughput bars)."""
    world = build_world(spec, config.profile, seed=config.seed)
    cfg = config.campaign
    world.env.run(until=cfg.warmup + cfg.normal_window)
    win = world.stats.window(cfg.warmup, cfg.warmup + cfg.normal_window)
    return {
        "throughput": win["success_rate"],
        "offered": world.offered_rate,
        "availability": win["availability"],
    }


def run_single_fault(
    spec: VersionSpec,
    kind: FaultKind,
    config: QuantifyConfig = QuantifyConfig(),
    target: Optional[str] = None,
    telemetry=None,
):
    """One phase-1 experiment; returns (trace, world).

    ``telemetry`` is handed to :func:`build_world` — pass an enabled
    :class:`~repro.obs.telemetry.Telemetry` to capture the structured
    trace and metrics of the run (the ``repro trace`` command does).
    """
    world = build_world(spec, config.profile, seed=config.seed,
                        telemetry=telemetry)
    world.reset_downtime = config.campaign.reset_duration
    campaign = SingleFaultCampaign(world, config.campaign)
    trace = campaign.run(kind, target or world.default_target(kind))
    trace.version = spec.name
    return trace, world


def quantify_version(
    spec: Union[str, VersionSpec],
    config: QuantifyConfig = QuantifyConfig(),
    keep_records: bool = False,
) -> VersionAvailability:
    """Run the full two-phase methodology for one version.

    With ``keep_records=True`` every phase-1 experiment is additionally
    captured as a replayable :class:`~repro.obs.recorder.FlightRecord`
    (returned in ``VersionAvailability.records``), so the campaign can be
    re-analyzed offline without re-simulating.
    """
    if isinstance(spec, str):
        spec = version_by_name(spec)
    fitter = TemplateFitter(config.fit)

    # Which kinds exist in this deployment (throwaway world for the query).
    probe_world = build_world(spec, config.profile, seed=config.seed)
    kinds = config.kinds or probe_world.injectable_kinds()
    catalog = probe_world.catalog

    templates: Dict[FaultKind, SevenStageTemplate] = {}
    traces: Dict[FaultKind, ExperimentTrace] = {}
    records: Dict[FaultKind, "FlightRecord"] = {}
    normals: List[float] = []
    offered = probe_world.offered_rate
    for kind in list(kinds):
        trace, world = run_single_fault(spec, kind, config)
        templates[kind] = fitter.fit(trace)
        traces[kind] = trace
        normals.append(trace.normal_tput)
        if keep_records:
            from repro.obs.recorder import FlightRecord

            records[kind] = FlightRecord.from_experiment(
                trace,
                events=world.telemetry.tracer.events,
                seed=config.seed,
                profile=config.profile.name,
                target=world.default_target(kind),
            )

    normal = sum(normals) / len(normals) if normals else 0.0
    model = AvailabilityModel(catalog, config.environment)
    result = model.evaluate(templates, normal_tput=normal,
                            offered_rate=offered, version=spec.name)
    return VersionAvailability(
        spec=spec,
        result=result,
        templates=templates,
        traces=traces,
        normal_tput=normal,
        offered_rate=offered,
        records=records,
    )
