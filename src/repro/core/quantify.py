"""End-to-end quantification pipeline: build -> inject -> fit -> model.

``quantify_version`` is the whole methodology for one system version:
for every injectable fault kind it builds a fresh deployment, runs a
single-fault campaign (phase 1), fits the 7-stage template, and finally
evaluates the analytic model (phase 2) against the version's fault
catalog.  This is what the figure-reproduction entry points call.

The grid is embarrassingly parallel — phase-1 experiments are
independent by construction — so the pipeline also exposes a cell-level
API: :func:`campaign_cells` enumerates the (version, fault, seed) grid
as picklable :class:`~repro.faults.campaign.CampaignCell` specs,
:func:`run_cell` executes one cell into a JSON-safe document, and
:func:`quantify_from_cell_docs` merges documents back into a
:class:`VersionAvailability` in grid order.  ``quantify_version(...,
jobs=N)`` fans the cells out over a process pool
(:mod:`repro.parallel`) and merges deterministically: the result is
byte-identical to a serial run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.model import AvailabilityModel, EnvironmentParams, ModelResult
from repro.core.template import FitConfig, SevenStageTemplate, TemplateFitter
from repro.experiments.configs import VersionSpec, version as version_by_name
from repro.experiments.profiles import SMALL, ScaleProfile
from repro.experiments.runner import build_world
from repro.faults.campaign import (
    CampaignCell,
    CampaignConfig,
    ExperimentTrace,
    SingleFaultCampaign,
)
from repro.faults.types import FaultKind

#: schema of the JSON-safe cell document :func:`run_cell` produces
CELL_DOC_SCHEMA = 1


def _default_campaign() -> CampaignConfig:
    # Warm-up must cover the client ramp plus cache fill; the fault stays
    # active long enough for stage C to stabilize even with slow (25 s)
    # heartbeat+queue detection paths.
    return CampaignConfig(
        warmup=90.0,
        normal_window=20.0,
        fault_active=90.0,
        post_repair_observe=100.0,
        reset_duration=10.0,
        post_reset_observe=60.0,
    )


def _quick_campaign() -> CampaignConfig:
    return CampaignConfig(
        warmup=75.0,
        normal_window=15.0,
        fault_active=60.0,
        post_repair_observe=75.0,
        reset_duration=10.0,
        post_reset_observe=40.0,
    )


@dataclass(frozen=True)
class QuantifyConfig:
    """Everything the pipeline needs besides the version spec."""

    profile: ScaleProfile = SMALL
    seed: int = 0
    campaign: CampaignConfig = field(default_factory=_default_campaign)
    environment: EnvironmentParams = field(default_factory=EnvironmentParams)
    fit: FitConfig = field(default_factory=FitConfig)
    kinds: Optional[tuple] = None  # default: all injectable

    def __post_init__(self) -> None:
        # Mirrors RngRegistry: a negative master seed must fail at
        # configuration time, not deep inside a campaign.
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    @classmethod
    def quick(cls, **overrides) -> "QuantifyConfig":
        """Shorter experiment windows (tests / smoke benches)."""
        return cls(campaign=_quick_campaign(), **overrides)

    @classmethod
    def from_env(cls) -> "QuantifyConfig":
        """Full-length runs unless REPRO_QUICK is set."""
        if os.environ.get("REPRO_QUICK"):
            return cls.quick()
        return cls()


@dataclass
class VersionAvailability:
    """Quantification output for one system version."""

    spec: VersionSpec
    result: ModelResult
    templates: Dict[FaultKind, SevenStageTemplate]
    traces: Dict[FaultKind, ExperimentTrace]
    normal_tput: float
    offered_rate: float
    #: flight records per fault kind (populated by ``keep_records=True``)
    records: Dict[FaultKind, "FlightRecord"] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        return self.result.availability

    @property
    def unavailability(self) -> float:
        return self.result.unavailability

    def stage_budget(self, objective: float = 0.999,
                     environment: Optional[EnvironmentParams] = None):
        """Roll the fitted templates into an unavailability error budget
        with stage-level drill-down (see :mod:`repro.obs.budget`)."""
        from repro.faults.faultload import table1_catalog
        from repro.obs.budget import build_budget

        catalog = self.spec.transform_catalog(table1_catalog(
            n_nodes=self.spec.server_count,
            disks_per_node=2,
            with_frontend=self.spec.frontend,
        ))
        return build_budget(
            self.templates,
            catalog,
            offered_rate=self.offered_rate,
            version=self.spec.name,
            environment=environment or EnvironmentParams(),
            objective=objective,
        )


def measure_fault_free(
    spec: VersionSpec,
    config: QuantifyConfig = QuantifyConfig(),
) -> Dict[str, float]:
    """Fault-free throughput/availability (Figure 1a's throughput bars)."""
    world = build_world(spec, config.profile, seed=config.seed)
    cfg = config.campaign
    world.env.run(until=cfg.warmup + cfg.normal_window)
    win = world.stats.window(cfg.warmup, cfg.warmup + cfg.normal_window)
    return {
        "throughput": win["success_rate"],
        "offered": world.offered_rate,
        "availability": win["availability"],
    }


def run_single_fault(
    spec: VersionSpec,
    kind: FaultKind,
    config: QuantifyConfig = QuantifyConfig(),
    target: Optional[str] = None,
    telemetry=None,
    tiebreak_seed=None,
    monitor=None,
):
    """One phase-1 experiment; returns (trace, world).

    ``telemetry`` is handed to :func:`build_world` — pass an enabled
    :class:`~repro.obs.telemetry.Telemetry` to capture the structured
    trace and metrics of the run (the ``repro trace`` command does).
    ``tiebreak_seed`` and ``monitor`` are likewise passed through (the
    race detector's schedule-perturbation runs use both).
    """
    world = build_world(spec, config.profile, seed=config.seed,
                        telemetry=telemetry, tiebreak_seed=tiebreak_seed,
                        monitor=monitor)
    world.reset_downtime = config.campaign.reset_duration
    campaign = SingleFaultCampaign(world, config.campaign)
    trace = campaign.run(kind, target or world.default_target(kind))
    trace.version = spec.name
    return trace, world


def quantify_version(
    spec: Union[str, VersionSpec],
    config: QuantifyConfig = QuantifyConfig(),
    keep_records: bool = False,
    jobs: int = 1,
    retries: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> VersionAvailability:
    """Run the full two-phase methodology for one version.

    With ``keep_records=True`` every phase-1 experiment is additionally
    captured as a replayable :class:`~repro.obs.recorder.FlightRecord`
    (returned in ``VersionAvailability.records``), so the campaign can be
    re-analyzed offline without re-simulating.

    ``jobs > 1`` fans the per-fault campaign cells out over a spawn-based
    process pool (:mod:`repro.parallel`) and merges the results in grid
    order; the merged output is byte-identical to the serial run.
    ``retries`` re-executes cells whose worker raised or died;
    ``progress`` receives one line per completed cell.
    """
    if isinstance(spec, str):
        spec = version_by_name(spec)
    if jobs > 1:
        # Imported lazily: repro.parallel imports this module.
        from repro.parallel import run_campaign_cells

        cells = campaign_cells(spec, config)
        docs = run_campaign_cells(cells, config, jobs=jobs, retries=retries,
                                  progress=progress)
        return quantify_from_cell_docs(spec, config, docs,
                                       keep_records=keep_records)
    fitter = TemplateFitter(config.fit)

    # Which kinds exist in this deployment (throwaway world for the query).
    probe_world = build_world(spec, config.profile, seed=config.seed)
    kinds = config.kinds or probe_world.injectable_kinds()
    catalog = probe_world.catalog

    templates: Dict[FaultKind, SevenStageTemplate] = {}
    traces: Dict[FaultKind, ExperimentTrace] = {}
    records: Dict[FaultKind, "FlightRecord"] = {}
    normals: List[float] = []
    offered = probe_world.offered_rate
    for kind in list(kinds):
        trace, world = run_single_fault(spec, kind, config)
        templates[kind] = fitter.fit(trace)
        traces[kind] = trace
        normals.append(trace.normal_tput)
        if keep_records:
            from repro.obs.recorder import FlightRecord

            records[kind] = FlightRecord.from_experiment(
                trace,
                events=world.telemetry.tracer.events,
                seed=config.seed,
                profile=config.profile.name,
                target=world.default_target(kind),
            )

    normal = sum(normals) / len(normals) if normals else 0.0
    model = AvailabilityModel(catalog, config.environment)
    result = model.evaluate(templates, normal_tput=normal,
                            offered_rate=offered, version=spec.name)
    return VersionAvailability(
        spec=spec,
        result=result,
        templates=templates,
        traces=traces,
        normal_tput=normal,
        offered_rate=offered,
        records=records,
    )


# ---------------------------------------------------------------------------
# cell-level API (the unit of parallel fan-out)


def campaign_cells(
    spec: Union[str, VersionSpec],
    config: QuantifyConfig = QuantifyConfig(),
    start_index: int = 0,
) -> List[CampaignCell]:
    """Enumerate one version's phase-1 grid as picklable cell specs.

    Cell order matches the serial loop of :func:`quantify_version` (the
    deployment's injectable kinds, or ``config.kinds``), so merging cell
    results in index order reproduces the serial iteration exactly.
    ``start_index`` offsets the indices when several versions' cells are
    concatenated into one grid.
    """
    if isinstance(spec, str):
        spec = version_by_name(spec)
    probe_world = build_world(spec, config.profile, seed=config.seed)
    kinds = list(config.kinds or probe_world.injectable_kinds())
    return [
        CampaignCell(index=start_index + i, version=spec.name,
                     fault=kind.value, seed=config.seed)
        for i, kind in enumerate(kinds)
    ]


def run_cell(cell: CampaignCell, config: QuantifyConfig) -> Dict[str, Any]:
    """Execute one campaign cell and return a JSON-safe cell document.

    The document wraps a full :class:`~repro.obs.recorder.FlightRecord`
    dict — samples, markers, and structured trace events — so the parent
    process can re-fit the template, rebuild the trace, and keep the
    record without ever re-simulating.  This is the function the
    :mod:`repro.parallel` workers run; it is also the cell half of the
    serial≡parallel determinism contract (the record replay is lossless,
    so a merged parallel run fits the same templates as a serial one).
    """
    from repro.obs.recorder import FlightRecord
    from repro.obs.telemetry import Telemetry

    spec = version_by_name(cell.version)
    if cell.seed != config.seed:
        config = replace(config, seed=cell.seed)
    # REPRO_CELL_SPANS opts workers into causal tracing; the default-off
    # path keeps cell documents byte-identical to pre-span tooling, and
    # the digest is how the jobs=1 ≡ jobs=2 contract extends to spans.
    trace_spans = bool(os.environ.get("REPRO_CELL_SPANS"))
    telemetry = Telemetry(trace_spans=trace_spans)
    trace, world = run_single_fault(spec, cell.kind, config,
                                    target=cell.target, telemetry=telemetry)
    record = FlightRecord.from_experiment(
        trace,
        events=telemetry.tracer.events,
        seed=config.seed,
        profile=config.profile.name,
        target=cell.target or world.default_target(cell.kind),
    )
    doc = {
        "schema": CELL_DOC_SCHEMA,
        "cell": cell.to_dict(),
        "record": record.to_dict(),
    }
    if trace_spans:
        from repro.obs.spans import spans_digest

        doc["spans_digest"] = spans_digest(telemetry.spans.spans())
        doc["n_spans"] = len(telemetry.spans)
    return doc


def quantify_from_cell_docs(
    spec: Union[str, VersionSpec],
    config: QuantifyConfig,
    docs: Sequence[Dict[str, Any]],
    keep_records: bool = False,
) -> VersionAvailability:
    """Merge executed cell documents into a :class:`VersionAvailability`.

    ``docs`` must already be in grid (cell-index) order — the executor
    returns them that way regardless of completion order.  The merge
    mirrors the serial loop: fit each replayed trace, average the normal
    throughputs in the same order, then evaluate the analytic model.
    """
    from repro.obs.recorder import FlightRecord, merge_records

    if isinstance(spec, str):
        spec = version_by_name(spec)
    for doc in docs:
        schema = int(doc.get("schema", 0))
        if schema > CELL_DOC_SCHEMA:
            raise ValueError(
                f"cell document schema {schema} is newer than supported "
                f"({CELL_DOC_SCHEMA}); upgrade the tooling")
    fitter = TemplateFitter(config.fit)
    probe_world = build_world(spec, config.profile, seed=config.seed)
    catalog = probe_world.catalog
    offered = probe_world.offered_rate

    merged = merge_records(
        [FlightRecord.from_dict(doc["record"]) for doc in docs])
    templates: Dict[FaultKind, SevenStageTemplate] = {}
    traces: Dict[FaultKind, ExperimentTrace] = {}
    records: Dict[FaultKind, "FlightRecord"] = {}
    normals: List[float] = []
    for fault, record in merged.items():
        kind = FaultKind(fault)
        trace = record.to_trace()
        templates[kind] = fitter.fit(trace)
        traces[kind] = trace
        normals.append(trace.normal_tput)
        if keep_records:
            records[kind] = record

    normal = sum(normals) / len(normals) if normals else 0.0
    model = AvailabilityModel(catalog, config.environment)
    result = model.evaluate(templates, normal_tput=normal,
                            offered_rate=offered, version=spec.name)
    return VersionAvailability(
        spec=spec,
        result=result,
        templates=templates,
        traces=traces,
        normal_tput=normal,
        offered_rate=offered,
        records=records,
    )
