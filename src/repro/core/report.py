"""Tabular reports for model results (what the benches print)."""

from __future__ import annotations

from typing import List, Sequence

from repro.core.model import ModelResult
from repro.faults.types import ALL_FAULT_KINDS, FAULT_LABELS


def format_model_result(result: ModelResult, stages: bool = False) -> str:
    """One version: availability plus the per-fault-class breakdown.

    ``stages=True`` adds the resolved 7-stage drill-down under each fault
    class (duration and throughput per stage) — the shape the error
    budget in :mod:`repro.obs.budget` rolls up.
    """
    lines = [
        f"version {result.version}: availability={result.availability:.5f} "
        f"(unavailability={result.unavailability:.5f}), "
        f"AT={result.average_throughput:.1f}/{result.offered_rate:.1f} req/s",
        f"  {'fault class':<18} {'count':>5} {'f_i':>10} {'deg.tput':>9} {'unavail':>10}",
    ]
    for c in result.contributions:
        lines.append(
            f"  {c.label:<18} {c.count:>5} {c.fault_fraction:>10.2e} "
            f"{c.degraded_tput:>9.1f} {c.unavailability:>10.2e}"
        )
        if stages:
            for name, stage in c.template.stages.items():
                if stage.duration <= 0:
                    continue
                lines.append(
                    f"      {name}  {stage.duration:>8.1f}s "
                    f"@ {stage.throughput:>7.1f} req/s ({stage.provenance})"
                )
    return "\n".join(lines)


def format_comparison(results: Sequence[ModelResult], title: str = "") -> str:
    """Several versions side by side, per-fault-kind unavailability matrix.

    This is the shape of the paper's stacked-bar figures (6, 7, 8) as text.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'fault class':<18}" + "".join(f"{r.version:>12}" for r in results)
    lines.append(header)
    kinds = [k for k in ALL_FAULT_KINDS
             if any(r.contribution(k) is not None for r in results)]
    for kind in kinds:
        row = f"{FAULT_LABELS[kind]:<18}"
        for r in results:
            c = r.contribution(kind)
            row += f"{c.unavailability:>12.2e}" if c else f"{'-':>12}"
        lines.append(row)
    lines.append(
        f"{'TOTAL unavail':<18}"
        + "".join(f"{r.unavailability:>12.2e}" for r in results)
    )
    lines.append(
        f"{'availability':<18}"
        + "".join(f"{r.availability:>12.5f}" for r in results)
    )
    return "\n".join(lines)


def model_result_to_dict(result: ModelResult) -> dict:
    """JSON-ready rendering of a model result (``repro quantify --json``)."""
    return {
        "version": result.version,
        "availability": result.availability,
        "unavailability": result.unavailability,
        "normal_tput": result.normal_tput,
        "offered_rate": result.offered_rate,
        "average_throughput": result.average_throughput,
        "baseline_unavailability": result.baseline_unavailability,
        "contributions": [
            {
                "kind": c.kind.value,
                "label": c.label,
                "count": c.count,
                "mttf": c.mttf,
                "fault_fraction": c.fault_fraction,
                "degraded_tput": c.degraded_tput,
                "unavailability": c.unavailability,
            }
            for c in result.contributions
        ],
    }


def format_bar(value: float, scale: float, width: int = 50) -> str:
    """Crude textual bar for throughput timelines."""
    if scale <= 0:
        return ""
    return "#" * max(0, min(width, int(round(value / scale * width))))
