"""Section 6.3: scaling rules for extrapolating measurements to larger clusters.

Assumptions (the paper's): the bottleneck resource is unchanged and
throughput scales linearly with cluster size.  For a configuration
scaled from N to kN nodes:

* ``MTTF`` of node-bound component classes divides by k (k times more
  components) — handled by scaling the catalog counts;
* stage *durations* are unchanged;
* normal throughput multiplies by k;
* per-stage throughputs follow the fault's blast radius:

  - a stage whose throughput was (close to) zero stays zero — a fault
    that stalls the whole cooperating cluster stalls the bigger cluster
    too ("if throughput drops to 0 in phase A for N nodes, it also drops
    to 0 for kN nodes");
  - a stage at a fraction 1 - m/N of normal (m nodes' worth of service
    lost) scales to 1 - m/(kN) of the new normal — losing one node hurts
    a bigger cluster proportionally less.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.faults.faultload import FaultCatalog
from repro.faults.types import FaultKind

#: component classes whose population grows with the node count
NODE_BOUND_KINDS = (
    FaultKind.LINK_DOWN,
    FaultKind.SCSI_TIMEOUT,
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
)


@dataclass(frozen=True)
class ScalingRules:
    """Parameters of the extrapolation.

    Classification of a stage's degradation: express its deficit in
    "nodes' worth of service lost", ``N * (1 - T_s/T)``.  A single
    component fault that costs **more than about one node's worth** is,
    by construction, propagating through cooperation (queue backpressure,
    splintering) — the paper's "drops to 0 for N nodes, drops to 0 for
    kN" rule is the extreme case — and keeps its *fraction* at scale.
    A deficit of at most one node's worth is the component itself, and
    costs proportionally less in a larger cluster (the paper's
    ``(N-1)/N -> (kN-1)/kN`` rule).
    """

    base_nodes: int = 4
    #: deficits above this many nodes' worth count as cooperation-coupled
    coupling_nodes: float = 1.25

    def scale_stage(self, stage: Stage, k: float, normal: float, new_normal: float,
                    n_nodes: int) -> Stage:
        if normal <= 0:
            return stage
        frac = stage.throughput / normal
        lost_nodes = n_nodes * (1.0 - min(frac, 1.0))
        if lost_nodes > self.coupling_nodes:
            # Cooperation-coupled: the fraction of service delivered is
            # unchanged by scale (0 stays 0).
            new_tput = frac * new_normal
        else:
            new_frac = 1.0 - lost_nodes / (k * n_nodes)
            new_tput = new_frac * new_normal
        return replace(stage, throughput=max(new_tput, 0.0))


def scale_template(
    template: SevenStageTemplate,
    k: float,
    rules: ScalingRules = ScalingRules(),
) -> SevenStageTemplate:
    """Extrapolate a base-cluster template to a k-times-larger cluster."""
    if k <= 0:
        raise ValueError("scale factor must be positive")
    normal = template.normal_tput
    new_normal = k * normal
    new_offered = k * template.offered_rate
    stages: Dict[str, Stage] = {
        name: rules.scale_stage(template.stages[name], k, normal, new_normal,
                                rules.base_nodes)
        for name in STAGE_NAMES
    }
    return replace(
        template,
        stages=stages,
        normal_tput=new_normal,
        offered_rate=new_offered,
        version=f"{template.version}x{k:g}",
    )


def scale_catalog(catalog: FaultCatalog, k: int) -> FaultCatalog:
    """Multiply node-bound component counts by k (switch/front-end stay)."""
    if k < 1:
        raise ValueError("scale factor must be >= 1")
    return catalog.scale_counts(k, NODE_BOUND_KINDS)
