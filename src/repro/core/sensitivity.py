"""Sensitivity analysis: where to spend the next availability dollar.

The paper closes by asking whether the evolutionary approach can push
the cooperative server from four nines toward five. The analytic model
makes that question computable: because expected unavailability is a sum
of per-fault-class terms that scale as ``count / MTTF`` and linearly in
the per-stage deficits, we can rank what-if improvements —

* harden a component class (multiply its MTTF, e.g. by RAID-ing disks),
* shrink its repair time (MTTR), or
* shorten the operator response (better monitoring/paging),

— and search for the cheapest combination reaching a target availability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Mapping, Optional

from repro.core.model import AvailabilityModel, EnvironmentParams, ModelResult
from repro.core.template import SevenStageTemplate
from repro.faults.faultload import FaultCatalog
from repro.faults.types import FAULT_LABELS, FaultKind


@dataclass(frozen=True)
class Improvement:
    """One what-if lever and its payoff."""

    description: str
    kind: Optional[FaultKind]  # None for environment-level levers
    new_unavailability: float
    delta: float  # unavailability removed (positive = better)

    @property
    def label(self) -> str:
        return FAULT_LABELS.get(self.kind, "environment") if self.kind else "environment"


class SensitivityAnalysis:
    """What-if evaluation over a fixed set of fitted templates."""

    def __init__(
        self,
        templates: Mapping[FaultKind, SevenStageTemplate],
        catalog: FaultCatalog,
        environment: EnvironmentParams,
        normal_tput: float,
        offered_rate: float,
        version: str = "",
    ):
        self.templates = dict(templates)
        self.catalog = catalog
        self.environment = environment
        self.normal_tput = normal_tput
        self.offered_rate = offered_rate
        self.version = version
        self.baseline = self._evaluate(catalog, environment)

    # -- engine ------------------------------------------------------------
    def _evaluate(self, catalog: FaultCatalog,
                  environment: EnvironmentParams) -> ModelResult:
        model = AvailabilityModel(catalog, environment)
        return model.evaluate(self.templates, self.normal_tput,
                              self.offered_rate, version=self.version)

    # -- what-ifs -------------------------------------------------------------
    def harden(self, kind: FaultKind, mttf_factor: float) -> Improvement:
        """Multiply one class's MTTF (redundancy, better hardware)."""
        rate = self.catalog.get(kind)
        if rate is None:
            raise KeyError(f"{kind} not in catalog")
        catalog = self.catalog.replace_rate(kind, mttf=rate.mttf * mttf_factor)
        result = self._evaluate(catalog, self.environment)
        return Improvement(
            description=f"{FAULT_LABELS[kind]}: MTTF x{mttf_factor:g}",
            kind=kind,
            new_unavailability=result.unavailability,
            delta=self.baseline.unavailability - result.unavailability,
        )

    def faster_repair(self, kind: FaultKind, mttr_factor: float) -> Improvement:
        """Shrink one class's MTTR (spares on site, automation)."""
        rate = self.catalog.get(kind)
        if rate is None:
            raise KeyError(f"{kind} not in catalog")
        catalog = self.catalog.replace_rate(kind, mttr=rate.mttr * mttr_factor)
        result = self._evaluate(catalog, self.environment)
        return Improvement(
            description=f"{FAULT_LABELS[kind]}: MTTR x{mttr_factor:g}",
            kind=kind,
            new_unavailability=result.unavailability,
            delta=self.baseline.unavailability - result.unavailability,
        )

    def faster_operator(self, factor: float) -> Improvement:
        """Shrink the operator response (paging, runbooks, auto-reset)."""
        env = replace(self.environment,
                      operator_response=self.environment.operator_response * factor)
        result = self._evaluate(self.catalog, env)
        return Improvement(
            description=f"operator response x{factor:g}",
            kind=None,
            new_unavailability=result.unavailability,
            delta=self.baseline.unavailability - result.unavailability,
        )

    # -- reports -------------------------------------------------------------
    def ranked_levers(self, mttf_factor: float = 10.0,
                      mttr_factor: float = 0.1,
                      operator_factor: float = 0.1) -> List[Improvement]:
        """All single levers, best payoff first."""
        levers: List[Improvement] = []
        for rate in self.catalog:
            if rate.kind in self.templates:
                levers.append(self.harden(rate.kind, mttf_factor))
                levers.append(self.faster_repair(rate.kind, mttr_factor))
        levers.append(self.faster_operator(operator_factor))
        levers.sort(key=lambda imp: imp.delta, reverse=True)
        return levers

    def nines(self) -> float:
        import math

        return -math.log10(max(self.baseline.unavailability, 1e-15))

    def path_to(self, target_availability: float,
                mttf_factor: float = 10.0,
                max_steps: int = 10) -> List[Improvement]:
        """Greedy search: repeatedly apply the best remaining hardening
        lever until the target availability is reached (or levers run
        out).  Returns the chosen sequence."""
        if not 0.0 < target_availability < 1.0:
            raise ValueError("target availability must be in (0, 1)")
        chosen: List[Improvement] = []
        analysis = self
        for _ in range(max_steps):
            if analysis.baseline.availability >= target_availability:
                break
            levers = analysis.ranked_levers(mttf_factor=mttf_factor)
            best = levers[0]
            if best.delta <= 0:
                break
            chosen.append(best)
            # apply it and continue from the improved configuration
            if best.kind is None:
                env = replace(analysis.environment,
                              operator_response=analysis.environment.operator_response * 0.1)
                analysis = SensitivityAnalysis(
                    analysis.templates, analysis.catalog, env,
                    analysis.normal_tput, analysis.offered_rate, analysis.version)
            else:
                rate = analysis.catalog[best.kind]
                if "MTTR" in best.description:
                    catalog = analysis.catalog.replace_rate(
                        best.kind, mttr=rate.mttr * 0.1)
                else:
                    catalog = analysis.catalog.replace_rate(
                        best.kind, mttf=rate.mttf * mttf_factor)
                analysis = SensitivityAnalysis(
                    analysis.templates, catalog, analysis.environment,
                    analysis.normal_tput, analysis.offered_rate, analysis.version)
        return chosen


def format_levers(levers: List[Improvement], baseline: float) -> str:
    lines = [f"baseline unavailability: {baseline:.2e}",
             f"{'lever':<34}{'unavail':>12}{'removed':>12}"]
    for imp in levers:
        lines.append(f"{imp.description:<34}{imp.new_unavailability:>12.2e}"
                     f"{imp.delta:>12.2e}")
    return "\n".join(lines)
