"""The 7-stage piece-wise-linear fault template (Figure 2) and its fitter.

Stages::

    A  fault occurs ........ error detected        (degraded, undetected)
    B  detection ........... server stabilizes     (reconfiguration transient)
    C  stable degraded ..... component recovers    (duration = MTTR - A - B)
    D  recovery ............ server stabilizes     (re-integration transient)
    E  stable suboptimal ... operator reset        (splintered etc.)
    F  reset in progress                           (service restart)
    G  post-reset transient. normal operation      (cache re-warming)

Per the methodology, each stage has a duration and an average throughput.
Throughputs are always measured; durations are measured where the
experiment exhibits them (A, B, D, G) and *supplied* environmental values
otherwise (C from the component's MTTR, E from the operator response
time, F from the reset procedure).  Stages a fault does not exhibit get
zero duration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.faults.campaign import ExperimentTrace

STAGE_NAMES = ("A", "B", "C", "D", "E", "F", "G")

#: which stage durations come from environmental assumptions rather than
#: the injection experiment
SUPPLIED_STAGES = {"C": "mttr", "E": "operator_response", "F": "reset_duration"}


@dataclass(frozen=True)
class Stage:
    """One template stage: how long, and at what average throughput."""

    name: str
    duration: float  # seconds; for C/E/F this is a placeholder the model resolves
    throughput: float  # requests/second
    provenance: str = "measured"  # "measured" | "supplied" | "absent"

    def __post_init__(self) -> None:
        if self.name not in STAGE_NAMES:
            raise ValueError(f"unknown stage {self.name!r}")
        if self.duration < 0 or self.throughput < 0:
            raise ValueError("stage duration/throughput must be non-negative")


@dataclass(frozen=True)
class SevenStageTemplate:
    """A fitted template for one (system version, fault type) pair."""

    stages: Dict[str, Stage]
    normal_tput: float
    offered_rate: float
    version: str = ""
    fault: str = ""
    #: True when the system returned to normal without operator help; the
    #: model then zeroes stages E-G.
    self_recovered: bool = True

    def __post_init__(self) -> None:
        missing = set(STAGE_NAMES) - set(self.stages)
        if missing:
            raise ValueError(f"template missing stages {sorted(missing)}")

    def stage(self, name: str) -> Stage:
        return self.stages[name]

    def resolved(self, mttr: float, operator_response: float, reset_duration: float) -> "SevenStageTemplate":
        """Fill in the supplied durations (model phase).

        Stage C covers the time the component remains broken after
        detection and stabilization: ``max(MTTR - dA - dB, 0)``.  If the
        system self-recovered, stages E-G are absent; otherwise E lasts
        until the operator reacts and F for the reset itself.
        """
        a, b = self.stages["A"].duration, self.stages["B"].duration
        c_dur = max(mttr - a - b, 0.0)
        out = dict(self.stages)
        out["C"] = replace(out["C"], duration=c_dur, provenance="supplied")
        if self.self_recovered:
            for name in ("E", "F", "G"):
                out[name] = replace(out[name], duration=0.0, provenance="absent")
        else:
            out["E"] = replace(out["E"], duration=operator_response, provenance="supplied")
            out["F"] = replace(out["F"], duration=reset_duration, provenance="supplied")
        return replace(self, stages=out)

    @property
    def total_duration(self) -> float:
        return sum(s.duration for s in self.stages.values())

    def served_during_fault(self) -> float:
        """Requests served across all stages (area under the template)."""
        return sum(s.duration * s.throughput for s in self.stages.values())

    def deficit(self) -> float:
        """Requests *lost* relative to the offered load across the template."""
        return sum(
            s.duration * max(self.offered_rate - s.throughput, 0.0)
            for s in self.stages.values()
        )


@dataclass(frozen=True)
class FitConfig:
    """Knobs of the fitting procedure."""

    bucket: float = 1.0  # rate-estimation granularity (seconds)
    stable_band: float = 0.12  # |rate - target| <= band * normal => stable
    stable_buckets: int = 4  # consecutive in-band buckets => stabilized
    steady_window: float = 15.0  # tail window used to measure C and E levels
    #: at or above this fraction of normal the service counts as recovered
    recovered_level: float = 0.93
    #: below that, it still counts as recovering if the rate is climbing by
    #: at least this fraction of normal between the middle and the tail of
    #: the post-repair window (cache re-specialization approaches the
    #: fault-free level asymptotically); a *flat* degraded plateau is what
    #: eventually draws an operator reset
    climb_margin: float = 0.04


def stabilization_time(
    series,
    start: float,
    end: float,
    target: float,
    normal: float,
    config: FitConfig = FitConfig(),
) -> float:
    """Seconds after ``start`` until the rate settles at ``target``.

    The rate is bucketized; stabilization is the first run of
    ``stable_buckets`` consecutive buckets within ``stable_band`` of the
    target (band floor relative to normal throughput keeps the test
    meaningful when the target is ~0).  Shared by the fitter and the
    stage-attribution engine (:mod:`repro.obs.attribution`), so both
    tiers place transient/stable boundaries identically.
    """
    if end - start < config.bucket:
        return 0.0
    _, rates = series.bucketize(config.bucket, start, end)
    band = max(config.stable_band * normal,
               config.stable_band * max(target, 1.0))
    run = 0
    for i, rate in enumerate(rates):
        if abs(rate - target) <= band:
            run += 1
            if run >= config.stable_buckets:
                return max((i + 1 - run) * config.bucket, 0.0)
        else:
            run = 0
    return end - start  # never stabilized inside the window


class TemplateFitter:
    """Fits an :class:`ExperimentTrace` to the 7-stage template."""

    def __init__(self, config: FitConfig = FitConfig()):
        self.config = config

    def fit(self, trace: ExperimentTrace) -> SevenStageTemplate:
        cfg = self.config
        series = trace.series
        normal = max(trace.normal_tput, 1e-9)

        t_detect = trace.t_detect
        undetected = t_detect is None or t_detect > trace.t_repair
        if undetected:
            t_detect = trace.t_repair  # nothing noticed: A spans the fault

        # -- A: fault -> detection ------------------------------------------
        d_a = t_detect - trace.t_inject
        t_a = series.mean_rate(trace.t_inject, t_detect) if d_a > 0 else 0.0

        if undetected:
            # No reconfiguration ever happens: the system stays at the
            # stage-A degraded level for the component's whole MTTR, so
            # stage C (whose duration the model sets to MTTR - A - B)
            # continues at the same throughput and B does not exist.
            t_c, d_b, t_b = t_a, 0.0, t_a
        else:
            # -- C level: steady degraded rate at the fault-window tail ----
            c_from = max(t_detect, trace.t_repair - cfg.steady_window)
            t_c = series.mean_rate(c_from, trace.t_repair)
            # -- B: detection -> stabilization at the C level ----------------
            d_b = self._stabilization_time(series, t_detect, trace.t_repair, t_c, normal)
            t_b = series.mean_rate(t_detect, t_detect + d_b) if d_b > 0 else t_c

        # -- post-repair window ---------------------------------------------------
        post_end = trace.t_reset if trace.t_reset is not None else trace.t_end
        e_from = max(trace.t_repair, post_end - cfg.steady_window)
        t_e = series.mean_rate(e_from, post_end)
        d_d = self._stabilization_time(series, trace.t_repair, post_end, t_e, normal)
        t_d = series.mean_rate(trace.t_repair, trace.t_repair + d_d) if d_d > 0 else t_e

        if trace.t_reset is not None:
            self_recovered = False
        elif t_e >= cfg.recovered_level * normal:
            self_recovered = True
        else:
            # Degraded but possibly still climbing (re-warming tail):
            # compare the start of the post-repair window with its tail.
            span = post_end - trace.t_repair
            early = series.mean_rate(trace.t_repair, trace.t_repair + span / 3.0)
            self_recovered = t_e >= early + cfg.climb_margin * normal

        # -- F/G: operator reset and post-reset warm-up ----------------------------
        if trace.t_reset is not None:
            f_end = trace.t_reset + trace.config.reset_duration
            t_f = series.mean_rate(trace.t_reset, f_end)
            # G ends when service returns to *normal* (cache re-warming
            # after the restart); if it never does within the observation
            # window, the whole window counts as transient.
            d_g = self._stabilization_time(series, f_end, trace.t_end, normal, normal)
            t_g = series.mean_rate(f_end, f_end + d_g) if d_g > 0 else normal
            d_f = trace.config.reset_duration
        else:
            t_f = t_g = 0.0
            d_f = d_g = 0.0

        stages = {
            "A": Stage("A", d_a, t_a),
            "B": Stage("B", d_b, t_b),
            "C": Stage("C", 0.0, t_c, provenance="supplied"),  # duration from MTTR
            "D": Stage("D", d_d, t_d),
            "E": Stage("E", 0.0, t_e, provenance="supplied"),  # duration from operator
            "F": Stage("F", d_f, t_f),
            "G": Stage("G", d_g, t_g),
        }
        return SevenStageTemplate(
            stages=stages,
            normal_tput=trace.normal_tput,
            offered_rate=trace.offered_rate,
            version=trace.version,
            fault=str(trace.component),
            self_recovered=self_recovered,
        )

    # ------------------------------------------------------------------
    def _stabilization_time(
        self,
        series,
        start: float,
        end: float,
        target: float,
        normal: float,
    ) -> float:
        return stabilization_time(series, start, end, target, normal,
                                  self.config)
