"""Empirical validation of the analytic model (beyond-paper experiment).

The paper's phase-2 model rests on assumptions it can only argue for
(single faults at a time, uncorrelated arrivals, additivity of degraded
fractions).  Because our substrate is a simulator, we can *check* them:
run a long horizon with random exponential fault arrivals drawn from a
catalog, measure the achieved availability directly, and compare it with
what phase 1 + phase 2 predicted for the same catalog.

Table-1 timescales (MTTFs of weeks-months) are unsimulatable directly,
so validation uses an explicitly synthetic catalog with compressed MTTFs
(minutes-hours) and realistic MTTRs — the model is evaluated under the
*same* catalog, so the comparison is apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.model import AvailabilityModel, EnvironmentParams, ModelResult
from repro.core.quantify import QuantifyConfig, run_single_fault
from repro.core.template import TemplateFitter
from repro.experiments.configs import version as version_by_name
from repro.experiments.runner import World, build_world
from repro.faults.faultload import FaultCatalog, FaultRate
from repro.faults.types import FaultKind


def validation_catalog(n_nodes: int = 4, disks_per_node: int = 2,
                       with_frontend: bool = False) -> FaultCatalog:
    """Compressed fault load: ~10-20 faults in an hour of simulated time
    while keeping the single-fault-at-a-time fraction comfortably < 1."""
    rates = [
        FaultRate(FaultKind.NODE_CRASH, 12_000.0, 120.0, n_nodes),
        FaultRate(FaultKind.NODE_FREEZE, 12_000.0, 120.0, n_nodes),
        FaultRate(FaultKind.APP_CRASH, 15_000.0, 90.0, n_nodes),
        FaultRate(FaultKind.APP_HANG, 15_000.0, 90.0, n_nodes),
        FaultRate(FaultKind.SCSI_TIMEOUT, 40_000.0, 240.0, n_nodes * disks_per_node),
    ]
    if with_frontend:
        rates.append(FaultRate(FaultKind.FRONTEND_FAILURE, 30_000.0, 120.0, 1))
    return FaultCatalog(rates)


#: operator behaviour compressed to the validation timescale (the driver
#: resets a stagnant-degraded service ~1 minute after each repair)
VALIDATION_ENVIRONMENT = EnvironmentParams(operator_response=75.0,
                                           reset_duration=10.0)


@dataclass
class ValidationResult:
    """Predicted vs directly-measured availability under one catalog."""

    version: str
    predicted: ModelResult
    measured_availability: float
    horizon: float
    faults_injected: int
    fault_log: List[Tuple[float, FaultKind]] = field(default_factory=list)

    @property
    def predicted_availability(self) -> float:
        return self.predicted.availability

    @property
    def measured_unavailability(self) -> float:
        return 1.0 - self.measured_availability

    @property
    def ratio(self) -> float:
        """measured / predicted unavailability (1.0 = perfect model)."""
        pred_u = max(self.predicted.unavailability, 1e-12)
        return self.measured_unavailability / pred_u


def _fault_load_driver(world: World, catalog: FaultCatalog,
                       rng: np.random.Generator, horizon: float,
                       recovery_wait: float, operator_threshold: float,
                       log: List[Tuple[float, FaultKind]]):
    """Generate the paper's expected fault load: exponential arrivals per
    component class, queued so a single fault is in effect at a time,
    with the campaign's operator policy applied after each repair."""
    env = world.env
    rates = [(r.kind, r.class_rate) for r in catalog]
    total_rate = sum(rate for _, rate in rates)
    probs = np.array([rate for _, rate in rates]) / total_rate
    kinds = [kind for kind, _ in rates]
    timeout = env.timeout
    while env.now < horizon:  # reprolint: disable=REP020 -- env.now advances across this loop's yields; caching it would freeze simulated time
        gap = float(rng.exponential(1.0 / total_rate))
        yield timeout(gap)
        if env.now >= horizon:
            return
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        target = world.default_target(kind)
        mttr = catalog[kind].mttr
        log.append((env.now, kind))
        fault = world.injector.inject(kind, target)
        yield timeout(mttr)
        world.injector.repair(fault)
        # Post-repair: give the service time to recover; if it stays
        # degraded (splintered), the operator resets it — the same policy
        # the single-fault campaigns apply.
        yield timeout(recovery_wait)
        t0, t1 = env.now - min(recovery_wait, 20.0), env.now
        normal = world.offered_rate
        if world.stats.series.mean_rate(t0, t1) < operator_threshold * normal:
            world.markers.mark(env.now, "operator_reset", kind)
            world.operator_reset()
            yield env.timeout(60.0)


def validate_model(
    version_name: str,
    horizon: float = 7200.0,
    config: Optional[QuantifyConfig] = None,
    seed: int = 0,
) -> ValidationResult:
    """Phase 1 + 2 under the compressed catalog, then measure directly."""
    if config is None:
        config = QuantifyConfig.quick(environment=VALIDATION_ENVIRONMENT)
    spec = version_by_name(version_name)
    catalog = validation_catalog(
        n_nodes=spec.server_count, with_frontend=spec.frontend)

    # Phase 1: fit templates with fault_active == the catalog's MTTRs.
    fitter = TemplateFitter(config.fit)
    templates = {}
    normals = []
    for rate in catalog:
        from dataclasses import replace

        campaign = replace(config.campaign, fault_active=rate.mttr)
        cfg = QuantifyConfig(profile=config.profile, seed=config.seed,
                             campaign=campaign, environment=config.environment,
                             fit=config.fit)
        trace, _ = run_single_fault(spec, rate.kind, cfg)
        templates[rate.kind] = fitter.fit(trace)
        normals.append(trace.normal_tput)
    normal = sum(normals) / len(normals)

    # Phase 2: the analytic prediction under the same catalog.
    probe = build_world(spec, config.profile, seed=seed)
    model = AvailabilityModel(catalog, config.environment)
    predicted = model.evaluate(templates, normal, probe.offered_rate,
                               version=version_name)

    # Direct measurement: random arrivals over the horizon.
    world = build_world(spec, config.profile, seed=seed + 1)
    rng = world.rngs.stream("faultload")
    log: List[Tuple[float, FaultKind]] = []
    warmup = config.campaign.warmup
    world.env.run(until=warmup)
    world.env.process(
        _fault_load_driver(world, catalog, rng, warmup + horizon,
                           recovery_wait=60.0,
                           operator_threshold=config.campaign.operator_threshold,
                           log=log),
        name="faultload",
    )
    world.env.run(until=warmup + horizon)
    window = world.stats.window(warmup, warmup + horizon)
    return ValidationResult(
        version=version_name,
        predicted=predicted,
        measured_availability=window["availability"],
        horizon=horizon,
        faults_injected=len(log),
        fault_log=log,
    )
