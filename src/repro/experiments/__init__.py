"""Experiment harness: named system versions, world builder, figures.

Each figure/table of the paper's evaluation has an entry point in
:mod:`repro.experiments.figures`; the builders in
:mod:`repro.experiments.runner` assemble complete simulated deployments
(cluster + workload + HA subsystems + fault injector) for the named
versions of :mod:`repro.experiments.configs`.
"""

from repro.experiments.profiles import ScaleProfile, SMALL, TINY
from repro.experiments.configs import VersionSpec, VERSIONS, version
from repro.experiments.runner import World, build_world

__all__ = [
    "ScaleProfile",
    "SMALL",
    "TINY",
    "VersionSpec",
    "VERSIONS",
    "version",
    "World",
    "build_world",
]
