"""Artifact persistence: write reproduced figures/tables to disk.

The benchmark harness (and the CLI) can persist every
:class:`~repro.experiments.figures.FigureOutput` as a text rendering plus
a machine-readable CSV, so runs leave a reviewable record under
``results/`` — the shape a downstream user expects from an experiments
repository.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.experiments.figures import FigureOutput


def _flatten(row: dict) -> dict:
    """CSV cells must be scalars; nested dicts become JSON strings."""
    out = {}
    for key, value in row.items():
        if isinstance(value, (dict, list, tuple)):
            out[key] = json.dumps(value, sort_keys=True)
        else:
            out[key] = value
    return out


def rows_to_csv(rows: List[dict]) -> str:
    """Render figure rows as CSV (column union across rows, in first-seen
    order)."""
    if not rows:
        return ""
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for row in rows:
        writer.writerow(_flatten(row))
    return buf.getvalue()


def write_figure(figure: FigureOutput, out_dir: Union[str, Path]) -> List[Path]:
    """Persist one figure as ``<name>.txt`` and ``<name>.csv``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    txt_path = out / f"{figure.name}.txt"
    txt_path.write_text(f"{figure.title}\n\n{figure.text}\n", encoding="utf-8")
    written = [txt_path]
    csv_text = rows_to_csv(figure.rows)
    if csv_text:
        csv_path = out / f"{figure.name}.csv"
        csv_path.write_text(csv_text, encoding="utf-8")
        written.append(csv_path)
    return written


def write_all(figures: Iterable[FigureOutput], out_dir: Union[str, Path],
              index_name: str = "INDEX.md") -> Path:
    """Persist a set of figures plus a small index file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    lines = ["# Reproduced artifacts", ""]
    for figure in figures:
        write_figure(figure, out)
        lines.append(f"- `{figure.name}` — {figure.title} "
                     f"([txt]({figure.name}.txt), [csv]({figure.name}.csv))")
    index = out / index_name
    index.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return index
