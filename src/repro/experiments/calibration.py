"""Calibration tooling: find a deployment's saturation point.

The methodology requires loading the service at a fixed fraction of its
saturation throughput (the paper uses 90% of the 4-node COOP
saturation).  When a profile changes (service times, cache sizes, file
set), the saturation moves and the operating rates in
:mod:`repro.experiments.profiles` must be re-derived.  This module
automates that search so downstream users adapting profiles don't have
to eyeball it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.experiments.configs import VersionSpec, version as version_by_name
from repro.experiments.profiles import SMALL, ScaleProfile
from repro.experiments.runner import build_world


@dataclass(frozen=True)
class CalibrationConfig:
    """Search parameters."""

    warmup: float = 90.0  # must cover the client ramp + cache fill
    window: float = 30.0  # measurement window after warmup
    availability_floor: float = 0.98  # sustained below this = saturated
    rel_tolerance: float = 0.05  # stop when the bracket is this tight
    max_iterations: int = 12


def measure_availability(
    spec: VersionSpec,
    profile: ScaleProfile,
    rate: float,
    config: CalibrationConfig = CalibrationConfig(),
    seed: int = 0,
) -> float:
    """Fault-free availability at one offered rate."""
    world = build_world(spec, profile, seed=seed, rate=rate)
    end = config.warmup + config.window
    world.env.run(until=end)
    return world.stats.window(config.warmup, end)["availability"]


def find_saturation(
    spec: Union[str, VersionSpec],
    profile: ScaleProfile = SMALL,
    config: CalibrationConfig = CalibrationConfig(),
    lo: float = 10.0,
    hi: float = 1000.0,
    seed: int = 0,
) -> Tuple[float, List[Tuple[float, float]]]:
    """Binary-search the highest rate the deployment sustains.

    Returns ``(saturation_rate, probes)`` where probes is the list of
    (rate, availability) measurements taken.  ``lo`` must be sustainable
    and ``hi`` unsustainable; both are verified (and ``hi`` grows if it
    turns out to be sustainable).
    """
    if isinstance(spec, str):
        spec = version_by_name(spec)
    if not lo < hi:
        raise ValueError("need lo < hi")
    probes: List[Tuple[float, float]] = []

    def ok(rate: float) -> bool:
        availability = measure_availability(spec, profile, rate, config, seed)
        probes.append((rate, availability))
        return availability >= config.availability_floor

    if not ok(lo):
        raise ValueError(f"floor rate {lo} req/s is already unsustainable")
    grow = 0
    while ok(hi):
        lo = hi
        hi *= 2.0
        grow += 1
        if grow > 6:
            return lo, probes  # effectively unbounded for this search
    for _ in range(config.max_iterations):
        if (hi - lo) / hi <= config.rel_tolerance:
            break
        mid = (lo + hi) / 2.0
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo, probes


def operating_rate(
    spec: Union[str, VersionSpec],
    profile: ScaleProfile = SMALL,
    fraction: float = 0.9,
    **kwargs,
) -> float:
    """The paper's operating point: ``fraction`` of saturation."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    saturation, _ = find_saturation(spec, profile, **kwargs)
    return fraction * saturation
