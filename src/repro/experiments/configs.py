"""The named system versions evaluated in the paper.

Figure/section mapping:

================  ==============================================================
INDEP             independent servers, round-robin DNS (Fig 1a)
FE-X-INDEP        INDEP + front-end + extra node (Fig 1a)
COOP              base cooperative PRESS, heartbeat ring only (Fig 1a, 4, 6, 7)
FE-X              COOP + front-end + extra node (Fig 6, 7)
MEM               FE-X + membership service (Fig 7)
QMON              FE-X + queue monitoring (Fig 7)
MQ                FE-X + membership + queue monitoring (Fig 7)
FME               MQ + fault model enforcement (Fig 7, 8, 9)
FME-NOFE          FME without front-end/extra node (Sec 6.1: ~3x worse)
S-FME             FME + global cooperation-set monitoring (Fig 8)
C-MON             S-FME + front-end TCP connection monitoring (Fig 8)
X-SW              C-MON + backup switch        (catalog transform; Fig 8)
X-SW-RAID         X-SW + RAID on every node    (catalog transform; Fig 8)
================  ==============================================================

X-SW / RAID change no runtime behaviour — they improve hardware MTTFs —
so they reuse the C-MON runtime and apply
:meth:`repro.faults.faultload.FaultCatalog` transforms in the model phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.faults.faultload import FaultCatalog


@dataclass(frozen=True)
class VersionSpec:
    """Which components a deployment includes."""

    name: str
    cooperative: bool = True
    n_nodes: int = 4
    extra_node: bool = False  # +1 back-end node (the paper's X)
    frontend: bool = False  # LVS front-end + Mon
    fe_conn_monitoring: bool = False  # C-MON probes instead of pings
    membership: bool = False  # external membership service
    queue_monitoring: bool = False  # self-monitoring send queues
    fme: bool = False  # per-node FME daemons
    sfme: bool = False  # global coop-set monitor at the FE
    #: catalog transforms applied before the availability model runs
    catalog_transforms: tuple = ()

    @property
    def server_count(self) -> int:
        return self.n_nodes + (1 if self.extra_node else 0)

    @property
    def ring_detection(self) -> bool:
        # The membership service replaces PRESS's own heartbeat ring.
        return not self.membership

    def with_nodes(self, n_nodes: int) -> "VersionSpec":
        from dataclasses import replace

        return replace(self, name=f"{self.name}-{n_nodes}", n_nodes=n_nodes)

    def transform_catalog(self, catalog: FaultCatalog) -> FaultCatalog:
        for transform in self.catalog_transforms:
            catalog = getattr(catalog, transform)()
        return catalog


def _mk(name: str, **kw) -> VersionSpec:
    return VersionSpec(name=name, **kw)


VERSIONS: Dict[str, VersionSpec] = {
    spec.name: spec
    for spec in [
        _mk("INDEP", cooperative=False),
        _mk("FE-X-INDEP", cooperative=False, frontend=True, extra_node=True),
        _mk("COOP"),
        _mk("FE-X", frontend=True, extra_node=True),
        _mk("MEM", frontend=True, extra_node=True, membership=True),
        _mk("QMON", frontend=True, extra_node=True, queue_monitoring=True),
        _mk("MQ", frontend=True, extra_node=True, membership=True, queue_monitoring=True),
        _mk("FME", frontend=True, extra_node=True, membership=True,
            queue_monitoring=True, fme=True),
        _mk("FME-NOFE", membership=True, queue_monitoring=True, fme=True),
        _mk("S-FME", frontend=True, extra_node=True, membership=True,
            queue_monitoring=True, fme=True, sfme=True),
        _mk("C-MON", frontend=True, extra_node=True, membership=True,
            queue_monitoring=True, fme=True, sfme=True, fe_conn_monitoring=True),
        _mk("X-SW", frontend=True, extra_node=True, membership=True,
            queue_monitoring=True, fme=True, sfme=True, fe_conn_monitoring=True,
            catalog_transforms=("with_backup_switch",)),
        _mk("X-SW-RAID", frontend=True, extra_node=True, membership=True,
            queue_monitoring=True, fme=True, sfme=True, fe_conn_monitoring=True,
            catalog_transforms=("with_backup_switch", "with_raid")),
    ]
}


#: Convenience names accepted by :func:`version` (resolution is also
#: case-insensitive).  "pressha" is the paper's fully-hardened PRESS-HA
#: configuration — the FME version.
ALIASES: Dict[str, str] = {
    "PRESSHA": "FME",
    "PRESS-HA": "FME",
    "BASE": "COOP",
    "PRESS": "COOP",
}


def version(name: str) -> VersionSpec:
    canonical = name.upper()
    canonical = ALIASES.get(canonical, canonical)
    try:
        return VERSIONS[canonical]
    except KeyError:
        raise KeyError(f"unknown version {name!r}; known: {sorted(VERSIONS)}") from None
