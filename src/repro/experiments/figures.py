"""Per-figure/table reproduction entry points.

Every table and figure of the paper's evaluation has a function here that
runs the necessary experiments (through a shared :class:`Evaluation`
cache, since several figures reuse the same version quantifications) and
returns a :class:`FigureOutput` with structured rows plus a printable
text rendering.  The benchmark harness prints these.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.model import AvailabilityModel, ModelResult
from repro.core.predictions import predict_templates
from repro.core.quantify import (
    QuantifyConfig,
    VersionAvailability,
    measure_fault_free,
    quantify_version,
    run_single_fault,
)
from repro.core.report import format_comparison
from repro.core.scaling import scale_catalog, scale_template
from repro.core.template import STAGE_NAMES
from repro.experiments.configs import version
from repro.faults.types import FAULT_LABELS, FaultKind


@dataclass
class FigureOutput:
    """One reproduced figure/table."""

    name: str
    title: str
    rows: List[dict]
    text: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.name}: {self.title} ==\n{self.text}"


class Evaluation:
    """Shared cache of quantifications for one configuration."""

    def __init__(self, config: Optional[QuantifyConfig] = None,
                 jobs: int = 1):
        self.config = config or QuantifyConfig.from_env()
        self.jobs = max(1, int(jobs))
        self._va: Dict[str, VersionAvailability] = {}
        self._ff: Dict[str, dict] = {}

    def va(self, name: str) -> VersionAvailability:
        if name not in self._va:
            self._va[name] = quantify_version(name, self.config,
                                              jobs=self.jobs)
        return self._va[name]

    def fault_free(self, name: str) -> dict:
        if name not in self._ff:
            self._ff[name] = measure_fault_free(version(name), self.config)
        return self._ff[name]

    def model_with_catalog(self, base: VersionAvailability, catalog,
                           label: str) -> ModelResult:
        """Re-evaluate a measured version under a transformed fault catalog."""
        model = AvailabilityModel(catalog, self.config.environment)
        return model.evaluate(base.templates, base.normal_tput,
                              base.offered_rate, version=label)

    def predicted(self, name: str) -> ModelResult:
        """Paper Fig 7 'modeled from COOP' bars: predict a version's
        availability using only COOP's measurements."""
        from repro.faults.faultload import table1_catalog

        coop = self.va("COOP")
        spec = version(name)
        templates = predict_templates(coop.templates, spec)
        catalog = spec.transform_catalog(
            table1_catalog(n_nodes=spec.server_count, with_frontend=spec.frontend)
        )
        model = AvailabilityModel(catalog, self.config.environment)
        return model.evaluate(templates, coop.normal_tput, coop.offered_rate,
                              version=f"{name}(pred)")


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

def fig1a(ev: Evaluation) -> FigureOutput:
    """Unavailability and throughput of INDEP, FE-X-INDEP, COOP."""
    rows = []
    for name in ("INDEP", "FE-X-INDEP", "COOP"):
        va = ev.va(name)
        ff = ev.fault_free(name)
        rows.append({
            "version": name,
            "throughput": ff["throughput"],
            "offered": ff["offered"],
            "unavailability": va.unavailability,
            "availability": va.availability,
        })
    coop, indep = rows[2], rows[0]
    ratio_u = coop["unavailability"] / max(indep["unavailability"], 1e-12)
    ratio_t = coop["throughput"] / max(indep["throughput"], 1e-12)
    lines = [f"{'version':<12}{'tput(req/s)':>12}{'unavail':>12}{'avail':>10}"]
    for r in rows:
        lines.append(f"{r['version']:<12}{r['throughput']:>12.1f}"
                     f"{r['unavailability']:>12.5f}{r['availability']:>10.5f}")
    lines.append(f"COOP/INDEP: throughput x{ratio_t:.2f} (paper ~3x), "
                 f"unavailability x{ratio_u:.1f} (paper ~10x)")
    return FigureOutput("fig1a", "Independent vs Cooperative", rows, "\n".join(lines))


def fig1b(ev: Evaluation) -> FigureOutput:
    """Theoretical improvement from HW and/or SW added to COOP."""
    from repro.faults.faultload import table1_catalog

    coop = ev.va("COOP")
    # HW: RAID everywhere + backup switch, modeled over COOP's templates.
    base_cat = table1_catalog(n_nodes=4)
    hw = ev.model_with_catalog(coop, base_cat.with_raid().with_backup_switch(), "COOP+HW")
    sw = ev.va("FME-NOFE")
    swhw_full = ev.va("FME")
    swhw = ev.model_with_catalog(
        swhw_full,
        table1_catalog(n_nodes=swhw_full.spec.server_count, with_frontend=True)
        .with_raid().with_backup_switch().with_redundant_frontend(),
        "COOP+SW+HW",
    )
    rows = [
        {"config": "COOP", "unavailability": coop.unavailability},
        {"config": "HW", "unavailability": hw.unavailability},
        {"config": "SW", "unavailability": sw.unavailability},
        {"config": "SW+HW", "unavailability": swhw.unavailability},
    ]
    lines = [f"{'config':<10}{'unavail':>12}"]
    lines += [f"{r['config']:<10}{r['unavailability']:>12.5f}" for r in rows]
    lines.append("expected shape: HW alone barely helps; SW recovers most; "
                 "SW+HW approaches four nines")
    return FigureOutput("fig1b", "HW vs SW improvement over COOP", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Figure 2: the 7-stage template itself
# ---------------------------------------------------------------------------

def fig2(ev: Evaluation) -> FigureOutput:
    """Render the fitted 7-stage template for COOP under a disk fault."""
    va = ev.va("COOP")
    tpl = va.templates[FaultKind.SCSI_TIMEOUT].resolved(
        mttr=3600.0,  # Table 1: SCSI timeout repairs take one hour
        operator_response=ev.config.environment.operator_response,
        reset_duration=ev.config.environment.reset_duration,
    )
    rows = [
        {"stage": n, "duration": tpl.stage(n).duration,
         "throughput": tpl.stage(n).throughput,
         "provenance": tpl.stage(n).provenance}
        for n in STAGE_NAMES
    ]
    lines = [f"{'stage':<7}{'duration(s)':>12}{'tput':>9}  provenance"]
    for r in rows:
        lines.append(f"{r['stage']:<7}{r['duration']:>12.1f}{r['throughput']:>9.1f}"
                     f"  {r['provenance']}")
    return FigureOutput("fig2", "7-stage template (COOP, SCSI timeout)", rows,
                        "\n".join(lines))


# ---------------------------------------------------------------------------
# Figure 4: throughput timeline under a disk fault
# ---------------------------------------------------------------------------

def fig4(ev: Evaluation) -> FigureOutput:
    trace, world = run_single_fault(version("COOP"), FaultKind.SCSI_TIMEOUT, ev.config)
    start = max(trace.t_inject - 20.0, 0.0)
    times, rates = trace.series.bucketize(5.0, start, trace.t_end)
    peak = max(float(rates.max()), 1.0)
    rows = [{"t": float(t), "rate": float(r)} for t, r in zip(times, rates)]
    lines = []
    for r in rows:
        marks = []
        for label, t_ev in (("INJECT", trace.t_inject), ("REPAIR", trace.t_repair),
                            ("RESET", trace.t_reset)):
            if t_ev is not None and r["t"] <= t_ev < r["t"] + 5.0:
                marks.append(label)
        bar = "#" * int(r["rate"] / peak * 50)
        lines.append(f"{r['t']:7.0f} {r['rate']:7.1f} {bar} {' '.join(marks)}")
    splintered = [sorted(s.coop) for s in world.servers]
    lines.append(f"final cooperation sets: {splintered}")
    return FigureOutput("fig4", "COOP throughput under a disk fault", rows,
                        "\n".join(lines))


# ---------------------------------------------------------------------------
# Figures 6-8: unavailability ladders
# ---------------------------------------------------------------------------

def fig6(ev: Evaluation) -> FigureOutput:
    from repro.faults.faultload import table1_catalog

    coop = ev.va("COOP")
    fex = ev.va("FE-X")
    raid_sw = ev.model_with_catalog(
        coop, table1_catalog(4).with_raid().with_backup_switch(), "RAID+switch")
    all_hw = ev.model_with_catalog(
        fex,
        table1_catalog(n_nodes=5, with_frontend=True)
        .with_raid().with_backup_switch().with_redundant_frontend(),
        "All HW",
    )
    results = [coop.result, fex.result, raid_sw, all_hw]
    rows = [{"config": r.version or n, "unavailability": r.unavailability}
            for r, n in zip(results, ("COOP", "FE-X", "RAID+switch", "All HW"))]
    return FigureOutput("fig6", "Unavailability under additional hardware", rows,
                        format_comparison(results))


FIG7_VERSIONS = ("COOP", "FE-X", "MEM", "QMON", "MQ", "FME")


def fig7(ev: Evaluation) -> FigureOutput:
    rows = []
    results = []
    for name in FIG7_VERSIONS:
        measured = ev.va(name)
        predicted = ev.predicted(name) if name != "COOP" else measured.result
        results.append(measured.result)
        rows.append({
            "version": name,
            "predicted_unavail": predicted.unavailability,
            "measured_unavail": measured.unavailability,
            "by_kind": {k.value: u for k, u in measured.result.by_kind().items()},
        })
    coop_u = rows[0]["measured_unavail"]
    lines = [format_comparison(results, "measured, by fault class"), ""]
    lines.append(f"{'version':<8}{'predicted':>12}{'measured':>12}{'vs COOP':>10}")
    for r in rows:
        red = 1.0 - r["measured_unavail"] / coop_u
        lines.append(f"{r['version']:<8}{r['predicted_unavail']:>12.5f}"
                     f"{r['measured_unavail']:>12.5f}{red:>9.0%}")
    lines.append("paper: MQ cuts ~87% of COOP's unavailability, FME ~94%")
    return FigureOutput("fig7", "HA techniques, predicted vs measured", rows,
                        "\n".join(lines))


def fig8(ev: Evaluation) -> FigureOutput:
    from repro.faults.faultload import table1_catalog

    fme = ev.va("FME")
    sfme = ev.va("S-FME")
    cmon = ev.va("C-MON")
    base_cat = table1_catalog(n_nodes=cmon.spec.server_count, with_frontend=True)
    xsw = ev.model_with_catalog(cmon, base_cat.with_backup_switch(), "X-SW")
    xswraid = ev.model_with_catalog(
        cmon, base_cat.with_backup_switch().with_raid(), "X-SW-RAID")
    results = [fme.result, sfme.result, cmon.result, xsw, xswraid]
    rows = [{"config": label, "unavailability": r.unavailability,
             "availability": r.availability,
             "by_kind": {k.value: u for k, u in r.by_kind().items()}}
            for label, r in zip(("FME", "S-FME", "C-MON", "X-SW", "X-SW-RAID"), results)]
    text = format_comparison(results)
    text += "\npaper: S-FME cuts ~40% vs FME; X-SW reaches ~99.98% (four-nines class)"
    return FigureOutput("fig8", "Stronger FME + hardware variants", rows, text)


# ---------------------------------------------------------------------------
# Figures 9-10: scaling
# ---------------------------------------------------------------------------

def _scaled_result(ev: Evaluation, name: str, k: int) -> ModelResult:
    """Section 6.3 extrapolation of a measured version to a k-times cluster."""
    va = ev.va(name)
    templates = {kind: scale_template(tpl, float(k))
                 for kind, tpl in va.templates.items()}
    model = AvailabilityModel(scale_catalog(_catalog_for(va), k), ev.config.environment)
    return model.evaluate(templates, va.normal_tput * k, va.offered_rate * k,
                          version=f"{name}x{k}")


def _catalog_for(va: VersionAvailability):
    from repro.faults.faultload import table1_catalog

    return va.spec.transform_catalog(
        table1_catalog(n_nodes=va.spec.server_count, with_frontend=va.spec.frontend))


def fig9(ev: Evaluation, measure_direct: bool = True) -> FigureOutput:
    """FME scaling: scaled model vs direct 8-node measurements.

    The paper's 8-node runs come in two memory configurations: per-node
    memory scaled linearly (128 MB each, our 120-file caches) and total
    cluster memory held constant (64 MB each at 8 nodes, our 60-file
    caches).  The scaled-model extrapolation always starts from the
    4-node 128 MB measurements.
    """
    base = ev.va("FME")
    rows = [{"config": "FME-4 (measured)", "unavailability": base.unavailability}]
    for k, label in ((2, "FME-8 (scaled model)"), (4, "FME-16 (scaled model)")):
        scaled = AvailabilityModel(
            scale_catalog(_catalog_for(base), k), ev.config.environment
        ).evaluate(
            {kind: scale_template(t, float(k)) for kind, t in base.templates.items()},
            base.normal_tput * k, base.offered_rate * k, version=f"FMEx{k}",
        )
        rows.append({"config": label, "unavailability": scaled.unavailability})
    if measure_direct:
        spec8 = version("FME").with_nodes(8)
        for cache_label, cache_files in (("128MB", 120), ("64MB", 60)):
            cfg = ev.config
            if cache_files != cfg.profile.press.cache_files:
                cfg = QuantifyConfig(
                    profile=cfg.profile.with_cache_files(cache_files),
                    seed=cfg.seed, campaign=cfg.campaign,
                    environment=cfg.environment, fit=cfg.fit)
            direct = quantify_version(spec8, cfg, jobs=ev.jobs)
            rows.append({"config": f"FME-8 {cache_label} (direct)",
                         "unavailability": direct.unavailability})
    lines = [f"{'config':<26}{'unavail':>10}"]
    lines += [f"{r['config']:<26}{r['unavailability']:>10.5f}" for r in rows]
    lines.append("paper: FME unavailability stays roughly constant with cluster "
                 "size; scaled model within ~25% of the 8-node measurement")
    return FigureOutput("fig9", "Scaling FME to 8/16 nodes", rows, "\n".join(lines))


def fig10(ev: Evaluation) -> FigureOutput:
    rows = []
    base = ev.va("COOP")
    for k, label in ((1, "COOP-4"), (2, "COOP-8"), (4, "COOP-16")):
        if k == 1:
            u = base.unavailability
        else:
            scaled = AvailabilityModel(
                scale_catalog(_catalog_for(base), k), ev.config.environment
            ).evaluate(
                {kind: scale_template(t, float(k)) for kind, t in base.templates.items()},
                base.normal_tput * k, base.offered_rate * k, version=label,
            )
            u = scaled.unavailability
        rows.append({"config": label, "unavailability": u})
    lines = [f"{'config':<10}{'unavail':>10}" ]
    lines += [f"{r['config']:<10}{r['unavailability']:>10.5f}" for r in rows]
    r4, r8, r16 = (r["unavailability"] for r in rows)
    lines.append(f"growth: 8/4 = x{r8 / r4:.2f}, 16/8 = x{r16 / r8:.2f} "
                 "(paper: roughly doubles at each step)")
    return FigureOutput("fig10", "Scaling COOP to 8/16 nodes", rows, "\n".join(lines))


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1(ev: Evaluation) -> FigureOutput:
    from repro.faults.faultload import DAY, table1_catalog

    catalog = table1_catalog(n_nodes=4, with_frontend=True)
    rows = [{
        "fault": FAULT_LABELS[r.kind], "mttf_days": r.mttf / DAY,
        "mttr_minutes": r.mttr / 60.0, "count": r.count,
    } for r in catalog]
    lines = [f"{'fault':<18}{'MTTF(days)':>12}{'MTTR(min)':>10}{'count':>7}"]
    for r in rows:
        lines.append(f"{r['fault']:<18}{r['mttf_days']:>12.1f}"
                     f"{r['mttr_minutes']:>10.1f}{r['count']:>7}")
    return FigureOutput("table1", "Fault loads (Table 1)", rows, "\n".join(lines))


def _ncsl_of_source(source: str) -> int:
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def ncsl_of(obj) -> int:
    """Non-comment source lines of a module/class/function."""
    return _ncsl_of_source(inspect.getsource(obj))


def table2(ev: Evaluation) -> FigureOutput:
    """Implementation effort (NCSL of *our* HA subsystems) vs gains."""
    import repro.ha.fme as fme_mod
    import repro.ha.membership as memb_mod
    import repro.ha.memclient as memc_mod
    from repro.press.server import PressServer

    membership_ncsl = ncsl_of(memb_mod) + ncsl_of(memc_mod)
    # The queue-monitoring policy proper (telemetry accounting in the
    # _dispatch_to_peer wrapper is not HA implementation effort).
    qmon_ncsl = ncsl_of(PressServer._dispatch_policy)
    fme_ncsl = ncsl_of(fme_mod)

    coop_u = ev.va("COOP").unavailability
    rows = []
    for label, names, ncsl in (
        ("Membership", "MEM", membership_ncsl),
        ("Queue Monitoring + Membership", "MQ", membership_ncsl + qmon_ncsl),
        ("Queue Monitoring + Membership + FME", "FME",
         membership_ncsl + qmon_ncsl + fme_ncsl),
    ):
        u = ev.va(names).unavailability
        rows.append({"enhancement": label, "ncsl": ncsl,
                     "reduction": 1.0 - u / coop_u})
    lines = [f"{'enhancement':<38}{'NCSL':>6}{'reduction':>11}"]
    for r in rows:
        lines.append(f"{r['enhancement']:<38}{r['ncsl']:>6}{r['reduction']:>10.0%}")
    lines.append("paper: 1638 NCSL total for a 94% reduction (11% of COOP's code)")
    return FigureOutput("table2", "Effort vs unavailability reduction", rows,
                        "\n".join(lines))


#: registry used by the benchmark harness
ALL_FIGURES: Dict[str, Callable[[Evaluation], FigureOutput]] = {
    "fig1a": fig1a,
    "fig1b": fig1b,
    "fig2": fig2,
    "fig4": fig4,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "table1": table1,
    "table2": table2,
}
