"""Scaled-down experiment profiles.

The paper's testbed served thousands of requests/second; simulating that
per-request is wastefully slow, and none of the availability *shapes*
depend on the absolute rate — they depend on ratios (cooperative vs
independent capacity, queue-fill time vs detection time, degraded vs
normal throughput).  A profile therefore scales service times UP and
queue capacities DOWN together, so that at the profile's request rate
the system sits at the same operating point as the paper's:

* COOP is CPU-bound on the main coordinating thread; INDEP is disk-bound
  with a much smaller effective cache -> roughly the 3x throughput gap
  of Figure 1(a);
* one stalled node back-pressures its peers' bounded queues *well before*
  the 15 s heartbeat detection, so cluster throughput hits ~0 during
  stage A exactly as in Figure 4;
* queue-monitoring thresholds trip within a couple of seconds of a peer
  stalling, as in the paper.

Queue capacities and thresholds are the paper's divided by the same
factor as the rates (8): 512-message send queues become 64, thresholds
512/256/128 become 64/32/16.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.disk import DiskParams
from repro.press.config import PressConfig
from repro.workload.client import ClientConfig
from repro.workload.trace import TraceConfig


@dataclass(frozen=True)
class ScaleProfile:
    """Everything needed to instantiate a comparable deployment."""

    name: str
    trace: TraceConfig
    press: PressConfig
    disk: DiskParams
    client: ClientConfig
    #: offered load for cooperative versions (~90% of COOP saturation)
    coop_rate: float
    #: offered load for independent versions (~90% of INDEP saturation)
    indep_rate: float
    #: INDEP misses constantly; it needs a deeper disk queue to run smoothly
    #: (COOP keeps the paper-shaped small queue so a dead disk stalls the
    #: main thread within seconds, as in Figure 4)
    indep_disk_queue: int = 64

    def scaled_rates(self, n_nodes: int, base_nodes: int = 4) -> "ScaleProfile":
        """Linear-throughput scaling assumption of Section 6.3."""
        factor = n_nodes / base_nodes
        return replace(
            self,
            coop_rate=self.coop_rate * factor,
            indep_rate=self.indep_rate * factor,
        )

    def with_cache_files(self, cache_files: int) -> "ScaleProfile":
        return replace(self, press=self.press.with_(cache_files=cache_files))


def _small() -> ScaleProfile:
    press = PressConfig(
        cache_files=120,
        cpu_parse=7.5e-3,
        cpu_serve=3.75e-3,
        cpu_forward=2.25e-3,
        cpu_remote_serve=3.0e-3,
        cpu_response=3.0e-3,
        cpu_disk_done=3.0e-3,
        cpu_control=0.45e-3,
        send_queue_capacity=128,
        disk_queue_capacity=8,
        accept_backlog=96,
        main_queue_capacity=64,
        conn_window=8,
        qmon_reroute_threshold=16,
        qmon_fail_requests=32,
        qmon_fail_total=64,
        qmon_probe_interval=8,
    )
    return ScaleProfile(
        name="small",
        trace=TraceConfig(n_files=640, file_size=27_000, zipf_alpha=0.9),
        press=press,
        disk=DiskParams(seek_time=0.21, transfer_bandwidth=30e6, queue_capacity=8),
        client=ClientConfig(request_rate=1.0, ramp_time=45.0),  # rate set per version
        coop_rate=230.0,
        indep_rate=62.0,
    )


def _tiny() -> ScaleProfile:
    """Cheaper variant for unit/integration tests: same time constants,
    lower load (shapes are coarser but mechanics identical)."""
    small = _small()
    return replace(small, name="tiny", coop_rate=120.0, indep_rate=45.0)


SMALL = _small()
TINY = _tiny()
