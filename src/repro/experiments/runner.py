"""World builder: assemble a complete deployment for a version spec.

A :class:`World` bundles everything a phase-1 campaign needs: the
simulated cluster (hosts, disks, network), the server processes, the HA
subsystems the version enables, the client workload, the fault injector,
and the shared marker log.  Build one world per experiment — worlds are
cheap and single-use (the campaign perturbs them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.configs import VersionSpec
from repro.experiments.profiles import ScaleProfile
from repro.faults.faultload import FaultCatalog, table1_catalog
from repro.faults.injector import FaultInjector
from repro.faults.types import FaultKind
from repro.ha.fme import FmeConfig, FmeDaemon, SfmeMonitor
from repro.ha.frontend import FrontEnd, FrontEndConfig, MonMode
from repro.ha.membership import (
    MembershipConfig,
    MembershipDaemon,
    MembershipNetwork,
    bootstrap_membership,
)
from repro.hardware.disk import Disk
from repro.hardware.host import Host
from repro.net.network import ClusterNetwork
from repro.obs.telemetry import Telemetry
from repro.press.config import PressConfig
from repro.press.fabric import ClusterFabric
from repro.press.indep import IndepServer
from repro.press.server import PressServer, bootstrap_cluster
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.series import MarkerLog
from repro.workload.client import ClientConfig, ClientPool, DnsRouter
from repro.workload.stats import RequestStats
from repro.workload.trace import SyntheticTrace


@dataclass(slots=True)
class World:
    """A live deployment plus its instrumentation."""

    version: str
    spec: VersionSpec
    profile: ScaleProfile
    env: Environment
    rngs: RngRegistry
    markers: MarkerLog
    net: ClusterNetwork
    hosts: List[Host]
    servers: List
    disks: Dict[str, Disk]
    injector: FaultInjector
    stats: RequestStats
    offered_rate: float
    catalog: FaultCatalog
    frontend: Optional[FrontEnd] = None
    membership_daemons: List[MembershipDaemon] = field(default_factory=list)
    fme_daemons: List[FmeDaemon] = field(default_factory=list)
    sfme: Optional[SfmeMonitor] = None
    reset_downtime: float = 10.0
    telemetry: Telemetry = field(default_factory=Telemetry)
    #: master RNG seed the world was built with (flight-record provenance)
    seed: int = 0

    def host_by_name(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    def server_on(self, host_name: str):
        return self.host_by_name(host_name).services["press"]

    # -- operator model ----------------------------------------------------
    def operator_reset(self) -> None:
        """Full service restart: the operator's stage-F action.

        Kills and restarts every reachable server process with fresh state
        and re-forms the cooperation set (a clean bring-up), which is what
        resolves splintered configurations in the base versions.
        """
        for srv in self.servers:
            if srv.host.is_up and srv.group.alive:
                srv.group.crash()
                srv.on_crash()

        env = self.env

        def _bring_up():
            yield env.timeout(self.reset_downtime)
            restarted = []
            for srv in self.servers:
                if not srv.host.is_up or srv.fault_latched:
                    continue
                if not srv.group.alive:
                    srv.group.revive()
                srv.start()
                if getattr(srv, "_running", False):
                    restarted.append(srv)
            if self.spec.cooperative and len(restarted) > 1:
                bootstrap_cluster(restarted)

        env.process(_bring_up(), name="operator-reset")

    # -- fault-target conveniences ---------------------------------------------
    def default_target(self, kind: FaultKind) -> str:
        """A sensible injection target for each fault kind (the paper
        injects one fault on one component; node n1 is the guinea pig)."""
        if kind is FaultKind.SWITCH_DOWN:
            return "switch0"
        if kind is FaultKind.FRONTEND_FAILURE:
            return "fe0"
        if kind is FaultKind.SCSI_TIMEOUT:
            return "n1.disk0"
        return "n1"

    def injectable_kinds(self) -> List[FaultKind]:
        """Fault kinds that exist in this configuration."""
        kinds = [
            FaultKind.LINK_DOWN,
            FaultKind.SWITCH_DOWN,
            FaultKind.SCSI_TIMEOUT,
            FaultKind.NODE_CRASH,
            FaultKind.NODE_FREEZE,
            FaultKind.APP_CRASH,
            FaultKind.APP_HANG,
        ]
        if not self.spec.cooperative:
            # Independent servers do not use the cluster network.
            kinds = [k for k in kinds
                     if k not in (FaultKind.LINK_DOWN, FaultKind.SWITCH_DOWN)]
        if self.frontend is not None:
            kinds.append(FaultKind.FRONTEND_FAILURE)
        return kinds


def build_world(
    spec: VersionSpec,
    profile: ScaleProfile,
    seed: int = 0,
    rate: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    tiebreak_seed: Optional[int] = None,
    monitor=None,
) -> World:
    """Construct a ready-to-run deployment for ``spec``.

    ``rate`` overrides the offered load; by default cooperative versions
    are loaded at ~90% of 4-node COOP saturation and independent versions
    at ~90% of INDEP saturation, both scaled linearly with cluster size
    (Section 6.3's scaling assumption).

    ``telemetry`` defaults to an enabled bundle (tracing + metrics, no
    kernel profiling); pass ``Telemetry.disabled()`` for zero-overhead
    runs or ``Telemetry(profile_kernel=True)`` to profile the kernel.

    ``tiebreak_seed`` perturbs same-instant event order (the race
    detector's schedule sanitizer; see :mod:`repro.analysis.racecheck`)
    and ``monitor`` attaches a kernel monitor such as its
    :class:`~repro.analysis.racecheck.ScheduleRecorder`.  A ``monitor``
    replaces any profiler ``telemetry`` would attach, so don't combine
    it with ``Telemetry(profile_kernel=True)``.
    """
    env = Environment(tiebreak_seed=tiebreak_seed)
    telemetry = telemetry if telemetry is not None else Telemetry()
    telemetry.attach(env)
    if monitor is not None:
        bind = getattr(monitor, "bind", None)
        if bind is not None:
            bind(env)
        env.set_monitor(monitor)
    rngs = RngRegistry(seed)
    markers = telemetry.marker_log()
    net = ClusterNetwork(env)
    fabric = ClusterFabric(env, net)
    trace_cfg = profile.trace
    if spec.n_nodes != 4:
        # Section 6.3 assumes the bottleneck stays the same as the cluster
        # grows, which requires the data set to grow with it (the paper
        # sized files so that misses persisted at 5 nodes); otherwise a
        # bigger cluster's cache swallows the working set and faults stop
        # propagating.
        from dataclasses import replace as _replace

        factor = spec.n_nodes / 4.0
        trace_cfg = _replace(trace_cfg, n_files=int(round(trace_cfg.n_files * factor)))
    trace = SyntheticTrace(trace_cfg, rngs.stream("trace"))

    press_cfg: PressConfig = profile.press.with_(
        queue_monitoring=spec.queue_monitoring,
        use_membership=spec.membership,
        ring_detection=spec.ring_detection,
    )
    if not spec.cooperative:
        press_cfg = press_cfg.with_(disk_queue_capacity=profile.indep_disk_queue)

    hosts: List[Host] = []
    servers: List = []
    disks: Dict[str, Disk] = {}
    for i in range(spec.server_count):
        host = Host(env, f"n{i}", i)
        net.attach(host)
        for d in range(2):
            disk = Disk(env, host, d, profile.disk, rngs.stream(f"disk.{i}.{d}"))
            disks[disk.name] = disk
        if spec.cooperative:
            server = PressServer(host, i, press_cfg, trace, fabric, markers,
                                 telemetry=telemetry)
        else:
            server = IndepServer(host, i, press_cfg, trace, markers,
                                 telemetry=telemetry)
        hosts.append(host)
        servers.append(server)

    membership_daemons: List[MembershipDaemon] = []
    if spec.membership:
        mnet = MembershipNetwork(net)
        for host, server in zip(hosts, servers):
            daemon = MembershipDaemon(host, server.node_id, mnet, MembershipConfig(), markers,
                                      telemetry=telemetry)
            server.shared_view = daemon.shared_view
            membership_daemons.append(daemon)

    fme_daemons: List[FmeDaemon] = []
    if spec.fme:
        for host, server in zip(hosts, servers):
            fme_daemons.append(FmeDaemon(host, server, FmeConfig(), markers,
                                         telemetry=telemetry))

    for host in hosts:
        host.start_all()
    if spec.cooperative:
        bootstrap_cluster(servers)
    if spec.membership:
        bootstrap_membership(membership_daemons)

    frontend: Optional[FrontEnd] = None
    sfme: Optional[SfmeMonitor] = None
    if spec.frontend:
        fe_host = Host(env, "fe0", 1000)
        fe_cfg = FrontEndConfig(
            mode=MonMode.CONNECTION if spec.fe_conn_monitoring else MonMode.PING
        )
        frontend = FrontEnd(env, fe_host, servers, fe_cfg, markers,
                            telemetry=telemetry)
        if spec.sfme:
            sfme = SfmeMonitor(env, frontend, servers, markers=markers)

    router = frontend if frontend is not None else DnsRouter(servers)

    if rate is None:
        base = profile.coop_rate if spec.cooperative else profile.indep_rate
        rate = base * (spec.n_nodes / 4.0)
    stats = RequestStats()
    client_cfg = ClientConfig(
        request_rate=rate,
        connect_timeout=profile.client.connect_timeout,
        request_timeout=profile.client.request_timeout,
        network_rtt=profile.client.network_rtt,
        ramp_time=profile.client.ramp_time,
        ramp_start=profile.client.ramp_start,
    )
    pool = ClientPool(env, trace, router, stats, client_cfg, rngs.stream("clients"),
                      telemetry=telemetry)
    pool.start()

    injector = FaultInjector(
        env,
        hosts={h.name: h for h in hosts},
        network=net,
        disks=disks,
        frontends={"fe0": frontend} if frontend is not None else {},
        app_of=lambda host: host.services["press"],
        markers=markers,
        telemetry=telemetry,
    )

    catalog = spec.transform_catalog(
        table1_catalog(
            n_nodes=spec.server_count,
            disks_per_node=2,
            with_frontend=spec.frontend,
        )
    )

    return World(
        version=spec.name,
        spec=spec,
        profile=profile,
        env=env,
        rngs=rngs,
        markers=markers,
        net=net,
        hosts=hosts,
        servers=servers,
        disks=disks,
        injector=injector,
        stats=stats,
        offered_rate=rate,
        catalog=catalog,
        frontend=frontend,
        membership_daemons=membership_daemons,
        fme_daemons=fme_daemons,
        sfme=sfme,
        telemetry=telemetry,
        seed=seed,
    )
