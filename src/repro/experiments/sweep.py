"""Generic parameter-sweep harness.

The ablation benchmarks and any what-if study share one shape: vary one
or two knobs of a profile/config, rebuild the deployment, run the same
measurement, and tabulate.  :class:`Sweep` packages that shape so a
study is three lines::

    sweep = Sweep("heartbeat", values=[2.5, 5.0, 10.0],
                  apply=lambda p, v: replace(p, press=p.press.with_(heartbeat_interval=v)))
    table = sweep.run(measure=my_measurement_fn)

Measurements receive a ready :class:`QuantifyConfig` for the varied
profile and return a dict of numbers; the result is a list of rows plus
a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from repro.core.quantify import QuantifyConfig
from repro.experiments.profiles import SMALL, ScaleProfile

#: a measurement: config -> {metric: value}
Measurement = Callable[[QuantifyConfig], Dict[str, float]]
#: a knob: (profile, value) -> new profile
Apply = Callable[[ScaleProfile, Any], ScaleProfile]


@dataclass
class SweepResult:
    """Rows of {knob value, metrics...} plus a rendering."""

    name: str
    rows: List[Dict[str, Any]]

    def column(self, metric: str) -> List[float]:
        return [row[metric] for row in self.rows]

    def monotone(self, metric: str, increasing: bool = True) -> bool:
        """Whether ``metric`` is (weakly) monotone across the rows.

        Raises :class:`ValueError` with fewer than two rows: a 0- or
        1-point sweep has no trend, and the old vacuous ``True`` let
        ablation assertions pass against an empty table.
        """
        values = self.column(metric)
        if len(values) < 2:
            raise ValueError(
                f"monotone({metric!r}) needs at least two rows; "
                f"sweep {self.name!r} has {len(values)}"
            )
        pairs = zip(values, values[1:])
        if increasing:
            return all(a <= b for a, b in pairs)
        return all(a >= b for a, b in pairs)

    def text(self) -> str:
        if not self.rows:
            return f"sweep {self.name}: no rows"
        columns = list(self.rows[0].keys())
        lines = ["".join(f"{c:>16}" for c in columns)]
        for row in self.rows:
            cells = "".join(
                f"{row[c]:>16.4g}" if isinstance(row[c], float) else f"{row[c]!s:>16}"
                for c in columns
            )
            lines.append(cells)
        return "\n".join(lines)


@dataclass
class Sweep:
    """One-dimensional sweep over a profile knob."""

    name: str
    values: Sequence[Any]
    apply: Apply
    base_profile: ScaleProfile = SMALL
    quick: bool = True
    seed: int = 0

    def config_for(self, value: Any) -> QuantifyConfig:
        profile = self.apply(self.base_profile, value)
        make = QuantifyConfig.quick if self.quick else QuantifyConfig
        return make(profile=profile, seed=self.seed)

    def run(self, measure: Measurement, jobs: int = 1) -> SweepResult:
        """Measure every point; ``jobs > 1`` fans them out in parallel.

        Sweep points are independent (each rebuilds its own world from
        the sweep seed), so the parallel path runs them on a spawn-based
        process pool under the same pinned-``PYTHONHASHSEED`` discipline
        as :mod:`repro.parallel` and collects rows in *value order*,
        never completion order — a parallel sweep tabulates identically
        to a serial one.  ``measure`` must then be picklable: a
        module-level function or a ``functools.partial`` of one.
        """
        if jobs > 1:
            return self._run_parallel(measure, jobs)
        rows: List[Dict[str, Any]] = []
        for value in self.values:
            metrics = measure(self.config_for(value))
            rows.append({self.name: value, **metrics})
        return SweepResult(self.name, rows)

    def _run_parallel(self, measure: Measurement, jobs: int) -> SweepResult:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # Imported lazily: repro.parallel imports repro.core.quantify,
        # which reaches back into this package's builders.
        from repro.parallel.executor import pinned_hashseed
        from repro.parallel.worker import worker_init

        configs = [self.config_for(value) for value in self.values]
        ctx = multiprocessing.get_context("spawn")
        with pinned_hashseed():
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(configs)),
                mp_context=ctx,
                initializer=worker_init,
            )
            try:
                futures = [pool.submit(measure, cfg) for cfg in configs]
                results = [f.result() for f in futures]  # value order
            finally:
                pool.shutdown()
        rows = [{self.name: value, **metrics}
                for value, metrics in zip(self.values, results)]
        return SweepResult(self.name, rows)


def grid(sweep_a: Sweep, sweep_b: Sweep, measure: Measurement) -> SweepResult:
    """Two-dimensional sweep (cartesian product of two knobs)."""
    rows: List[Dict[str, Any]] = []
    for va in sweep_a.values:
        for vb in sweep_b.values:
            profile = sweep_b.apply(sweep_a.apply(sweep_a.base_profile, va), vb)
            make = QuantifyConfig.quick if sweep_a.quick else QuantifyConfig
            metrics = measure(make(profile=profile, seed=sweep_a.seed))
            rows.append({sweep_a.name: va, sweep_b.name: vb, **metrics})
    return SweepResult(f"{sweep_a.name}x{sweep_b.name}", rows)
