"""Fault injection: the Mendosus stand-in.

Implements the eight fault types of Table 1 (link down, switch down, SCSI
timeout, node crash, node freeze, application crash, application hang,
front-end failure), a catalog of their MTTFs/MTTRs, an injector that
applies/repairs them against the simulated cluster, and the single-fault
experiment driver used by phase 1 of the quantification methodology.
"""

from repro.faults.types import FaultKind, FaultComponent, ALL_FAULT_KINDS
from repro.faults.faultload import (
    FaultRate,
    FaultCatalog,
    table1_catalog,
    SECOND,
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    MONTH,
    YEAR,
)
from repro.faults.injector import FaultInjector, ActiveFault
from repro.faults.campaign import (
    SingleFaultCampaign,
    ExperimentTrace,
    CampaignCell,
    CampaignConfig,
)

__all__ = [
    "FaultKind",
    "FaultComponent",
    "ALL_FAULT_KINDS",
    "FaultRate",
    "FaultCatalog",
    "table1_catalog",
    "FaultInjector",
    "ActiveFault",
    "SingleFaultCampaign",
    "ExperimentTrace",
    "CampaignCell",
    "CampaignConfig",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "MONTH",
    "YEAR",
]
