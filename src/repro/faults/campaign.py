"""Phase-1 experiment driver: single-fault injection with observation.

Reproduces the paper's measurement discipline: the service is warmed to a
stable throughput, one fault is injected and left active long enough to
trigger every template stage, the fault is repaired, post-repair behaviour
is observed, and — if the service remains degraded (e.g. a splintered
COOP cluster) — an operator reset is performed and post-reset behaviour is
observed.  The result is an :class:`ExperimentTrace` that the 7-stage
template fitter (:mod:`repro.core.template`) consumes.

The driver expects a *world* object exposing::

    world.env        -- simulation Environment
    world.stats      -- workload stats with a ``.series`` ThroughputSeries
    world.markers    -- MarkerLog shared with the injector and the servers
    world.injector   -- FaultInjector
    world.operator_reset() -- full service restart (stage F)

(see :class:`repro.experiments.runner.World`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.faults.types import FaultComponent, FaultKind
from repro.sim.series import MarkerLog, ThroughputSeries


@dataclass(frozen=True)
class CampaignConfig:
    """Timing of a single-fault experiment (all seconds)."""

    warmup: float = 60.0  # paper: 5 min warm to 90% of saturation
    normal_window: float = 20.0  # tail of warmup used to measure T_normal
    fault_active: float = 60.0  # how long the fault stays before repair
    post_repair_observe: float = 45.0  # window to measure stages D/E
    operator_threshold: float = 0.75  # below this fraction of normal -> reset
    reset_duration: float = 10.0  # stage F length (service restart)
    post_reset_observe: float = 45.0  # window to measure stage G + recovery

    def __post_init__(self) -> None:
        if self.normal_window > self.warmup:
            raise ValueError("normal_window cannot exceed warmup")
        if not 0.0 < self.operator_threshold <= 1.0:
            raise ValueError("operator_threshold must be in (0, 1]")
        for name in ("warmup", "fault_active", "post_repair_observe",
                     "reset_duration", "post_reset_observe"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CampaignCell:
    """One self-contained cell of a campaign grid: (version, fault, seed).

    Cells are the unit of fan-out for the parallel executor
    (:mod:`repro.parallel`): every field is a plain value, so a cell
    pickles cheaply into a spawned worker, and ``index`` fixes the cell's
    position in the grid — results are merged in index order, never in
    completion order, which is what keeps a parallel run byte-identical
    to a serial one.
    """

    index: int
    version: str
    fault: str  # FaultKind value
    seed: int
    target: Optional[str] = None  # None: the world's default target

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("cell index must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        FaultKind(self.fault)  # unknown fault values fail at build time

    @property
    def kind(self) -> FaultKind:
        return FaultKind(self.fault)

    @property
    def cell_id(self) -> str:
        """Stable merge key: grid position plus the cell coordinates."""
        return f"{self.index:04d}:{self.version}:{self.fault}:{self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CampaignCell":
        return cls(
            index=int(d["index"]),
            version=str(d["version"]),
            fault=str(d["fault"]),
            seed=int(d["seed"]),
            target=d.get("target"),
        )


@dataclass
class ExperimentTrace:
    """Everything phase 2 needs to know about one injection experiment."""

    component: FaultComponent
    config: CampaignConfig
    series: ThroughputSeries
    markers: MarkerLog
    t_inject: float
    t_repair: float
    t_end: float
    normal_tput: float
    offered_rate: float
    t_reset: Optional[float] = None
    version: str = ""

    @property
    def t_detect(self) -> Optional[float]:
        """First detection/recovery-action marker after injection.

        Any subsystem noticing the fault marks ``detected`` (ring
        exclusion, membership exclusion, queue-monitor trip, Mon removing
        a node from the front-end, FME enforcement).
        """
        times = [t for t, _ in self.markers.all("detected") if t >= self.t_inject]
        return min(times) if times else None

    def rate(self, t0: float, t1: float) -> float:
        return self.series.mean_rate(t0, t1)


class SingleFaultCampaign:
    """Runs single-fault experiments against a built world."""

    def __init__(self, world, config: CampaignConfig = CampaignConfig()):
        self.world = world
        self.config = config

    def run(self, kind: FaultKind, target: str) -> ExperimentTrace:
        """Warm up, inject one fault, observe through repair (and operator
        reset if the service stays degraded), and return the trace.

        The world must be freshly built: the campaign assumes the clock
        starts at (or before) the beginning of warmup.
        """
        cfg = self.config
        env = self.world.env
        env.run(until=env.now + cfg.warmup)
        t_warm_end = env.now
        normal = self.world.stats.series.mean_rate(
            t_warm_end - cfg.normal_window, t_warm_end
        )

        fault = self.world.injector.inject(kind, target)
        t_inject = env.now
        env.run(until=t_inject + cfg.fault_active)
        self.world.injector.repair(fault)
        t_repair = env.now

        env.run(until=t_repair + cfg.post_repair_observe)
        # Operator model: watch the tail of the post-repair window; if the
        # service has not recovered to near-normal, reset it (stage F).
        tail = min(cfg.post_repair_observe, 20.0)
        post_rate = self.world.stats.series.mean_rate(env.now - tail, env.now)
        t_reset: Optional[float] = None
        if normal > 0 and post_rate < cfg.operator_threshold * normal:
            t_reset = env.now
            self.world.markers.mark(t_reset, "operator_reset", fault.component)
            self.world.operator_reset()
            env.run(until=t_reset + cfg.reset_duration + cfg.post_reset_observe)

        return ExperimentTrace(
            component=fault.component,
            config=cfg,
            series=self.world.stats.series,
            markers=self.world.markers,
            t_inject=t_inject,
            t_repair=t_repair,
            t_end=env.now,
            normal_tput=normal,
            offered_rate=getattr(self.world, "offered_rate", normal),
            t_reset=t_reset,
            version=getattr(self.world, "version", ""),
        )
