"""Expected fault loads: Table 1 of the paper, plus hardware variants.

All times are in seconds.  ``table1_catalog`` reproduces the paper's
catalog for an n-node cluster; the ``with_*`` transforms implement the
hardware-redundancy what-ifs of Figures 6 and 8 by rewriting MTTFs with
the composite-MTTF model (:mod:`repro.hardware.raid`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional

from repro.faults.types import FaultKind
from repro.hardware.raid import redundant_pair_mttf

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
MONTH = 30 * DAY
YEAR = 365 * DAY


@dataclass(frozen=True)
class FaultRate:
    """Failure behaviour of one component *class*.

    ``mttf``/``mttr`` are per component; ``count`` is how many components
    of the class exist in the configuration, so the class-level failure
    rate is ``count / mttf``.
    """

    kind: FaultKind
    mttf: float
    mttr: float
    count: int

    def __post_init__(self) -> None:
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError(f"{self.kind}: MTTF/MTTR must be positive")
        if self.count < 0:
            raise ValueError(f"{self.kind}: count must be non-negative")

    @property
    def class_rate(self) -> float:
        """Failures per second across all components of the class."""
        return self.count / self.mttf


class FaultCatalog:
    """An immutable mapping FaultKind -> FaultRate."""

    def __init__(self, rates: Iterable[FaultRate]):
        self._rates: Dict[FaultKind, FaultRate] = {}
        for rate in rates:
            if rate.kind in self._rates:
                raise ValueError(f"duplicate rate for {rate.kind}")
            self._rates[rate.kind] = rate

    def __getitem__(self, kind: FaultKind) -> FaultRate:
        return self._rates[kind]

    def __contains__(self, kind: FaultKind) -> bool:
        return kind in self._rates

    def __iter__(self) -> Iterator[FaultRate]:
        return iter(self._rates.values())

    def kinds(self) -> List[FaultKind]:
        return list(self._rates.keys())

    def get(self, kind: FaultKind) -> Optional[FaultRate]:
        return self._rates.get(kind)

    # -- transforms (return new catalogs) ----------------------------------
    def replace_rate(self, kind: FaultKind, **changes) -> "FaultCatalog":
        rates = [replace(r, **changes) if r.kind == kind else r for r in self]
        return FaultCatalog(rates)

    def without(self, *kinds: FaultKind) -> "FaultCatalog":
        return FaultCatalog(r for r in self if r.kind not in kinds)

    def scale_counts(self, factor: int, kinds: Optional[Iterable[FaultKind]] = None) -> "FaultCatalog":
        """Multiply component counts (cluster scaling, Sec 6.3)."""
        targets = set(kinds) if kinds is not None else None
        rates = [
            replace(r, count=r.count * factor)
            if (targets is None or r.kind in targets)
            else r
            for r in self
        ]
        return FaultCatalog(rates)

    def with_raid(self) -> "FaultCatalog":
        """RAID-1 all disks: SCSI MTTF becomes the mirrored-pair MTTF."""
        scsi = self[FaultKind.SCSI_TIMEOUT]
        return self.replace_rate(
            FaultKind.SCSI_TIMEOUT, mttf=redundant_pair_mttf(scsi.mttf, scsi.mttr)
        )

    def with_backup_switch(self) -> "FaultCatalog":
        """Fail-over switch: switch MTTF becomes the redundant-pair MTTF."""
        sw = self[FaultKind.SWITCH_DOWN]
        return self.replace_rate(
            FaultKind.SWITCH_DOWN, mttf=redundant_pair_mttf(sw.mttf, sw.mttr)
        )

    def with_redundant_frontend(self) -> "FaultCatalog":
        """Redundant front-end pair with heartbeats + IP take-over."""
        if FaultKind.FRONTEND_FAILURE not in self:
            return self
        fe = self[FaultKind.FRONTEND_FAILURE]
        return self.replace_rate(
            FaultKind.FRONTEND_FAILURE, mttf=redundant_pair_mttf(fe.mttf, fe.mttr)
        )


def table1_catalog(
    n_nodes: int = 4,
    disks_per_node: int = 2,
    with_frontend: bool = False,
) -> FaultCatalog:
    """The paper's Table 1 for an ``n_nodes`` cluster.

    The front-end row is included only for configurations that deploy one
    (FE-X and later versions); the paper's table lists it because most of
    the studied versions do.
    """
    rates = [
        FaultRate(FaultKind.LINK_DOWN, 6 * MONTH, 3 * MINUTE, n_nodes),
        FaultRate(FaultKind.SWITCH_DOWN, 1 * YEAR, 1 * HOUR, 1),
        FaultRate(FaultKind.SCSI_TIMEOUT, 1 * YEAR, 1 * HOUR, n_nodes * disks_per_node),
        FaultRate(FaultKind.NODE_CRASH, 2 * WEEK, 3 * MINUTE, n_nodes),
        FaultRate(FaultKind.NODE_FREEZE, 2 * WEEK, 3 * MINUTE, n_nodes),
        FaultRate(FaultKind.APP_CRASH, 2 * MONTH, 3 * MINUTE, n_nodes),
        FaultRate(FaultKind.APP_HANG, 2 * MONTH, 3 * MINUTE, n_nodes),
    ]
    if with_frontend:
        rates.append(FaultRate(FaultKind.FRONTEND_FAILURE, 6 * MONTH, 3 * MINUTE, 1))
    return FaultCatalog(rates)
