"""The fault injector (Mendosus equivalent).

Applies and repairs concrete faults against the simulated cluster.  The
injector is deliberately ignorant of PRESS: it is wired with lookup
tables (hosts, disks, network, front-ends, and an ``app_of`` resolver for
application-level faults) so it can drive any service built on the
substrate, matching Mendosus's role as a generic SAN-based test-bed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.faults.types import FaultComponent, FaultKind
from repro.hardware.host import Host, NodeService
from repro.net.network import ClusterNetwork
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.kernel import Environment
from repro.sim.series import MarkerLog


@dataclass
class ActiveFault:
    """Handle for an injected-but-not-yet-repaired fault."""

    component: FaultComponent
    injected_at: float
    repaired_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.repaired_at is None


class FaultInjector:
    """Inject/repair the eight fault kinds of Table 1."""

    __slots__ = ("env", "hosts", "network", "disks", "frontends", "app_of",
                 "markers", "_metrics", "_counters", "_active")

    def __init__(
        self,
        env: Environment,
        hosts: Dict[str, Host],
        network: Optional[ClusterNetwork] = None,
        disks: Optional[Dict[str, object]] = None,
        frontends: Optional[Dict[str, object]] = None,
        app_of: Optional[Callable[[Host], NodeService]] = None,
        markers: Optional[MarkerLog] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.env = env
        self.hosts = hosts
        self.network = network
        self.disks = disks or {}
        self.frontends = frontends or {}
        self.app_of = app_of
        self.markers = markers if markers is not None else MarkerLog()
        self._metrics = (telemetry if telemetry is not None else NULL_TELEMETRY).metrics
        self._counters: Dict[tuple, object] = {}
        self._active: Dict[FaultComponent, ActiveFault] = {}

    # -- public API ----------------------------------------------------------
    def inject(self, kind: FaultKind, target: str) -> ActiveFault:
        comp = FaultComponent(kind, target)
        if comp in self._active and self._active[comp].active:
            raise ValueError(f"{comp} already active")
        self._apply(comp)
        fault = ActiveFault(comp, self.env.now)
        self._active[comp] = fault
        self._counter("faults_injected", kind).inc()
        self.markers.mark(self.env.now, "fault_injected", comp)
        return fault

    def repair(self, fault: ActiveFault) -> None:
        if not fault.active:
            return
        self._undo(fault.component)
        fault.repaired_at = self.env.now
        self._counter("faults_repaired", fault.component.kind).inc()
        self.markers.mark(self.env.now, "fault_repaired", fault.component)

    def inject_for(self, kind: FaultKind, target: str, duration: float) -> ActiveFault:
        """Inject now and schedule the repair ``duration`` seconds later."""
        fault = self.inject(kind, target)

        def _repair_later():
            yield self.env.timeout(duration)
            self.repair(fault)

        self.env.process(_repair_later(), name=f"repair-{kind.value}")
        return fault

    def _counter(self, name: str, kind: FaultKind):
        """Per-(name, kind) counter, bound once: the registry lookup
        happens on the first fault of each kind, not on every event."""
        ctr = self._counters.get((name, kind))
        if ctr is None:
            ctr = self._metrics.counter(name, kind=kind.value)  # reprolint: disable=REP019 -- cached above: the registry lookup runs once per fault kind, not per event
            self._counters[(name, kind)] = ctr
        return ctr

    def active_faults(self):
        return [f for f in self._active.values() if f.active]

    # -- fault mechanics ----------------------------------------------------------
    def _apply(self, comp: FaultComponent) -> None:
        kind, target = comp.kind, comp.target
        if kind is FaultKind.LINK_DOWN:
            self._require_network().link(self._host(target)).up = False
        elif kind is FaultKind.SWITCH_DOWN:
            self._require_network().switch.up = False
        elif kind is FaultKind.SCSI_TIMEOUT:
            self._disk(target).set_faulty()
        elif kind is FaultKind.NODE_CRASH:
            self._host(target).crash()
        elif kind is FaultKind.NODE_FREEZE:
            self._host(target).freeze()
        elif kind is FaultKind.APP_CRASH:
            self._app(target).inject_crash()
        elif kind is FaultKind.APP_HANG:
            self._app(target).inject_hang()
        elif kind is FaultKind.FRONTEND_FAILURE:
            self._frontend(target).fail()
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown fault kind {kind}")

    def _undo(self, comp: FaultComponent) -> None:
        kind, target = comp.kind, comp.target
        if kind is FaultKind.LINK_DOWN:
            self._require_network().link(self._host(target)).up = True
        elif kind is FaultKind.SWITCH_DOWN:
            self._require_network().switch.up = True
        elif kind is FaultKind.SCSI_TIMEOUT:
            self._disk(target).repair()
        elif kind is FaultKind.NODE_CRASH:
            self._host(target).boot()
        elif kind is FaultKind.NODE_FREEZE:
            self._host(target).unfreeze()
        elif kind is FaultKind.APP_CRASH:
            self._app(target).repair_crash()
        elif kind is FaultKind.APP_HANG:
            self._app(target).repair_hang()
        elif kind is FaultKind.FRONTEND_FAILURE:
            self._frontend(target).repair()
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown fault kind {kind}")

    # -- lookups ----------------------------------------------------------
    def _host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"no host {name!r}") from None

    def _disk(self, name: str):
        try:
            return self.disks[name]
        except KeyError:
            raise KeyError(f"no disk {name!r}") from None

    def _frontend(self, name: str):
        try:
            return self.frontends[name]
        except KeyError:
            raise KeyError(f"no front-end {name!r}") from None

    def _app(self, host_name: str) -> NodeService:
        if self.app_of is None:
            raise ValueError("injector not configured with an app resolver")
        return self.app_of(self._host(host_name))

    def _require_network(self) -> ClusterNetwork:
        if self.network is None:
            raise ValueError("injector not configured with a network")
        return self.network
