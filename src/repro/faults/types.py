"""Fault taxonomy (Table 1 of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(str, enum.Enum):
    """The eight injectable fault types."""

    LINK_DOWN = "link_down"
    SWITCH_DOWN = "switch_down"
    SCSI_TIMEOUT = "scsi_timeout"
    NODE_CRASH = "node_crash"
    NODE_FREEZE = "node_freeze"
    APP_CRASH = "app_crash"
    APP_HANG = "app_hang"
    FRONTEND_FAILURE = "frontend_failure"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Injection order used by campaigns and reports (Table 1 order).
ALL_FAULT_KINDS = (
    FaultKind.LINK_DOWN,
    FaultKind.SWITCH_DOWN,
    FaultKind.SCSI_TIMEOUT,
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
    FaultKind.FRONTEND_FAILURE,
)

#: Human-readable labels matching the paper's figure legends.
FAULT_LABELS = {
    FaultKind.LINK_DOWN: "internal link",
    FaultKind.SWITCH_DOWN: "internal switch",
    FaultKind.SCSI_TIMEOUT: "scsi timeout",
    FaultKind.NODE_CRASH: "node crash",
    FaultKind.NODE_FREEZE: "node freeze",
    FaultKind.APP_CRASH: "application crash",
    FaultKind.APP_HANG: "application hang",
    FaultKind.FRONTEND_FAILURE: "frontend failure",
}


@dataclass(frozen=True)
class FaultComponent:
    """A concrete faultable component instance.

    ``target`` names the instance: a host name for node/app faults, a disk
    name for SCSI faults, a host name for link faults, or a device name
    for switch/front-end faults.
    """

    kind: FaultKind
    target: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}@{self.target}"
