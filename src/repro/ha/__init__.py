"""High-availability subsystems (Section 4 of the paper).

Four COTS-style components, each deliberately *self-contained* with its
own view of the system — the paper's point is precisely that these views
overlap and can conflict until Fault Model Enforcement reconciles them:

* :mod:`repro.ha.frontend` — LVS-like front-end request distribution with
  Mon-style ping monitoring (and the C-MON connection-monitoring variant);
* :mod:`repro.ha.membership` — the three-round ring membership service
  with two-phase-commit add/remove and multicast join;
* :mod:`repro.ha.memclient` — the shared-memory view segment and the
  client library (NodeIn/NodeOut/NodeDown callbacks);
* queue monitoring is a policy inside PRESS itself
  (``PressConfig.queue_monitoring``; Section 4.3 of the paper);
* :mod:`repro.ha.fme` — Fault Model Enforcement: a per-node daemon that
  maps un-modeled faults (disk failure, application hang) into modeled
  ones (node offline, application crash-restart), plus the S-FME global
  cooperation-set monitor.
"""

from repro.ha.faultmodel import (
    PRESS_FAULT_MODEL,
    AbstractFault,
    EnforcementAction,
    FaultModel,
    Symptoms,
)
from repro.ha.frontend import FrontEnd, FrontEndConfig, MonMode
from repro.ha.membership import MembershipDaemon, MembershipConfig, MembershipNetwork
from repro.ha.memclient import SharedView, MembershipClient
from repro.ha.fme import FmeDaemon, FmeConfig, SfmeMonitor

__all__ = [
    "PRESS_FAULT_MODEL",
    "AbstractFault",
    "EnforcementAction",
    "FaultModel",
    "Symptoms",
    "FrontEnd",
    "FrontEndConfig",
    "MonMode",
    "MembershipDaemon",
    "MembershipConfig",
    "MembershipNetwork",
    "SharedView",
    "MembershipClient",
    "FmeDaemon",
    "FmeConfig",
    "SfmeMonitor",
]
