"""The abstract fault model and its enforcement mapping (Section 4.5).

FME's premise: the *designers* pick a small set of faults the system can
correctly detect and recover from (the abstract fault model), and every
other fault is actively *transformed* into one of them — even if that
means failing a component that still works (shutting down a whole node
because its disk died).

This module makes the concept first-class and declarative:

* :class:`AbstractFault` — the modeled fault vocabulary;
* :class:`Symptoms` — what a per-node enforcement agent can observe
  (disk probes, application probes);
* :class:`FaultModel` — the designers' chosen model plus the mapping
  from observed symptoms to an :class:`EnforcementAction`.

:class:`repro.ha.fme.FmeDaemon` consults :data:`PRESS_FAULT_MODEL` to
decide its actions, so the policy is separated from the probing
machinery and can be re-used for other services (the bookstore's model
would differ only in its symptom sources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet


class AbstractFault(str, enum.Enum):
    """Faults the recovery machinery is designed to handle."""

    NODE_CRASH = "node_crash"
    APP_CRASH = "app_crash"
    NODE_UNREACHABLE = "node_unreachable"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class EnforcementAction(str, enum.Enum):
    """How an un-modeled fault is transformed into a modeled one."""

    NONE = "none"  # everything looks healthy (or is already modeled)
    RESTART_APP = "restart_app"  # => app crash-restart
    OFFLINE_NODE = "offline_node"  # => node crash (repair + reboot later)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Symptoms:
    """One round of observations by a per-node enforcement agent."""

    disks_ok: bool
    app_responsive: bool
    #: number of consecutive observation rounds with these symptoms;
    #: transient blips (a single slow probe) must not trigger enforcement
    confirmations: int = 1

    @property
    def healthy(self) -> bool:
        return self.disks_ok and self.app_responsive


@dataclass(frozen=True, slots=True)
class FaultModel:
    """The designers' abstract fault model + enforcement policy."""

    name: str
    handled: FrozenSet[AbstractFault]
    #: observation rounds required before acting
    min_confirmations: int = 2

    def covers(self, fault: AbstractFault) -> bool:
        return fault in self.handled

    def enforce(self, symptoms: Symptoms) -> EnforcementAction:
        """Map observed symptoms to the enforcement action.

        The paper's resolution order (Section 4.5):

        * disk dead *and* application stuck -> the disk failure has taken
          the application down; take the whole node offline for repair
          (=> node crash, which the membership/ring/Mon machinery already
          handles, and which parks the node until the disk is replaced);
        * application stuck but disks fine -> an application hang or
          wedge; kill and restart it (=> app crash-restart, which
          triggers the rejoin protocol);
        * application responsive -> no enforcement, even if a disk looks
          bad: a disk failure that the application has not yet noticed
          may be repaired in place (and will be converted the moment the
          application wedges).
        """
        if symptoms.healthy:
            return EnforcementAction.NONE
        if symptoms.confirmations < self.min_confirmations:
            return EnforcementAction.NONE
        if symptoms.app_responsive:
            return EnforcementAction.NONE
        if not symptoms.disks_ok:
            if AbstractFault.NODE_CRASH in self.handled:
                return EnforcementAction.OFFLINE_NODE
            return EnforcementAction.RESTART_APP
        if AbstractFault.APP_CRASH in self.handled:
            return EnforcementAction.RESTART_APP
        return EnforcementAction.NONE


#: The model the augmented PRESS enforces: node crashes, application
#: crashes, and unreachable nodes are handled (by Mon + membership + the
#: rejoin protocol); everything else gets transformed.
PRESS_FAULT_MODEL = FaultModel(
    name="press",
    handled=frozenset({
        AbstractFault.NODE_CRASH,
        AbstractFault.APP_CRASH,
        AbstractFault.NODE_UNREACHABLE,
    }),
    min_confirmations=2,
)
