"""Fault Model Enforcement (Sections 4.5, 6.2).

The designers' abstract fault model covers node crashes, application
crashes, and unreachable nodes.  Faults outside the model — disk
failures, application hangs — make the views of the membership service
and the queue monitor diverge (the daemon stays healthy while the app is
stuck), producing remove/re-add oscillation.  FME *enforces* the model
by actively converting un-modeled faults into modeled ones:

* per-node daemon probes the local disks directly (SCSI Generic
  analog) and the local application with small HTTP requests;
* disk failed AND application unresponsive  -> take the whole node
  offline for repair (=> node crash, which everything already handles;
  the node reboots once the disk is fixed);
* application unresponsive but disks fine -> kill and restart the
  application (=> crash-restart, which triggers the rejoin protocol).

:class:`SfmeMonitor` is the stronger S-FME variant of Section 6.2: a
global watcher that compares every backend's cooperation set against the
majority view and takes *isolated* nodes out of the front-end's rotation,
eliminating the losses from routing full load to splintered nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ha.faultmodel import (
    PRESS_FAULT_MODEL,
    EnforcementAction,
    FaultModel,
    Symptoms,
)
from repro.hardware.host import Host, NodeService
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.conditions import AnyOf
from repro.sim.kernel import Environment
from repro.sim.series import MarkerLog


@dataclass(frozen=True)
class FmeConfig:
    probe_interval: float = 5.0  # Section 5: FME probes every 5 s
    probe_timeout: float = 2.0  # disk/HTTP probe response deadline
    confirm_delay: float = 1.0  # re-probe once before acting
    reboot_poll: float = 5.0  # how often to check a repaired disk
    reboot_delay: float = 10.0  # node boot time after disk repair


class FmeDaemon(NodeService):
    """Per-node FME process (its own ProcGroup, separate from the app)."""

    __slots__ = ("app", "config", "model", "markers", "_spans",
                 "enforcements")

    service_name = "fme"

    def __init__(
        self,
        host: Host,
        app: NodeService,
        config: FmeConfig = FmeConfig(),
        markers: Optional[MarkerLog] = None,
        model: FaultModel = PRESS_FAULT_MODEL,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(host)
        self.app = app
        self.config = config
        self.model = model
        self.markers = markers if markers is not None else MarkerLog()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._spans = tm.spans
        self.enforcements = 0

    def start(self) -> None:
        if not self.group.alive or not self.host.is_up:
            return
        self.env.process(self._probe_loop(), owner=self.group,
                         name=f"{self.host.name}.fme")

    # ------------------------------------------------------------------
    def _probe_loop(self):
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.probe_interval)
            # Probe rounds trace in the monitoring namespace (negative
            # req_ids) so request blame reports can exclude them.
            round_span = self._spans.probe_root("fme_probe", self.host.name)
            disk_ok = yield from self._probe_disks(round_span)
            app_ok = yield from self._probe_app(round_span)
            self._spans.finish(round_span, disk_ok=disk_ok, app_ok=app_ok)
            if disk_ok and app_ok:
                continue
            # Confirm with a second observation round before acting
            # (transient overload must not trigger enforcement).
            yield self.env.timeout(cfg.confirm_delay)
            round_span = self._spans.probe_root("fme_probe", self.host.name,
                                                confirm=True)
            disk_ok = yield from self._probe_disks(round_span)
            app_ok = yield from self._probe_app(round_span)
            self._spans.finish(round_span, disk_ok=disk_ok, app_ok=app_ok)
            symptoms = Symptoms(disks_ok=disk_ok, app_responsive=app_ok,
                                confirmations=2)
            action = self.model.enforce(symptoms)
            if action is EnforcementAction.OFFLINE_NODE:
                self._take_node_offline()
                return  # the node (and this daemon) goes down
            if action is EnforcementAction.RESTART_APP:
                self._restart_app()

    def _probe_disks(self, ctx=None):
        """True iff every local disk answers a controller probe in time."""
        cfg = self.config
        for disk in self.host.disks:
            span = self._spans.start("disk_probe", "probe", self.host.name,
                                     ctx)
            done = disk.probe()
            deadline = self.env.timeout(cfg.probe_timeout)
            yield AnyOf(self.env, [done, deadline])
            if not done.triggered:
                self._spans.finish(span, outcome="timeout")
                return False
            self._spans.finish(span, outcome="ok")
        return True

    def _probe_app(self, ctx=None):
        cfg = self.config
        span = self._spans.start("http_probe", "probe", self.host.name, ctx)
        ev = self.app.http_probe()
        deadline = self.env.timeout(cfg.probe_timeout)
        yield AnyOf(self.env, [ev, deadline])
        self._spans.finish(span,
                           outcome="ok" if ev.triggered else "timeout")
        return ev.triggered

    # -- enforcement actions -----------------------------------------------
    def _take_node_offline(self) -> None:
        """Disk dead + app stuck: enforce 'node crash'.

        A repair process outside the node (the operations crew) watches
        for the disk to be replaced and then boots the node, which
        restarts every service and rejoins the cluster.
        """
        now = self.env.now
        self.enforcements += 1
        self.markers.mark(now, "detected", ("fme_disk", self.host.name, self.host.name))
        self.markers.mark(now, "fme_offline", self.host.name)
        env, host, cfg = self.env, self.host, self.config

        def _shutdown_and_repair():
            # The shutdown runs outside the daemon's own process group:
            # crashing the host from within one of its processes would
            # kill the running generator out from under itself.
            host.crash()
            while any(d.faulty for d in host.disks):  # reprolint: disable=REP017 -- paced by reboot_poll during a repair, not per event
                yield env.timeout(cfg.reboot_poll)
            yield env.timeout(cfg.reboot_delay)
            if not host.is_up:
                host.boot()

        env.process(_shutdown_and_repair(), name=f"{host.name}.repair-crew")

    def _restart_app(self) -> None:
        """App stuck, disks fine: enforce 'application crash(-restart)'."""
        now = self.env.now
        self.enforcements += 1
        self.markers.mark(now, "detected", ("fme_app", self.host.name, self.host.name))
        self.markers.mark(now, "fme_restart", self.host.name)
        self.app.force_restart()


class SfmeMonitor:
    """S-FME: global cooperation-set monitoring at the front-end.

    Polls each backend's cooperation set; backends whose set disagrees
    with the majority (splintered/isolated nodes) are forced out of the
    front-end's table until they re-merge, so clients are never routed to
    a node that cannot carry its share.
    """

    __slots__ = ("env", "frontend", "backends", "poll_interval", "markers",
                 "actions")

    def __init__(
        self,
        env: Environment,
        frontend,
        backends,
        poll_interval: float = 2.0,
        markers: Optional[MarkerLog] = None,
    ):
        self.env = env
        self.frontend = frontend
        self.backends = list(backends)
        self.poll_interval = poll_interval
        self.markers = markers if markers is not None else MarkerLog()
        self.actions = 0
        env.process(self._loop(), owner=frontend.host.os, name="sfme")

    def _majority_view(self):
        views = []
        for b in self.backends:
            if b.listening:
                views.append(frozenset(b.coop_view()))  # reprolint: disable=REP017 -- poll-paced, and the frozenset IS the compared view value
        if not views:
            return None
        return max(views, key=lambda v: (len(v), -min(v)))

    def _loop(self):
        while True:
            yield self.env.timeout(self.poll_interval)
            majority = self._majority_view()
            if majority is None:
                continue
            for b in self.backends:
                isolated = b.listening and b.node_id not in majority
                if isolated and self.frontend.is_routed(b):
                    self.frontend.force_offline(b)
                    self.actions += 1
                    self.markers.mark(self.env.now, "sfme_offline", b.host.name)
                elif not isolated:
                    self.frontend.allow_online(b)
