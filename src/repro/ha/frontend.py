"""LVS-like front-end with Mon-style failure monitoring (Section 4.1).

The front-end hides server nodes behind a request distributor: client
packets are tunneled to a backend chosen round-robin from the *active
table*; replies go directly to clients.  A Mon-like daemon probes each
backend and removes/re-adds table entries.

Two probe modes, matching the paper's versions:

* ``MonMode.PING`` — ICMP echo every 5 s, three consecutive misses =>
  down (15 s detection).  Pings are answered by the OS, so crashed or
  hung *applications* are invisible: the front-end keeps sending requests
  to them.  This blindness is measured in Figures 6-7.
* ``MonMode.CONNECTION`` — C-MON (Figure 8): TCP connect probes against
  the application itself, 2 s detection, and application-level failures
  are seen too.

Front-end failure: with ``redundant=True`` (the paper models an ideal
redundant pair with heartbeats + IP take-over) the backup takes over
after ``takeover_time``; otherwise the service is unreachable until the
front-end is repaired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.host import Host
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.kernel import Environment
from repro.sim.series import MarkerLog
from repro.workload.client import Request, Router


class MonMode(str, enum.Enum):
    PING = "ping"
    CONNECTION = "connection"


@dataclass(frozen=True)
class FrontEndConfig:
    mode: MonMode = MonMode.PING
    ping_interval: float = 5.0  # Mon probes every 5 s (Section 4.1)
    ping_failures: int = 3  # three successive losses => down
    conn_interval: float = 1.0  # C-MON probes
    conn_failures: int = 2  # => 2 s detection (Section 6.2)
    redundant: bool = True  # modeled redundant FE pair
    takeover_time: float = 10.0  # heartbeat + IP take-over latency

    @property
    def probe_interval(self) -> float:
        return self.ping_interval if self.mode is MonMode.PING else self.conn_interval

    @property
    def failure_threshold(self) -> int:
        return self.ping_failures if self.mode is MonMode.PING else self.conn_failures


class FrontEnd(Router):
    """The request distributor + Mon monitor."""

    __slots__ = ("env", "host", "config", "markers", "_spans", "_c_probes",
                 "_c_probe_fail", "_g_active", "backends", "active",
                 "_fail_counts", "_forced_out", "_rr", "_functioning",
                 "_primary_up")

    def __init__(
        self,
        env: Environment,
        host: Host,
        backends: List,
        config: FrontEndConfig = FrontEndConfig(),
        markers: Optional[MarkerLog] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.env = env
        self.host = host
        self.config = config
        self.markers = markers if markers is not None else MarkerLog()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._spans = tm.spans
        m = tm.metrics
        self._c_probes = m.counter("fe_probes", node=host.name)
        self._c_probe_fail = m.counter("fe_probe_failures", node=host.name)
        self._g_active = m.gauge("fe_active_backends", node=host.name)
        self.backends = list(backends)
        self.active: Dict[int, bool] = {id(b): True for b in backends}
        self._fail_counts: Dict[int, int] = {id(b): 0 for b in backends}
        self._g_active.set(len(backends))
        #: entries S-FME forced out; Mon success does not re-admit these
        self._forced_out: set = set()
        self._rr = 0
        self._functioning = True
        self._primary_up = True
        for backend in backends:
            env.process(self._monitor(backend), owner=host.os,
                        name=f"mon-{backend.host.name}")

    # -- routing (Router interface) ----------------------------------------
    def pick(self, request: Request):
        if not self._functioning:
            self._spans.event(request.ctx, "route", "route", self.host.name,
                              choice="none", reason="fe_down")
            return None
        candidates = [b for b in self.backends
                      if self.active[id(b)] and id(b) not in self._forced_out]
        if not candidates:
            self._spans.event(request.ctx, "route", "route", self.host.name,
                              choice="none", reason="no_backends")
            return None
        backend = candidates[self._rr % len(candidates)]
        self._rr += 1
        # Zero-duration routing-decision span: which backend, table size.
        self._spans.event(request.ctx, "route", "route", self.host.name,
                          choice=backend.host.name, active=len(candidates))
        return backend

    # -- Mon ------------------------------------------------------------------
    def _probe_ok(self, backend) -> bool:
        if self.config.mode is MonMode.PING:
            return backend.host.pingable
        return backend.host.pingable and backend.listening

    def _monitor(self, backend):
        cfg = self.config
        key = id(backend)
        # Loop-invariant bindings: the maps and marker log are mutated in
        # place but never rebound, and the backend's host name is fixed.
        env = self.env
        fail_counts = self._fail_counts
        active = self.active
        mark = self.markers.mark
        backend_name = backend.host.name
        while True:
            yield env.timeout(cfg.probe_interval)
            if not self._functioning:
                continue
            self._c_probes.inc()
            now = env.now  # no yields below: time is constant this round
            if self._probe_ok(backend):
                fail_counts[key] = 0
                if not active[key]:
                    active[key] = True
                    self._update_active_gauge()
                    mark(now, "fe_node_up", backend_name)
            else:
                self._c_probe_fail.inc()
                fail_counts[key] += 1
                if fail_counts[key] >= cfg.failure_threshold and active[key]:
                    active[key] = False
                    self._update_active_gauge()
                    mark(now, "detected",
                         ("mon", self.host.name, backend_name))
                    mark(now, "fe_node_down", backend_name)

    def _update_active_gauge(self) -> None:
        self._g_active.set(sum(
            1 for b in self.backends
            if self.active[id(b)] and id(b) not in self._forced_out
        ))

    # -- S-FME hook ----------------------------------------------------------------
    def force_offline(self, backend) -> None:
        """Take a backend out of rotation regardless of Mon's opinion."""
        self._forced_out.add(id(backend))
        self._update_active_gauge()

    def allow_online(self, backend) -> None:
        self._forced_out.discard(id(backend))
        self._update_active_gauge()

    def is_routed(self, backend) -> bool:
        return self.active[id(backend)] and id(backend) not in self._forced_out

    # -- front-end failure (Table 1) ----------------------------------------------
    def fail(self) -> None:
        if not self._primary_up:
            return
        self._primary_up = False
        self._functioning = False
        self.markers.mark(self.env.now, "fe_failed", self.host.name)
        if self.config.redundant:
            def _takeover():
                yield self.env.timeout(self.config.takeover_time)
                if not self._primary_up:  # primary still down: backup serves
                    self._functioning = True
                    self.markers.mark(self.env.now, "detected",
                                      ("fe_takeover", self.host.name, self.host.name))
                    self.markers.mark(self.env.now, "fe_takeover", self.host.name)
            self.env.process(_takeover(), name="fe-takeover")

    def repair(self) -> None:
        self._primary_up = True
        self._functioning = True
        self.markers.mark(self.env.now, "fe_repaired", self.host.name)
