"""Robust group membership service (Section 4.2).

A variation of the three-round timed-asynchronous membership algorithm
(Cristian & Schmuck): daemons arrange themselves in a logical ring,
monitor both ring neighbours with heartbeats, exclude a silent neighbour
via a two-phase commit coordinated by the detector, and admit new/merged
members through a multicast join.  Network partitions yield independent
sub-groups which re-merge (lowest-minimum-id group wins) once the
network heals — the re-integration capability base PRESS lacks.

The daemon is an OS process of its own (its ProcGroup is separate from
PRESS's), so it keeps answering heartbeats while the *application* is
hung or crashed — the exact view divergence Section 4.4 dissects.

The current group is published to the node's :class:`~repro.ha.memclient.SharedView`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.hardware.host import Host, NodeService
from repro.ha.memclient import SharedView
from repro.net.message import Message
from repro.net.network import ClusterNetwork
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.series import MarkerLog
from repro.sim.store import Store

JOIN_MCAST = "membership.join"


@dataclass(frozen=True)
class MembershipConfig:
    heartbeat_interval: float = 5.0
    loss_threshold: int = 3
    ack_timeout: float = 2.0  # two-phase-commit prepare->commit window
    merge_interval: float = 10.0  # partition-heal probing
    tick: float = 1.0


class MembershipNetwork:
    """Registry mapping node ids to (host, inbox) for daemon unicast."""

    __slots__ = ("net", "_daemons")

    def __init__(self, net: ClusterNetwork):
        self.net = net
        self._daemons: Dict[int, "MembershipDaemon"] = {}

    def register(self, daemon: "MembershipDaemon") -> None:
        self._daemons[daemon.node_id] = daemon

    def send(self, src: "MembershipDaemon", dst_id: int, kind: str, payload=None) -> None:
        dst = self._daemons.get(dst_id)
        if dst is None or not dst.group.alive or not dst.host.is_up:
            return
        msg = Message(kind, src.node_id, dst_id, payload)
        self.net.datagram(src.host, dst.host, msg, dst.inbox)

    def multicast(self, src: "MembershipDaemon", kind: str, payload=None) -> None:
        for dst in self._daemons.values():
            if dst is src or not dst.group.alive or not dst.host.is_up:
                continue
            msg = Message(kind, src.node_id, dst.node_id, payload)
            self.net.datagram(src.host, dst.host, msg, dst.inbox)


class MembershipDaemon(NodeService):
    """One membership daemon per node."""

    __slots__ = ("node_id", "mnet", "config", "markers", "_tracer",
                 "_g_view_size", "_g_view_version", "_c_exclusions",
                 "shared_view", "inbox", "view", "version", "_hb_seen",
                 "_last_hb_sent", "_last_merge", "_pending", "_joining",
                 "_join_deadline", "_join_cooldown")

    service_name = "membd"

    def __init__(
        self,
        host: Host,
        node_id: int,
        mnet: MembershipNetwork,
        config: MembershipConfig = MembershipConfig(),
        markers: Optional[MarkerLog] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(host)
        self.node_id = node_id
        self.mnet = mnet
        self.config = config
        self.markers = markers if markers is not None else MarkerLog()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tracer = tm.tracer
        m = tm.metrics
        self._g_view_size = m.gauge("memb_view_size", node=host.name)
        self._g_view_version = m.gauge("memb_view_version", node=host.name)
        self._c_exclusions = m.counter("memb_exclusions_started", node=host.name)
        self.shared_view = SharedView()
        self.inbox = self.group.own_store(Store(self.env, name=f"{host.name}.membq"))
        self._reset_state()
        mnet.register(self)

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self.view: Set[int] = {self.node_id}
        self.version = 0
        self._hb_seen: Dict[int, float] = {}
        self._last_hb_sent = -1e18
        self._last_merge = -1e18
        self._pending: Optional[dict] = None  # in-flight 2PC this node coordinates
        self._joining = False
        self._join_deadline = 0.0
        self._join_cooldown = -1e18  # ignore further offers while one join runs

    def start(self) -> None:
        if not self.group.alive or not self.host.is_up:
            return
        self._reset_state()
        self._publish()
        self.env.process(self._timer(), owner=self.group, name=f"{self.host.name}.memb.t")
        self.env.process(self._loop(), owner=self.group, name=f"{self.host.name}.memb")
        self._solicit_join()

    def on_crash(self) -> None:
        self.shared_view.publish(set())

    # ------------------------------------------------------------------
    def _publish(self) -> None:
        self.shared_view.publish(self.view)

    def _timer(self):
        while True:
            yield self.env.timeout(self.config.tick)
            self.inbox.force_put(Message("tick", self.node_id, self.node_id))

    def _loop(self):
        while True:
            msg = yield self.inbox.get()
            handler = getattr(self, f"_on_{msg.kind}", None)
            if handler is not None:
                handler(msg)

    # -- periodic duties ----------------------------------------------------
    def _on_tick(self, _msg: Message) -> None:
        cfg = self.config
        now = self.env.now
        if now - self._last_hb_sent >= cfg.heartbeat_interval:
            self._last_hb_sent = now
            for nbr in sorted(self._neighbors()):
                self.mnet.send(self, nbr, "mhb")
        for nbr in sorted(self._neighbors()):
            last = self._hb_seen.setdefault(nbr, now)
            if now - last > cfg.loss_threshold * cfg.heartbeat_interval:
                self._begin_exclusion(nbr)
        if self._pending is not None and now >= self._pending["deadline"]:
            self._commit_pending()
        if self._joining and now >= self._join_deadline:
            self._joining = False  # no offers: keep running as singleton
        if len(self.view) == 1 and now - self._last_merge >= cfg.merge_interval:
            self._solicit_join()
        elif now - self._last_merge >= cfg.merge_interval:
            # Periodic partition-heal probe from the group's minimum member.
            if self.node_id == min(self.view):
                self._last_merge = now
                self.mnet.multicast(self, "probe", {"min_id": min(self.view),
                                                    "members": sorted(self.view)})

    def _neighbors(self) -> Set[int]:
        members = sorted(self.view)
        if len(members) < 2:
            return set()
        idx = members.index(self.node_id)
        return {members[(idx - 1) % len(members)], members[(idx + 1) % len(members)]}

    # -- heartbeats ------------------------------------------------------------
    def _on_mhb(self, msg: Message) -> None:
        self._hb_seen[msg.src] = self.env.now

    # -- exclusion (detector coordinates a 2PC) ----------------------------------
    def _begin_exclusion(self, target: int) -> None:
        if self._pending is not None or target not in self.view:
            return
        self._c_exclusions.inc()
        self.markers.mark(self.env.now, "detected", ("membership", self.node_id, target))
        others = self.view - {self.node_id, target}
        self._pending = {
            "kind": "remove",
            "target": target,
            "version": self.version + 1,
            "acks": set(),
            "others": others,
            "deadline": self.env.now + self.config.ack_timeout,
        }
        for member in sorted(others):
            self.mnet.send(self, member, "prepare", {
                "kind": "remove", "target": target, "version": self.version + 1,
            })
        if not others:
            self._commit_pending()

    def _on_prepare(self, msg: Message) -> None:
        payload = msg.payload
        if payload["version"] > self.version:
            self.mnet.send(self, msg.src, "ack", {"version": payload["version"]})

    def _on_ack(self, msg: Message) -> None:
        if self._pending is not None and msg.payload["version"] == self._pending["version"]:
            self._pending["acks"].add(msg.src)
            if self._pending["acks"] >= self._pending["others"]:
                self._commit_pending()

    def _commit_pending(self) -> None:
        op = self._pending
        self._pending = None
        if op is None:
            return
        if op["version"] <= self.version:
            # A concurrent operation (e.g. a join committed by another
            # coordinator) superseded ours while we were collecting acks;
            # committing the stale view would fork the group.
            return
        if op["kind"] == "remove":
            members = op["acks"] | {self.node_id}
        else:  # add
            members = (self.view | {op["target"]}) & (op["acks"] | {self.node_id, op["target"]})
        payload = {"members": sorted(members), "version": op["version"]}
        for member in payload["members"]:
            if member != self.node_id:
                self.mnet.send(self, member, "commit", payload)
        self._install(members, op["version"])

    def _on_commit(self, msg: Message) -> None:
        payload = msg.payload
        if payload["version"] > self.version:
            self._install(set(payload["members"]), payload["version"])

    def _install(self, members: Set[int], version: int) -> None:
        excluded = self.node_id not in members
        if excluded:
            # We were excluded (e.g. our partition lost): restart as a
            # singleton and immediately ask to be let back in — if we are
            # healthy again the group will re-admit us; if not, the join
            # times out harmlessly.
            members = {self.node_id}
        old_neighbors = self._neighbors()
        dropped = self.view - members
        added = members - self.view
        self.view = members
        self.version = version
        now = self.env.now
        # Heartbeat-loss counting starts fresh for *new* ring neighbours:
        # they never pointed their heartbeats at us before this view.
        for nbr in sorted(self._neighbors() - old_neighbors):
            self._hb_seen[nbr] = now
        for nid in sorted(dropped):
            self._hb_seen.pop(nid, None)
        self._publish()
        self._g_view_size.set(len(members))
        self._g_view_version.set(version)
        self._tracer.emit(EventKind.MEMB_VIEW, source=self.host.name,
                          members=sorted(members), version=version,
                          dropped=sorted(dropped), added=sorted(added))
        if dropped:
            self.markers.mark(now, "memb_excluded", sorted(dropped))
        if added - {self.node_id}:
            self.markers.mark(now, "memb_added", sorted(added))
        if excluded:
            self._solicit_join()

    # -- join / merge -------------------------------------------------------------
    def _solicit_join(self) -> None:
        self._last_merge = self.env.now
        self._joining = True
        self._join_deadline = self.env.now + self.config.ack_timeout
        self.mnet.multicast(self, "join", {"id": self.node_id})

    def _on_join(self, msg: Message) -> None:
        # Every current member replies; the joiner picks one coordinator.
        if msg.src in self.view:
            return
        self.mnet.send(self, msg.src, "offer", {"members": sorted(self.view)})

    def _on_offer(self, msg: Message) -> None:
        offer_members = set(msg.payload["members"])
        now = self.env.now
        if now < self._join_cooldown:
            return  # a join handshake is already in flight; every member
            # replies to a join multicast, so duplicate offers are expected
        if self._joining:
            self._joining = False
            self._join_cooldown = now + self.config.ack_timeout
            self.mnet.send(self, msg.src, "join_req", {"id": self.node_id})
            return
        # Merge rule: a group abandons itself into a group whose minimum id
        # is lower (total order => convergence after partitions heal).
        if offer_members and min(offer_members) < min(self.view) and msg.src not in self.view:
            self._leave_and_join(msg.src)

    def _on_join_req(self, msg: Message) -> None:
        target = msg.payload["id"]
        if self._pending is not None or target in self.view:
            return
        others = self.view - {self.node_id}
        self._pending = {
            "kind": "add",
            "target": target,
            "version": self.version + 1,
            "acks": set(),
            "others": others,
            "deadline": self.env.now + self.config.ack_timeout,
        }
        for member in sorted(others):
            self.mnet.send(self, member, "prepare", {
                "kind": "add", "target": target, "version": self.version + 1,
            })
        if not others:
            self._commit_pending()

    def _on_probe(self, msg: Message) -> None:
        payload = msg.payload
        if msg.src in self.view:
            return
        if min(self.view) < payload["min_id"]:
            # Our group outranks the prober's: invite it over.
            self.mnet.send(self, msg.src, "offer", {"members": sorted(self.view)})

    def _leave_and_join(self, coordinator_id: int) -> None:
        # Local reset only: the version must NOT advance past the target
        # group's, or their add-commit would be rejected as stale.
        self.view = {self.node_id}
        self._publish()
        self._join_cooldown = self.env.now + self.config.ack_timeout
        self.mnet.send(self, coordinator_id, "join_req", {"id": self.node_id})

    # -- application interface (NodeDown) ----------------------------------------------
    def report_down(self, nid: int) -> None:
        """Application-reported failure: treat like a heartbeat timeout."""
        if nid in self.view and nid != self.node_id:
            self._begin_exclusion(nid)


def bootstrap_membership(daemons) -> None:
    """Install the full group on every daemon (clean simultaneous launch)."""
    members = {d.node_id for d in daemons}
    for daemon in daemons:
        daemon._install(set(members), daemon.version + 1)
