"""Shared-memory membership segment and client library (Section 4.2).

The membership daemon publishes the current group to a shared-memory
segment; applications either attach the segment directly (PRESS polls
:class:`SharedView` from its control thread — same semantics as the
paper's library thread) or use :class:`MembershipClient`, which spawns a
thread that polls the segment and invokes the ``NodeIn``/``NodeOut``
callbacks, and offers ``NodeDown`` for the application to report a dead
node to the service.
"""

from __future__ import annotations

from typing import Callable, Iterable, Set

from repro.sim.kernel import Environment


class SharedView:
    """The published membership view (one per node).

    Survives application crashes (it belongs to the daemon); is lost with
    the node.
    """

    __slots__ = ("version", "members")

    def __init__(self) -> None:
        self.version = 0
        self.members: Set[int] = set()

    def publish(self, members: Iterable[int]) -> None:
        new = set(members)
        if new != self.members:
            self.members = new
            self.version += 1

    def snapshot(self) -> Set[int]:
        return set(self.members)


class MembershipClient:
    """The callback-based client library.

    ``node_in(nid)`` and ``node_out(nid)`` are invoked from a polling
    thread whenever the published view gains/loses members relative to
    the last delivered state.  ``node_down(nid)`` forwards an
    application-detected failure to the local daemon.
    """

    __slots__ = ("env", "view", "node_in", "node_out", "daemon",
                 "poll_interval", "_delivered", "_proc")

    def __init__(
        self,
        env: Environment,
        view: SharedView,
        node_in: Callable[[int], None],
        node_out: Callable[[int], None],
        daemon=None,
        poll_interval: float = 1.0,
        owner=None,
    ):
        self.env = env
        self.view = view
        self.node_in = node_in
        self.node_out = node_out
        self.daemon = daemon
        self.poll_interval = poll_interval
        self._delivered: Set[int] = set()
        self._proc = env.process(self._poll(), owner=owner, name="memclient")

    def _poll(self):
        while True:
            yield self.env.timeout(self.poll_interval)
            current = self.view.snapshot()
            for nid in sorted(current - self._delivered):  # reprolint: disable=REP021 -- determinism: joins must be delivered in nid order; the diff is near-empty per poll
                self._delivered.add(nid)
                self.node_in(nid)
            for nid in sorted(self._delivered - current):  # reprolint: disable=REP021 -- determinism: leaves must be delivered in nid order; the diff is near-empty per poll
                self._delivered.discard(nid)
                self.node_out(nid)

    def node_down(self, nid: int) -> None:
        """Application-side report that ``nid`` looks dead (NodeDown())."""
        if self.daemon is not None:
            self.daemon.report_down(nid)

    def stop(self) -> None:
        self._proc.kill()
