"""Cluster hardware substrate: hosts, process groups, disks, redundancy math.

This package stands in for the paper's physical testbed (4-6 x 800 MHz
Pentium III nodes, two 10K-rpm SCSI disks each, cLAN VIA interconnect).
Hosts expose the fault transitions of Table 1 — crash, freeze, and their
repairs — and disks expose the SCSI-timeout fault mode.
"""

from repro.hardware.host import Host, ProcGroup, NodeService
from repro.hardware.disk import Disk, DiskOp, DiskParams
from repro.hardware.raid import (
    composite_mttf,
    redundant_pair_mttf,
    parallel_mttf,
    series_mttf,
)

__all__ = [
    "Host",
    "ProcGroup",
    "NodeService",
    "Disk",
    "DiskOp",
    "DiskParams",
    "composite_mttf",
    "redundant_pair_mttf",
    "parallel_mttf",
    "series_mttf",
]
