"""Disk device model with the SCSI-timeout fault mode.

The device serves operations one at a time from a small bounded device
queue.  Under the ``scsi timeout`` fault of Table 1, the device stops
completing operations — in-flight and queued ops simply *hang* until the
fault is repaired.  Nothing errors out: exactly like the paper's SCSI
timeouts, the only externally visible symptom is that every thread doing
disk I/O stops making progress, which is what queue monitoring (and
eventually FME's direct SCSI probe) must detect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.kernel import Environment, Event
from repro.sim.store import Store


@dataclass(frozen=True, slots=True)
class DiskParams:
    """Service-time model: seek+rotational overhead plus streaming transfer."""

    seek_time: float = 0.008  # seconds; ~10K rpm SCSI average access
    transfer_bandwidth: float = 30e6  # bytes/second sequential
    queue_capacity: int = 16  # device/driver queue depth
    jitter: float = 0.15  # relative sd of lognormal service-time noise
    #: controller-level health probe (SCSI TEST UNIT READY / INQUIRY):
    #: no media seek, does not occupy the data-op queue, but hangs while
    #: the device is in its timeout fault mode
    probe_time: float = 0.002

    def service_time(self, size: int, rng: Optional[np.random.Generator] = None) -> float:
        base = self.seek_time + size / self.transfer_bandwidth
        if rng is None or self.jitter <= 0:
            return base
        sigma = self.jitter
        # Lognormal with mean 1: exp(N(-sigma^2/2, sigma)).
        return base * float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))


class DiskOp:
    """One read/write: ``done`` triggers when the device completes it."""

    __slots__ = ("size", "done", "submitted_at")

    def __init__(self, env: Environment, size: int):
        self.size = size
        self.done = Event(env)
        self.submitted_at = env.now


class Disk:
    """A single spindle attached to a host."""

    __slots__ = ("env", "host", "index", "name", "params", "rng", "queue",
                 "faulty", "_repaired", "ops_served")

    def __init__(
        self,
        env: Environment,
        host,
        index: int,
        params: DiskParams = DiskParams(),
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.host = host
        self.index = index
        self.name = f"{host.name}.disk{index}"
        self.params = params
        self.rng = rng
        self.queue = Store(env, capacity=params.queue_capacity, name=f"{self.name}.q")
        self.faulty = False
        self._repaired: Optional[Event] = None
        self.ops_served = 0
        host.disks.append(self)
        self._spawn_server()

    def _spawn_server(self) -> None:
        self.env.process(self._serve(), owner=self.host.os, name=f"{self.name}.srv")

    def _serve(self):
        while True:
            op = yield self.queue.get()
            while self.faulty:  # SCSI timeout: hold everything until repair
                yield self._repaired
            yield self.env.timeout(self.params.service_time(op.size, self.rng))
            while self.faulty:  # fault landed mid-service: completion hangs too
                yield self._repaired
            self.ops_served += 1
            if not op.done.triggered:
                op.done.succeed()

    # -- I/O ------------------------------------------------------------------
    def read(self, size: int):
        """Submit an op; returns a generator step sequence for the caller.

        Usage from a process::

            op = disk.submit(size)
            yield op.enqueued     # blocks while the device queue is full
            yield op.done         # blocks until the device completes it
        """
        return self.submit(size)

    def submit(self, size: int) -> "SubmittedOp":
        op = DiskOp(self.env, size)
        put = self.queue.put(op)
        return SubmittedOp(op, put)

    @property
    def depth(self) -> int:
        """Outstanding ops (queued + blocked submitters)."""
        return self.queue.backlog

    def probe(self) -> Event:
        """Controller health probe (SCSI Generic TEST UNIT READY analog).

        Completes in ``probe_time`` without seeking or queueing behind
        data operations; while the device is faulty it hangs (answering
        only after repair), which is exactly the signal FME's direct SCSI
        probing relies on.
        """
        ev = Event(self.env)

        def _body():
            while self.faulty:
                yield self._repaired
            yield self.env.timeout(self.params.probe_time)
            while self.faulty:  # fault hit mid-probe
                yield self._repaired
            if not ev.triggered:
                ev.succeed()

        self.env.process(_body(), owner=self.host.os, name=f"{self.name}.probe")
        return ev

    # -- faults ------------------------------------------------------------------
    def set_faulty(self) -> None:
        if self.faulty:
            return
        self.faulty = True
        self._repaired = Event(self.env)

    def repair(self) -> None:
        if not self.faulty:
            return
        self.faulty = False
        repaired, self._repaired = self._repaired, None
        if repaired is not None and not repaired.triggered:
            repaired.succeed()

    # -- host lifecycle ------------------------------------------------------------
    def on_host_crash(self) -> None:
        self.queue.clear()

    def on_host_boot(self) -> None:
        self.queue.clear()
        self._spawn_server()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "faulty" if self.faulty else "ok"
        return f"<Disk {self.name} {state} depth={self.depth}>"


class SubmittedOp:
    """Handle pairing the queue-admission event with the completion event."""

    __slots__ = ("op", "enqueued")

    def __init__(self, op: DiskOp, enqueued):
        self.op = op
        self.enqueued = enqueued

    @property
    def done(self) -> Event:
        return self.op.done
