"""Hosts and the software that runs on them.

A :class:`Host` is a cluster node.  It owns named :class:`ProcGroup` s —
one per OS-level process (the PRESS server, the membership daemon, the FME
daemon, ...) plus an implicit ``os`` group for kernel-level activity (disk
servicing, ICMP echo).  Fault types from Table 1 map onto hosts as:

* ``node crash``  -> :meth:`Host.crash` (all groups killed, state lost),
  repaired by :meth:`Host.boot` which restarts every registered service;
* ``node freeze`` -> :meth:`Host.freeze` / :meth:`Host.unfreeze` (all
  groups parked; state survives — this is the fault that *violates* base
  PRESS's crash-only fault model and causes splintering);
* ``application crash / hang`` -> the per-service group's
  crash/freeze, driven by :mod:`repro.faults.injector`.

Services subclass :class:`NodeService`; the host restarts them after a
node reboot or an application-crash repair.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.kernel import Environment, SimulationError
from repro.sim.process import ProcessOwner
from repro.sim.store import Store


class ProcGroup(ProcessOwner):
    """A unit of failure for running software (an OS process)."""

    def __init__(self, host: "Host", name: str):
        super().__init__()
        self.host = host
        self.name = name
        #: Stores whose contents live in this process's address space;
        #: cleared on crash (state loss), untouched by freeze.
        self.volatile_stores: List[Store] = []

    def own_store(self, store: Store) -> Store:
        self.volatile_stores.append(store)
        return store

    def crash(self) -> None:
        super().crash()
        for store in self.volatile_stores:
            store.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_runnable() else ("frozen" if self.frozen else "dead")
        return f"<ProcGroup {self.host.name}:{self.name} {state}>"


class NodeService:
    """Base class for software installed on a host.

    Subclasses implement :meth:`start` (spawn processes, owned by
    ``self.group``) and may override :meth:`on_crash` to reset in-memory
    state and :meth:`on_hang`/:meth:`on_resume` to observe freezes.
    The host calls :meth:`start` again after crash repair.
    """

    __slots__ = ("host", "env", "name", "group", "fault_latched")

    #: name under which the service registers on its host
    service_name: str = "service"

    def __init__(self, host: "Host", name: Optional[str] = None):
        self.host = host
        self.env = host.env
        self.name = name or self.service_name
        self.group = host.add_group(self.name)
        #: set while an injected application-crash fault is unrepaired; the
        #: underlying cause persists, so restart attempts (e.g. by FME)
        #: fail until the injector repairs the fault.
        self.fault_latched = False
        host.register_service(self)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_crash(self) -> None:
        """Hook: in-memory state of the service was lost."""

    def on_hang(self) -> None:
        """Hook: the service stopped making progress (state retained)."""

    def on_resume(self) -> None:
        """Hook: a hung service resumed."""

    # -- fault entry points (used by the injector and by FME) ---------------
    def inject_crash(self) -> None:
        self.fault_latched = True
        self.group.crash()
        self.on_crash()

    def repair_crash(self) -> None:
        """Restart after an application crash (group revived, fresh start)."""
        self.fault_latched = False
        if not self.host.is_up:
            return  # the node is down; Host.boot will restart us later
        if not self.group.alive:
            self.group.revive()
        self.start()

    def inject_hang(self) -> None:
        if self.group.alive:
            self.group.freeze()
            self.on_hang()

    def repair_hang(self) -> None:
        if not self.host.is_up:
            return
        if self.group.alive and self.group.frozen:
            self.group.thaw(self.env)
            self.on_resume()
        # else: something (e.g. FME) converted the hang into a crash-restart
        # while it was active; nothing to thaw.

    def force_restart(self) -> None:
        """Kill and restart the service (FME's hang -> crash-restart map).

        If an application-crash fault is latched, the restart fails: the
        process comes up and immediately dies again, so the service stays
        down until the fault is repaired.
        """
        if not self.host.is_up:
            return
        self.group.crash()
        self.on_crash()
        self.group.revive()
        self.start()

    @property
    def running(self) -> bool:
        return self.host.is_up and self.group.is_runnable()

    @property
    def alive(self) -> bool:
        """Process exists (may be hung)."""
        return self.host.is_up and self.group.alive


class Host:
    """A cluster node: process groups, disks, lifecycle state."""

    __slots__ = ("env", "name", "node_id", "boot_time", "groups", "services",
                 "disks", "_up", "_frozen", "os", "on_boot_hooks")

    def __init__(self, env: Environment, name: str, node_id: int, boot_time: float = 30.0):
        self.env = env
        self.name = name
        self.node_id = node_id
        self.boot_time = boot_time
        self.groups: Dict[str, ProcGroup] = {}
        self.services: Dict[str, NodeService] = {}
        self.disks: List = []  # populated by hardware.disk.Disk
        self._up = True
        self._frozen = False
        self.os = self.add_group("os")
        #: called (with this host) after every successful boot
        self.on_boot_hooks: List[Callable[["Host"], None]] = []

    # -- composition -------------------------------------------------------
    def add_group(self, name: str) -> ProcGroup:
        if name in self.groups:
            raise SimulationError(f"duplicate proc group {name!r} on {self.name}")
        group = ProcGroup(self, name)
        self.groups[name] = group
        return group

    def register_service(self, service: NodeService) -> None:
        if service.name in self.services:
            raise SimulationError(f"duplicate service {service.name!r} on {self.name}")
        self.services[service.name] = service

    def service(self, name: str) -> NodeService:
        return self.services[name]

    def start_all(self) -> None:
        """Start every registered service (initial cluster bring-up)."""
        for svc in self.services.values():
            svc.start()

    # -- state -------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self._up

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    @property
    def pingable(self) -> bool:
        """Answers ICMP echo: the OS is running (crashed/frozen nodes are not).

        Note a host whose *application* hung or crashed is still pingable —
        the exact blindness of Mon's ping-based monitoring in the paper.
        """
        return self._up and not self._frozen

    # -- fault transitions ---------------------------------------------------
    def crash(self) -> None:
        """Power-fail semantics: all processes die, all volatile state lost."""
        if not self._up:
            return
        self._up = False
        self._frozen = False
        for group in self.groups.values():
            group.crash()
        for disk in self.disks:
            disk.on_host_crash()
        for svc in self.services.values():
            svc.on_crash()

    def boot(self) -> None:
        """Synchronous reboot completion: revive groups, restart services.

        Callers model boot latency themselves (see
        :meth:`repro.faults.injector.FaultInjector`), typically as part of
        the component's MTTR.
        """
        if self._up:
            return
        self._up = True
        self._frozen = False
        for group in self.groups.values():
            group.revive()
        for disk in self.disks:
            disk.on_host_boot()
        for svc in self.services.values():
            svc.start()
        for hook in self.on_boot_hooks:
            hook(self)

    def freeze(self) -> None:
        if not self._up:
            raise SimulationError(f"cannot freeze crashed host {self.name}")
        if self._frozen:
            return
        self._frozen = True
        for group in self.groups.values():
            if group.alive:
                group.freeze()

    def unfreeze(self) -> None:
        if not self._frozen:
            return
        self._frozen = False
        for group in self.groups.values():
            if group.alive and group.frozen:
                group.thaw(self.env)
        for svc in self.services.values():
            if svc.group.alive:
                svc.on_resume()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "frozen" if self._frozen else ("up" if self._up else "down")
        return f"<Host {self.name} {state}>"
