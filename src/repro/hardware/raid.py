"""Composite-MTTF arithmetic for redundant hardware.

The paper models RAID and backup switches purely as MTTF improvements
("We modeled the MTTF improvement of a composite system in terms of the
number of components, N, and their MTTF and MTTR" — citing Patterson et
al.'s RAID paper).  The standard result for a system that survives any
single failure and is repaired at rate 1/MTTR is::

    MTTF_composite = MTTF * (MTTF / (N * MTTR))  =  MTTF**2 / (N * MTTR)

These helpers transform entries of the Table 1 fault catalog before the
availability model consumes them (see :mod:`repro.core.model`).
"""

from __future__ import annotations

from math import factorial


def series_mttf(mttf: float, n: int) -> float:
    """MTTF of n independent components where any failure fails the system."""
    _check(mttf, 1.0, n)
    return mttf / n


def redundant_pair_mttf(mttf: float, mttr: float) -> float:
    """MTTF of a mirrored pair (RAID-1 disks, primary+backup switch)."""
    return parallel_mttf(mttf, mttr, 2)


def parallel_mttf(mttf: float, mttr: float, n: int) -> float:
    """MTTF of n-way redundancy: system fails only when all n are down.

    Uses the classical repairable-redundancy approximation
    ``MTTF**n / (n! * MTTR**(n-1))``, valid when MTTR << MTTF (always true
    for Table 1, where repairs take minutes-hours and failures take
    weeks-years).
    """
    _check(mttf, mttr, n)
    if n == 1:
        return mttf
    return mttf**n / (factorial(n) * mttr ** (n - 1))


def composite_mttf(mttf: float, mttr: float, n: int, redundancy: int = 1) -> float:
    """MTTF of ``n`` independent ``redundancy``-way groups in series."""
    _check(mttf, mttr, n)
    return series_mttf(parallel_mttf(mttf, mttr, redundancy), n)


def _check(mttf: float, mttr: float, n: int) -> None:
    if mttf <= 0 or mttr <= 0:
        raise ValueError("MTTF and MTTR must be positive")
    if n < 1:
        raise ValueError("component count must be >= 1")
