"""Intra-cluster network substrate.

Models the paper's testbed interconnect (per-node links into one switch)
with Mendosus-style fault separation: link/switch faults affect only
intra-cluster traffic, never the client-server path.

Two transports are provided, matching what PRESS and the HA subsystems
use:

* **datagrams** (:meth:`ClusterNetwork.datagram`, UDP analog) — fire and
  forget, silently dropped when the path is down; used for heartbeats and
  the membership protocol's multicast join.
* **connections** (:class:`Connection`, TCP analog) — windowed, blocking,
  reliable while open; a send to an unreachable or slow peer *blocks*
  (retrying / flow-controlled), which is the mechanism by which one
  stalled node back-pressures the whole cooperative cluster.
"""

from repro.net.message import Message
from repro.net.network import ClusterNetwork, Link, Switch
from repro.net.transport import Connection, Endpoint, ConnectionClosed, CLOSED

__all__ = [
    "Message",
    "ClusterNetwork",
    "Link",
    "Switch",
    "Connection",
    "Endpoint",
    "ConnectionClosed",
    "CLOSED",
]
