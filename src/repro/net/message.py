"""Wire messages exchanged inside the cluster.

``WIRE_KINDS`` is the canonical protocol vocabulary: every kind any
component may put on the wire, grouped by plane.  ``Message.__init__``
asserts membership, and the whole-program protocol checker
(:mod:`repro.analysis.flow`, rules REP008–REP010) audits the same set
statically — so the runtime and the linter cannot drift apart, and a
misspelled kind fails the instant it is constructed rather than
vanishing at dispatch.
"""

from __future__ import annotations

from typing import Any

#: Every kind that may appear on the cluster wire.
#:
#: PRESS data plane (peer links):
#:   ``cache_sync``   directory exchange: cached fids + load sample
#:   ``fwd_req``      forward a client request to the caching node
#:   ``fwd_resp``     forwarded-request response (the file comes back)
#:   ``conn_closed``  synthetic: a peer link was torn down
#:
#: PRESS control plane (heartbeat ring / membership):
#:   ``hb``           ring heartbeat
#:   ``node_dead``    exclusion notice for a silent node
#:   ``rejoin``       a recovered node announces itself
#:   ``config``       membership configuration push
#:   ``cache_add``    directory delta: node now caches fid
#:   ``cache_del``    directory delta: node evicted fid
#:
#: HA membership protocol (three-round reconfiguration):
#:   ``mhb``          membership heartbeat
#:   ``prepare``      round 1: propose a new configuration
#:   ``ack``          round 2: acknowledge the proposal
#:   ``commit``       round 3: install the configuration
#:   ``probe``        liveness probe toward a suspect
#:   ``join``         multicast solicitation from a joining node
#:   ``offer``        current member answers a join solicitation
#:   ``join_req``     joining node requests admission from a member
#:
#: Self-delivery (both planes):
#:   ``tick``         local timer message a daemon posts to its own inbox
WIRE_KINDS = frozenset(
    {
        "cache_sync",
        "fwd_req",
        "fwd_resp",
        "conn_closed",
        "hb",
        "node_dead",
        "rejoin",
        "config",
        "cache_add",
        "cache_del",
        "mhb",
        "prepare",
        "ack",
        "commit",
        "probe",
        "join",
        "offer",
        "join_req",
        "tick",
    }
)


class Message:
    """A typed intra-cluster message.

    ``kind`` must be a member of :data:`WIRE_KINDS`; ``size`` in bytes
    feeds the network transfer-time model.  ``ctx`` is the optional
    trace context (the sender's :class:`~repro.obs.spans.Span`): it
    threads causal request tracing across the wire so the receiver can
    parent its spans correctly.  ``None`` (the default, and always the
    value when tracing is off) costs the hot path nothing.
    """

    __slots__ = ("kind", "src", "dst", "payload", "size", "ctx")

    def __init__(self, kind: str, src: Any, dst: Any, payload: Any = None,
                 size: int = 128, ctx: Any = None):
        assert kind in WIRE_KINDS, f"unknown wire kind {kind!r}"
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.ctx = ctx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Msg {self.kind} {self.src}->{self.dst}>"
