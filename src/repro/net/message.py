"""Wire messages exchanged inside the cluster."""

from __future__ import annotations

from typing import Any


class Message:
    """A typed intra-cluster message.

    ``kind`` is a short string tag ("hb", "req", "file", "cache_add", ...);
    ``size`` in bytes feeds the network transfer-time model.
    """

    __slots__ = ("kind", "src", "dst", "payload", "size")

    def __init__(self, kind: str, src: Any, dst: Any, payload: Any = None, size: int = 128):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Msg {self.kind} {self.src}->{self.dst}>"
