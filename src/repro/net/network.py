"""Cluster network topology: per-host links into a single switch.

Fault surface (Table 1): ``link down`` (one host's link) and ``switch
down`` (all intra-cluster paths).  Per Mendosus's design, these faults are
*internal*: client traffic is carried on a logically separate path and is
never affected by them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.sim.kernel import Environment, Event
from repro.sim.store import Store


class Link:
    """A host's connection into the cluster switch."""

    __slots__ = ("host", "up")

    def __init__(self, host):
        self.host = host
        self.up = True


class Switch:
    """The (single) intra-cluster switch."""

    __slots__ = ("name", "up")

    def __init__(self, name: str = "switch0"):
        self.name = name
        self.up = True


class ClusterNetwork:
    """Message fabric between cluster hosts.

    Latency model: fixed per-message latency plus size/bandwidth, matching
    a cLAN-class SAN (default 100 us + 1 Gb/s).
    """

    __slots__ = ("env", "latency", "bandwidth", "switch", "links",
                 "_multicast")

    def __init__(
        self,
        env: Environment,
        latency: float = 100e-6,
        bandwidth: float = 125e6,
    ):
        self.env = env
        self.latency = latency
        self.bandwidth = bandwidth
        self.switch = Switch()
        self.links: Dict[Any, Link] = {}
        self._multicast: Dict[str, List[Tuple[Any, Store]]] = {}

    # -- topology ---------------------------------------------------------
    def attach(self, host) -> Link:
        if host in self.links:
            return self.links[host]
        link = Link(host)
        self.links[host] = link
        return link

    def link(self, host) -> Link:
        return self.links[host]

    def transfer_time(self, size: int) -> float:
        return self.latency + size / self.bandwidth

    # -- reachability --------------------------------------------------------
    def path_up(self, a, b) -> bool:
        """Physical path between two attached hosts is intact."""
        if a is b:
            return True
        la, lb = self.links.get(a), self.links.get(b)
        return bool(la and lb and la.up and lb.up and self.switch.up)

    def reachable(self, a, b) -> bool:
        """``b`` can actually receive from ``a`` right now: path intact and
        ``b``'s OS running (crashed/frozen hosts receive nothing)."""
        return self.path_up(a, b) and b.pingable

    # -- datagrams (UDP analog) --------------------------------------------------
    def datagram(self, src, dst, msg, inbox: Store) -> None:
        """Fire-and-forget delivery into ``inbox`` after the transfer time.

        Dropped silently when the path is down or the destination's OS is
        not running *at delivery time* — exactly UDP's contract, and the
        property heartbeat-based failure detection relies on.
        """
        if not self.path_up(src, dst):
            return
        delivery = Event(self.env)

        def _deliver(_evt: Event) -> None:
            if self.reachable(src, dst):
                inbox.force_put(msg)

        delivery.add_callback(_deliver)
        delivery.succeed(delay=self.transfer_time(getattr(msg, "size", 128)))

    # -- multicast ---------------------------------------------------------------
    def join_multicast(self, address: str, host, inbox: Store) -> None:
        """Subscribe ``inbox`` on ``host`` to the given multicast address."""
        members = self._multicast.setdefault(address, [])
        members.append((host, inbox))

    def leave_multicast(self, address: str, host, inbox: Store) -> None:
        members = self._multicast.get(address, [])
        self._multicast[address] = [(h, ib) for (h, ib) in members if ib is not inbox]

    def multicast(self, address: str, src, msg) -> int:
        """Datagram to every subscriber (including on ``src`` itself).

        Returns the number of subscribers the message was *sent toward*
        (delivery is still subject to per-path datagram semantics).
        """
        members = self._multicast.get(address, [])
        for host, inbox in members:
            self.datagram(src, host, msg, inbox)
        return len(members)
