"""TCP-like connections: windowed, blocking, resettable.

Semantics chosen to reproduce the paper's fault propagation:

* ``send`` completes only when the message lands in the peer's bounded
  receive buffer.  While the path is down or the peer's OS is not running,
  the send **blocks and retries** (TCP retransmission), and while the
  peer's buffer is full it blocks on flow control.  Either way the
  sender's upstream queues back up — the stall-propagation mechanism.
* ``reset`` (called when a node is excluded from the cooperation set, or
  when an application restarts) aborts all blocked sends with
  :class:`ConnectionClosed` and delivers a :data:`CLOSED` sentinel to the
  reader, discarding buffered data.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from repro.sim.kernel import Environment
from repro.sim.process import Interrupt, Process
from repro.sim.store import Store
from repro.net.network import ClusterNetwork


class ConnectionClosed(Exception):
    """A send or recv was aborted because the connection was reset."""


class _Closed:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<CLOSED>"


#: Sentinel delivered to a reader when its connection is reset.
CLOSED = _Closed()

#: How often a blocked sender re-probes an unreachable peer (TCP RTO analog).
RETRY_INTERVAL = 0.2


class Connection:
    """A bidirectional connection between two hosts."""

    __slots__ = ("env", "net", "open", "_endpoints")

    def __init__(
        self,
        env: Environment,
        net: ClusterNetwork,
        host_a,
        host_b,
        window: int = 64,
    ):
        self.env = env
        self.net = net
        self.open = True
        self._endpoints = {
            host_a: Endpoint(self, host_a, host_b),
            host_b: Endpoint(self, host_b, host_a),
        }
        for ep in self._endpoints.values():
            ep.buffer = Store(env, capacity=window, name=f"conn[{ep.host.name}].rx")

    def endpoint(self, host) -> "Endpoint":
        return self._endpoints[host]

    def peer_of(self, host):
        for h in self._endpoints:
            if h is not host:
                return h
        raise KeyError(host)

    def reset(self) -> None:
        """Abort everything in flight; readers get CLOSED, senders get
        ConnectionClosed.  Idempotent."""
        if not self.open:
            return
        self.open = False
        for ep in self._endpoints.values():
            for proc in list(ep._senders):  # reprolint: disable=REP017 -- snapshot required: interrupt() mutates _senders mid-iteration, and reset runs per fault, not per event
                proc.interrupt("connection reset")
            ep._senders.clear()
            ep.buffer.clear()
            ep.buffer.force_put(CLOSED)


class Endpoint:
    """One side of a connection."""

    __slots__ = ("conn", "host", "peer", "buffer", "_senders")

    def __init__(self, conn: Connection, host, peer):
        self.conn = conn
        self.host = host
        self.peer = peer
        self.buffer: Optional[Store] = None  # this side's receive buffer
        self._senders: Set[Process] = set()

    # -- sending ------------------------------------------------------------
    def send(self, msg: Any, size: int = 128, owner=None) -> Process:
        """Start a send; the returned process-event succeeds when the
        message is accepted by the peer's receive buffer and *fails* with
        :class:`ConnectionClosed` if the connection is reset first."""
        proc = self.conn.env.process(
            self._send_body(msg, size), owner=owner, name=f"send->{self.peer.name}"
        )
        self._senders.add(proc)

        def _cleanup(evt) -> None:
            self._senders.discard(proc)
            if evt.ok is False:
                # A send abandoned by connection teardown is expected noise;
                # mark it handled so an already-gone waiter doesn't turn it
                # into an unhandled simulation failure.
                evt._defused = True

        proc.add_callback(_cleanup)
        return proc

    def _send_body(self, msg: Any, size: int):
        env = self.conn.env
        net = self.conn.net
        # Wire span for traced messages: transfer time + unreachable
        # retries + flow-control blocking all land on this hop.
        ctx = getattr(msg, "ctx", None)
        spans = env.spans if ctx is not None else None
        span = None
        if spans is not None:
            span = spans.start("net", "network", self.host.name, ctx,
                               dst=self.peer.name,
                               kind=getattr(msg, "kind", None))
        peer = self.peer  # never rebound after connect; skip the lookups
        try:
            while True:
                if not self.conn.open:
                    raise ConnectionClosed(f"to {peer.name}")
                if net.reachable(self.host, peer):
                    yield env.timeout(net.transfer_time(size))
                    if not self.conn.open:
                        raise ConnectionClosed(f"to {peer.name}")
                    if net.reachable(self.host, peer):
                        remote = self.conn.endpoint(peer).buffer
                        yield remote.put(msg)  # flow control: blocks while full
                        if span is not None:
                            spans.finish(span, outcome="delivered")
                        return
                else:
                    yield env.timeout(RETRY_INTERVAL)
        except Interrupt:
            raise ConnectionClosed(f"to {self.peer.name}") from None
        finally:
            # Reset/kill while in flight: close the hop at abort time.
            if span is not None and span.t1 is None:
                spans.finish(span, outcome="reset")

    # -- receiving -----------------------------------------------------------
    def recv(self):
        """Event yielding the next message, or :data:`CLOSED` after reset.

        Single-reader: PRESS has exactly one receive thread per connection.
        """
        assert self.buffer is not None
        return self.buffer.get()

    @property
    def pending(self) -> int:
        """Messages buffered on this side, waiting to be read."""
        assert self.buffer is not None
        return self.buffer.level
