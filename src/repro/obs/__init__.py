"""Unified telemetry: structured tracing, metrics, kernel profiling.

Three pillars (see docs/ARCHITECTURE.md, "Observability"):

* :class:`Tracer` — an append-only stream of typed :class:`TraceEvent`
  records (fault lifecycle, membership view changes, FME decisions,
  server crash/restart, queue saturation, request outcomes), with
  :class:`TracedMarkerLog` keeping the legacy MarkerLog surface alive.
* :class:`MetricsHub` — labelled :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` instruments wired into the service hot paths, with
  a snapshot API.
* :class:`KernelProfiler` — opt-in event-loop hooks answering "where
  does simulation time go".

:class:`Telemetry` bundles all three per world; JSONL/CSV exporters in
:mod:`repro.obs.export` round-trip the event stream losslessly.

On top of the raw telemetry sits the availability-accounting tier:

* :class:`FlightRecord` — a versioned, replayable JSON snapshot of one
  single-fault experiment (:mod:`repro.obs.recorder`);
* :class:`StageAttributor` — names every lost request-second with a
  ``(fault, stage, component, cause)`` tuple and cross-checks the stage
  boundaries against the template fit (:mod:`repro.obs.attribution`);
* :func:`build_budget` / :func:`budget_from_records` — per-version
  unavailability error budgets with stage drill-down
  (:mod:`repro.obs.budget`);
* :func:`render_timeline` — ASCII throughput/stage timelines
  (:mod:`repro.obs.timeline`).

And the performance-observability tier (:mod:`repro.obs.perf`, driven by
``repro bench`` via :mod:`repro.bench`): standardized kernel benchmark
scenarios measured under every obs mode (off / enabled-unsubscribed /
fully exporting), wall-time attribution via :class:`TimingProfiler`,
observability-overhead self-measurement, and provenance stamps for the
``benchmarks/TREND.jsonl`` trajectory ledger.
"""

from repro.obs.events import EventKind, KNOWN_KINDS, TraceEvent, sanitize
from repro.obs.export import (
    dumps_jsonl,
    event_from_dict,
    event_to_dict,
    filter_events,
    format_metrics,
    jsonl_subscriber,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.kernelprof import (
    KernelProfiler,
    TimingProfiler,
    callback_owner,
    callback_subsystem,
    process_type,
    subsystem_of_path,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.spans import (
    NULL_SPANS,
    Span,
    SpanRecorder,
    blame_report,
    critical_path,
    filter_spans,
    format_blame,
    render_waterfall,
    span_event,
    span_from_dict,
    span_to_dict,
    spans_digest,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import TracedMarkerLog, Tracer

# The availability-accounting tier (recorder/attribution/budget/timeline)
# sits ABOVE the core fitting layer, which itself imports the raw
# telemetry modules through the fault/world builders.  Importing it
# eagerly here would therefore be cyclic; instead its symbols resolve
# lazily on first attribute access (PEP 562).
_ACCOUNTING_EXPORTS = {
    "AttributionConfig": "repro.obs.attribution",
    "AttributionReport": "repro.obs.attribution",
    "BoundaryCheck": "repro.obs.attribution",
    "LossSlice": "repro.obs.attribution",
    "STAGE_CAUSES": "repro.obs.attribution",
    "StageAttributor": "repro.obs.attribution",
    "BudgetLine": "repro.obs.budget",
    "BudgetReport": "repro.obs.budget",
    "budget_from_records": "repro.obs.budget",
    "build_budget": "repro.obs.budget",
    "format_budget": "repro.obs.budget",
    "merge_budget_reports": "repro.obs.budget",
    "FlightRecord": "repro.obs.recorder",
    "SCHEMA_VERSION": "repro.obs.recorder",
    "merge_records": "repro.obs.recorder",
    "read_record": "repro.obs.recorder",
    "record_flight": "repro.obs.recorder",
    "write_record": "repro.obs.recorder",
    "format_attribution": "repro.obs.timeline",
    "render_timeline": "repro.obs.timeline",
    # the performance-observability tier (repro.obs.perf) — lazy for the
    # same reason: it reaches into the world builders for its scenarios
    "BENCH_SCHEMA": "repro.obs.perf",
    "OBS_MODES": "repro.obs.perf",
    "SCENARIOS": "repro.obs.perf",
    "Scenario": "repro.obs.perf",
    "ScenarioReport": "repro.obs.perf",
    "ModeRun": "repro.obs.perf",
    "measure_attribution": "repro.obs.perf",
    "measure_mode": "repro.obs.perf",
    "measure_scenario": "repro.obs.perf",
    "peak_rss_kb": "repro.obs.perf",
    "provenance": "repro.obs.perf",
    "worlds_digest": "repro.obs.perf",
}


def __getattr__(name):
    module_name = _ACCOUNTING_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


__all__ = [
    "BENCH_SCHEMA",
    "OBS_MODES",
    "SCENARIOS",
    "Scenario",
    "ScenarioReport",
    "ModeRun",
    "measure_attribution",
    "measure_mode",
    "measure_scenario",
    "peak_rss_kb",
    "provenance",
    "worlds_digest",
    "AttributionConfig",
    "AttributionReport",
    "BoundaryCheck",
    "BudgetLine",
    "BudgetReport",
    "FlightRecord",
    "LossSlice",
    "SCHEMA_VERSION",
    "STAGE_CAUSES",
    "StageAttributor",
    "budget_from_records",
    "build_budget",
    "format_attribution",
    "format_budget",
    "merge_budget_reports",
    "merge_records",
    "read_record",
    "record_flight",
    "render_timeline",
    "write_record",
    "EventKind",
    "KNOWN_KINDS",
    "TraceEvent",
    "sanitize",
    "Tracer",
    "TracedMarkerLog",
    "NULL_SPANS",
    "Span",
    "SpanRecorder",
    "blame_report",
    "critical_path",
    "filter_spans",
    "format_blame",
    "render_waterfall",
    "span_event",
    "span_from_dict",
    "span_to_dict",
    "spans_digest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "DEFAULT_BUCKETS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "KernelProfiler",
    "TimingProfiler",
    "callback_owner",
    "callback_subsystem",
    "process_type",
    "subsystem_of_path",
    "Telemetry",
    "NULL_TELEMETRY",
    "event_to_dict",
    "event_from_dict",
    "filter_events",
    "write_jsonl",
    "read_jsonl",
    "dumps_jsonl",
    "jsonl_subscriber",
    "write_csv",
    "read_csv",
    "write_metrics_json",
    "format_metrics",
]
