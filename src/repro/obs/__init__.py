"""Unified telemetry: structured tracing, metrics, kernel profiling.

Three pillars (see docs/ARCHITECTURE.md, "Observability"):

* :class:`Tracer` — an append-only stream of typed :class:`TraceEvent`
  records (fault lifecycle, membership view changes, FME decisions,
  server crash/restart, queue saturation, request outcomes), with
  :class:`TracedMarkerLog` keeping the legacy MarkerLog surface alive.
* :class:`MetricsHub` — labelled :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` instruments wired into the service hot paths, with
  a snapshot API.
* :class:`KernelProfiler` — opt-in event-loop hooks answering "where
  does simulation time go".

:class:`Telemetry` bundles all three per world; JSONL/CSV exporters in
:mod:`repro.obs.export` round-trip the event stream losslessly.
"""

from repro.obs.events import EventKind, KNOWN_KINDS, TraceEvent, sanitize
from repro.obs.export import (
    dumps_jsonl,
    event_from_dict,
    event_to_dict,
    format_metrics,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.kernelprof import KernelProfiler, callback_owner
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import TracedMarkerLog, Tracer

__all__ = [
    "EventKind",
    "KNOWN_KINDS",
    "TraceEvent",
    "sanitize",
    "Tracer",
    "TracedMarkerLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "DEFAULT_BUCKETS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "KernelProfiler",
    "callback_owner",
    "Telemetry",
    "NULL_TELEMETRY",
    "event_to_dict",
    "event_from_dict",
    "write_jsonl",
    "read_jsonl",
    "dumps_jsonl",
    "write_csv",
    "read_csv",
    "write_metrics_json",
    "format_metrics",
]
