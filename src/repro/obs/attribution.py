"""Online stage attribution: name every lost request-second.

The paper's contribution is *explaining* unavailability, not just
measuring it.  :class:`StageAttributor` walks a recorded single-fault
experiment (a :class:`~repro.obs.recorder.FlightRecord`, or a live
:class:`~repro.faults.campaign.ExperimentTrace` plus its event stream)
and partitions the experiment window ``[t_inject, t_end]`` into
contiguous :class:`LossSlice` windows, each attributed to a
``(fault kind, template stage, component, cause)`` tuple:

=====  =====================================  ===========================
stage  cause                                  boundary source
=====  =====================================  ===========================
A      ``undetected-window`` /                injection -> first
       ``undetected-fault``                   ``detected`` event
B      ``reconfiguration-transient``          stabilization scan at the
                                              degraded tail level
C      ``stable-degraded-capacity``           repair time
D      ``reintegration-transient``            stabilization scan at the
                                              post-repair tail level
E      ``stable-suboptimal-awaiting-          operator reset event (or
       operator`` / ``rewarming-tail``        end of observation)
F      ``operator-reset-downtime``            reset event + configured
                                              reset duration
G      ``post-reset-warmup``                  stabilization scan at the
                                              normal level
``-``  ``recovered-steady``                   whatever remains
=====  =====================================  ===========================

The lost request-seconds of a slice are integrated per sample interval:
``sum over buckets of max(offered * dt - served, 0)``.  Because the
slices partition the window exactly, attributed + residual loss is the
total loss by construction; ``coverage`` reports the share landing in a
named template stage (A..G) rather than in the recovered residual.

Every attribution also re-fits the 7-stage template on the same data and
cross-checks the measured stage durations against the fit
(:class:`BoundaryCheck`).  The two tiers share one stabilization scan
(:func:`repro.core.template.stabilization_time`), so disagreement beyond
one sample interval indicates schema drift or a fitter/attributor bug —
which is exactly why it is reported as a diagnostic instead of silently
trusted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.template import (
    FitConfig,
    SevenStageTemplate,
    TemplateFitter,
    stabilization_time,
)
from repro.faults.campaign import ExperimentTrace
from repro.obs.events import EventKind, TraceEvent
from repro.obs.recorder import FlightRecord

#: canonical cause name per template stage (budget rollups use the same
#: vocabulary, so drill-downs line up between measured and modelled views)
STAGE_CAUSES = {
    "A": "undetected-window",
    "B": "reconfiguration-transient",
    "C": "stable-degraded-capacity",
    "D": "reintegration-transient",
    "E": "stable-suboptimal-awaiting-operator",
    "F": "operator-reset-downtime",
    "G": "post-reset-warmup",
}

#: events that mark a reconfiguration action (used for consistency notes)
RECONFIG_KINDS = (
    EventKind.EXCLUDED,
    EventKind.MEMB_EXCLUDED,
    EventKind.FE_NODE_DOWN,
    EventKind.FME_OFFLINE,
    EventKind.SFME_OFFLINE,
    EventKind.FE_TAKEOVER,
)

RESIDUAL_STAGE = "-"
RESIDUAL_CAUSE = "recovered-steady"


@dataclass(frozen=True)
class AttributionConfig:
    """Knobs of the attribution pass."""

    #: loss-integration sample interval (seconds); also the agreement
    #: tolerance unit for the fit cross-check
    bucket: float = 1.0
    #: fit configuration used for the cross-check template
    fit: FitConfig = field(default_factory=FitConfig)
    #: boundary disagreement beyond this many sample intervals is flagged
    tolerance_buckets: float = 1.0


@dataclass(frozen=True)
class LossSlice:
    """One contiguous window attributed to a (stage, component, cause)."""

    stage: str  # "A".."G", or "-" for the recovered residual
    cause: str
    fault: str
    component: str
    t0: float
    t1: float
    offered: float  # request-seconds offered in [t0, t1)
    served: float  # requests served in [t0, t1)
    lost: float  # request-seconds lost (per-bucket clamped)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage, "cause": self.cause, "fault": self.fault,
            "component": self.component, "t0": self.t0, "t1": self.t1,
            "offered": self.offered, "served": self.served, "lost": self.lost,
        }


@dataclass(frozen=True)
class BoundaryCheck:
    """Fit cross-check for one measured stage duration."""

    stage: str
    event_duration: float  # attribution's event/series-derived duration
    fit_duration: float  # TemplateFitter's duration
    tolerance: float

    @property
    def delta(self) -> float:
        return self.event_duration - self.fit_duration

    @property
    def agrees(self) -> bool:
        return abs(self.delta) <= self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage, "event_duration": self.event_duration,
            "fit_duration": self.fit_duration, "delta": self.delta,
            "tolerance": self.tolerance, "agrees": self.agrees,
        }


@dataclass
class AttributionReport:
    """Where one experiment's lost request-seconds went."""

    version: str
    fault: str
    component: str
    slices: List[LossSlice]
    checks: List[BoundaryCheck]
    template: SevenStageTemplate
    self_recovered: bool
    notes: List[str] = field(default_factory=list)

    @property
    def attributed_lost(self) -> float:
        """Lost request-seconds landing in a named template stage."""
        return sum(s.lost for s in self.slices if s.stage != RESIDUAL_STAGE)

    @property
    def residual_lost(self) -> float:
        return sum(s.lost for s in self.slices if s.stage == RESIDUAL_STAGE)

    @property
    def total_lost(self) -> float:
        return sum(s.lost for s in self.slices)

    @property
    def coverage(self) -> float:
        """Share of lost request-seconds attributed to a named stage."""
        total = self.total_lost
        return self.attributed_lost / total if total > 0 else 1.0

    @property
    def agrees_with_fit(self) -> bool:
        return all(c.agrees for c in self.checks)

    def by_stage(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for s in self.slices:
            out[s.stage] = out.get(s.stage, 0.0) + s.lost
        return out

    def slice_at(self, t: float) -> Optional[LossSlice]:
        for s in self.slices:
            if s.t0 <= t < s.t1:
                return s
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "fault": self.fault,
            "component": self.component,
            "self_recovered": self.self_recovered,
            "total_lost": self.total_lost,
            "attributed_lost": self.attributed_lost,
            "residual_lost": self.residual_lost,
            "coverage": self.coverage,
            "agrees_with_fit": self.agrees_with_fit,
            "slices": [s.to_dict() for s in self.slices],
            "checks": [c.to_dict() for c in self.checks],
            "notes": list(self.notes),
        }


class StageAttributor:
    """Attributes lost request-seconds to template stages."""

    def __init__(self, config: AttributionConfig = AttributionConfig()):
        self.config = config
        self._fitter = TemplateFitter(config.fit)

    # -- entry points ------------------------------------------------------
    def attribute(self, record: FlightRecord) -> AttributionReport:
        """Attribute a recorded flight (the ``repro budget`` path)."""
        return self.attribute_trace(record.to_trace(), events=record.events)

    def attribute_trace(
        self,
        trace: ExperimentTrace,
        events: Sequence[TraceEvent] = (),
    ) -> AttributionReport:
        """Attribute a live (or replayed) experiment trace.

        ``events`` refines the timeline when available: detection comes
        from the first ``detected`` event, and reconfiguration events are
        checked for consistency with the stage-B window.
        """
        cfg = self.config
        fitcfg = cfg.fit
        series = trace.series
        normal = max(trace.normal_tput, 1e-9)
        offered = trace.offered_rate
        fault = str(trace.component.kind)
        component = trace.component.target
        notes: List[str] = []

        template = self._fitter.fit(trace)

        # -- detection boundary (events first, markers as fallback) --------
        t_detect = self._detect_time(trace, events)
        undetected = t_detect is None or t_detect > trace.t_repair
        if t_detect is not None and t_detect > trace.t_repair:
            notes.append(
                f"detection at {t_detect:.1f}s arrived after repair "
                f"({trace.t_repair:.1f}s); treating the fault as undetected"
            )
        checks: List[BoundaryCheck] = []
        tol = cfg.tolerance_buckets * fitcfg.bucket

        def mk(stage, cause, t0, t1, *, stage_label=None):
            if t1 - t0 <= 1e-12:
                return None
            off, served, lost = self._window_loss(series, offered, t0, t1)
            return LossSlice(stage=stage_label or stage, cause=cause,
                             fault=fault, component=component,
                             t0=t0, t1=t1, offered=off, served=served,
                             lost=lost)

        slices: List[Optional[LossSlice]] = []

        # -- stages A..C: injection through repair -------------------------
        if undetected:
            d_a = trace.t_repair - trace.t_inject
            slices.append(mk("A", "undetected-fault",
                             trace.t_inject, trace.t_repair))
        else:
            d_a = t_detect - trace.t_inject
            slices.append(mk("A", STAGE_CAUSES["A"], trace.t_inject, t_detect))
            c_level = series.mean_rate(
                max(t_detect, trace.t_repair - fitcfg.steady_window),
                trace.t_repair,
            )
            d_b = stabilization_time(series, t_detect, trace.t_repair,
                                     c_level, normal, fitcfg)
            slices.append(mk("B", STAGE_CAUSES["B"],
                             t_detect, t_detect + d_b))
            slices.append(mk("C", STAGE_CAUSES["C"],
                             t_detect + d_b, trace.t_repair))
            checks.append(BoundaryCheck("B", d_b,
                                        template.stage("B").duration, tol))
            self._check_reconfig_events(events, t_detect, t_detect + d_b,
                                        trace.t_repair, notes)
        checks.insert(0, BoundaryCheck("A", d_a,
                                       template.stage("A").duration, tol))

        # -- stage D and the post-repair window ----------------------------
        post_end = trace.t_reset if trace.t_reset is not None else trace.t_end
        e_level = series.mean_rate(
            max(trace.t_repair, post_end - fitcfg.steady_window), post_end
        )
        d_d = stabilization_time(series, trace.t_repair, post_end,
                                 e_level, normal, fitcfg)
        slices.append(mk("D", STAGE_CAUSES["D"],
                         trace.t_repair, trace.t_repair + d_d))
        checks.append(BoundaryCheck("D", d_d,
                                    template.stage("D").duration, tol))

        e_from = trace.t_repair + d_d
        if trace.t_reset is not None:
            slices.append(mk("E", STAGE_CAUSES["E"], e_from, trace.t_reset))
            f_end = min(trace.t_reset + trace.config.reset_duration,
                        trace.t_end)
            slices.append(mk("F", STAGE_CAUSES["F"], trace.t_reset, f_end))
            checks.append(BoundaryCheck("F", f_end - trace.t_reset,
                                        template.stage("F").duration, tol))
            d_g = stabilization_time(series, f_end, trace.t_end,
                                     normal, normal, fitcfg)
            slices.append(mk("G", STAGE_CAUSES["G"], f_end, f_end + d_g))
            checks.append(BoundaryCheck("G", d_g,
                                        template.stage("G").duration, tol))
            slices.append(mk(RESIDUAL_STAGE, RESIDUAL_CAUSE,
                             f_end + d_g, trace.t_end))
        elif template.self_recovered and e_level >= \
                fitcfg.recovered_level * normal:
            # Fully back to normal: everything after stage D is the
            # recovered residual (loss there is sampling noise).
            slices.append(mk(RESIDUAL_STAGE, RESIDUAL_CAUSE,
                             e_from, trace.t_end))
        else:
            # Still below normal at the end of observation: either a
            # re-warming climb (self-recovering) or a flat suboptimal
            # plateau that would eventually draw an operator.
            cause = ("rewarming-tail" if template.self_recovered
                     else STAGE_CAUSES["E"])
            slices.append(mk("E", cause, e_from, trace.t_end,
                             stage_label="E"))

        return AttributionReport(
            version=trace.version,
            fault=fault,
            component=component,
            slices=[s for s in slices if s is not None],
            checks=checks,
            template=template,
            self_recovered=template.self_recovered,
            notes=notes,
        )

    # -- internals ---------------------------------------------------------
    def _detect_time(
        self, trace: ExperimentTrace, events: Sequence[TraceEvent]
    ) -> Optional[float]:
        times = [e.time for e in events
                 if e.kind == EventKind.DETECTED and e.time >= trace.t_inject]
        if times:
            return min(times)
        return trace.t_detect  # marker-log fallback (live traces)

    def _window_loss(self, series, offered: float, t0: float, t1: float):
        """Integrate (offered, served, lost) request-seconds over [t0, t1)."""
        bucket = self.config.bucket
        nb = max(int(math.ceil((t1 - t0) / bucket - 1e-9)), 1)
        offered_rs = served = lost = 0.0
        for i in range(nb):
            a = t0 + i * bucket
            b = min(a + bucket, t1)
            n = float(series.count(a, b))
            off = offered * (b - a)
            offered_rs += off
            served += n
            lost += max(off - n, 0.0)
        return offered_rs, served, lost

    def _check_reconfig_events(
        self,
        events: Sequence[TraceEvent],
        t_detect: float,
        b_end: float,
        t_repair: float,
        notes: List[str],
    ) -> None:
        """Reconfiguration actions should land in (or right at) stage B."""
        slack = self.config.tolerance_buckets * self.config.fit.bucket
        for e in events:
            if e.kind in RECONFIG_KINDS and t_detect <= e.time <= t_repair:
                if e.time > b_end + slack:
                    notes.append(
                        f"reconfiguration event {e.kind!r} at {e.time:.1f}s "
                        f"falls after the stage-B window (ends "
                        f"{b_end:.1f}s)"
                    )
