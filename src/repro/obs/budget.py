"""Unavailability error budgets: roll stage attributions up per version.

An error budget frames availability as a spendable quantity: against an
objective (say 99.9%), the allowed unavailability is ``1 - objective``
and every ``(fault kind, stage, cause)`` pair consumes a share of it.
:func:`build_budget` computes those shares from fitted templates and a
fault catalog — the same per-stage decomposition the analytic model
(:mod:`repro.core.model`) sums over, so the budget's total matches the
model's unavailability (up to per-stage clamping of throughputs above
the offered load).  :func:`budget_from_records` does the whole pipeline
offline from flight-recorder artifacts: re-fit each record, attribute
its lost request-seconds, rebuild the version's fault catalog, and roll
everything up — the engine behind ``repro budget``.

A stage line's steady-state unavailability contribution is::

    u_{i,s} = n_i * d_s * max(lambda - T_s, 0) / (MTTF_i * lambda)

with ``n_i`` components of mean time to failure ``MTTF_i``, resolved
stage duration ``d_s`` and throughput ``T_s``, and offered load
``lambda`` (the paper's unsaturated-server assumption, as in the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.model import EnvironmentParams
from repro.core.report import format_bar
from repro.core.template import STAGE_NAMES, SevenStageTemplate, TemplateFitter
from repro.faults.faultload import FaultCatalog
from repro.faults.types import FAULT_LABELS, FaultKind
from repro.obs.attribution import (
    STAGE_CAUSES,
    AttributionConfig,
    AttributionReport,
    StageAttributor,
)
from repro.obs.recorder import FlightRecord

#: default availability objective: "three nines"
DEFAULT_OBJECTIVE = 0.999


@dataclass(frozen=True)
class BudgetLine:
    """One (fault kind, stage)'s steady-state unavailability share."""

    fault: FaultKind
    stage: str
    cause: str
    count: int
    mttf: float
    duration: float  # resolved stage duration (s)
    throughput: float  # stage throughput (req/s)
    unavailability: float

    @property
    def label(self) -> str:
        return FAULT_LABELS.get(self.fault, self.fault.value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.fault.value, "stage": self.stage,
            "cause": self.cause, "count": self.count, "mttf": self.mttf,
            "duration": self.duration, "throughput": self.throughput,
            "unavailability": self.unavailability,
        }


@dataclass
class BudgetReport:
    """Per-version unavailability budget with stage-level drill-down."""

    version: str
    objective: float
    offered_rate: float
    lines: List[BudgetLine]
    #: attribution reports of the underlying experiments, when built from
    #: flight records (empty when built straight from templates)
    measured: List[AttributionReport] = field(default_factory=list)
    #: fault kinds in the catalog with no recorded template (their share
    #: of unavailability is *not* in this budget)
    missing_kinds: List[FaultKind] = field(default_factory=list)

    @property
    def total_unavailability(self) -> float:
        return sum(line.unavailability for line in self.lines)

    @property
    def availability(self) -> float:
        return 1.0 - self.total_unavailability

    @property
    def budget(self) -> float:
        """Allowed unavailability under the objective."""
        return 1.0 - self.objective

    @property
    def consumed(self) -> float:
        """Fraction of the budget spent (>1 means the objective is blown)."""
        return (self.total_unavailability / self.budget
                if self.budget > 0 else float("inf"))

    def by_fault(self) -> Dict[FaultKind, float]:
        out: Dict[FaultKind, float] = {}
        for line in self.lines:
            out[line.fault] = out.get(line.fault, 0.0) + line.unavailability
        return out

    def by_stage(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for line in self.lines:
            out[line.stage] = out.get(line.stage, 0.0) + line.unavailability
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "objective": self.objective,
            "offered_rate": self.offered_rate,
            "total_unavailability": self.total_unavailability,
            "availability": self.availability,
            "budget": self.budget,
            "consumed": self.consumed,
            "lines": [line.to_dict() for line in self.lines],
            "measured": [m.to_dict() for m in self.measured],
            "missing_kinds": [k.value for k in self.missing_kinds],
        }


def build_budget(
    templates: Mapping[FaultKind, SevenStageTemplate],
    catalog: FaultCatalog,
    offered_rate: float,
    version: str = "",
    environment: EnvironmentParams = EnvironmentParams(),
    objective: float = DEFAULT_OBJECTIVE,
    measured: Sequence[AttributionReport] = (),
) -> BudgetReport:
    """Roll fitted templates + a fault catalog into a stage budget."""
    if offered_rate <= 0:
        raise ValueError("offered_rate must be positive")
    if not 0.0 < objective < 1.0:
        raise ValueError("objective must be in (0, 1)")
    lines: List[BudgetLine] = []
    missing: List[FaultKind] = []
    for rate in catalog:
        template = templates.get(rate.kind)
        if template is None:
            missing.append(rate.kind)
            continue
        resolved = template.resolved(
            mttr=rate.mttr,
            operator_response=environment.operator_response,
            reset_duration=environment.reset_duration,
        )
        for name in STAGE_NAMES:
            stage = resolved.stage(name)
            if stage.duration <= 0:
                continue
            u = (rate.count * stage.duration
                 * max(offered_rate - stage.throughput, 0.0)
                 / (rate.mttf * offered_rate))
            lines.append(BudgetLine(
                fault=rate.kind,
                stage=name,
                cause=STAGE_CAUSES[name],
                count=rate.count,
                mttf=rate.mttf,
                duration=stage.duration,
                throughput=stage.throughput,
                unavailability=u,
            ))
    lines.sort(key=lambda l: l.unavailability, reverse=True)
    return BudgetReport(
        version=version,
        objective=objective,
        offered_rate=offered_rate,
        lines=lines,
        measured=list(measured),
        missing_kinds=missing,
    )


def budget_from_records(
    records: Iterable[FlightRecord],
    environment: EnvironmentParams = EnvironmentParams(),
    objective: float = DEFAULT_OBJECTIVE,
    attribution: AttributionConfig = AttributionConfig(),
    catalog: Optional[FaultCatalog] = None,
) -> BudgetReport:
    """Offline budget: re-fit and attribute flight records, then roll up.

    All records must come from the same system version; the version's
    fault catalog is rebuilt from its spec unless ``catalog`` is given.
    Kinds with several records keep the last one's template (and every
    attribution is reported).
    """
    records = list(records)
    if not records:
        raise ValueError("no flight records given")
    versions = {r.version for r in records}
    if len(versions) > 1:
        raise ValueError(
            f"records span multiple versions {sorted(versions)}; "
            "budget one version at a time"
        )
    version_name = records[0].version
    offered = float(records[0].timeline["offered_rate"])

    attributor = StageAttributor(attribution)
    fitter = TemplateFitter(attribution.fit)
    templates: Dict[FaultKind, SevenStageTemplate] = {}
    measured: List[AttributionReport] = []
    for record in records:
        trace = record.to_trace()
        templates[FaultKind(record.fault)] = fitter.fit(trace)
        measured.append(attributor.attribute(record))

    if catalog is None:
        catalog = _catalog_for(version_name)
    return build_budget(
        templates, catalog, offered, version=version_name,
        environment=environment, objective=objective, measured=measured,
    )


def merge_budget_reports(reports: Sequence[BudgetReport]) -> BudgetReport:
    """Deterministically merge per-shard budgets of one version.

    A parallel campaign can budget each fault kind's records in its own
    worker; this folds the shard reports back into one.  Merging is
    keyed on the shard order given (cell order), never completion order:
    lines are concatenated then re-sorted with a full ``(unavailability,
    fault, stage)`` key so ties cannot depend on arrival order, measured
    attributions concatenate in shard order, and a kind is only
    ``missing`` if no shard budgeted it.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no budget reports given")
    versions = {r.version for r in reports}
    if len(versions) > 1:
        raise ValueError(
            f"budgets span multiple versions {sorted(versions)}; "
            "merge one version at a time")
    objectives = {r.objective for r in reports}
    if len(objectives) > 1:
        raise ValueError("budgets disagree on the availability objective")
    offered = {r.offered_rate for r in reports}
    if len(offered) > 1:
        raise ValueError("budgets disagree on the offered rate")

    lines: List[BudgetLine] = []
    measured: List[AttributionReport] = []
    for report in reports:
        lines.extend(report.lines)
        measured.extend(report.measured)
    lines.sort(key=lambda l: (-l.unavailability, l.fault.value, l.stage))

    budgeted = {line.fault for line in lines}
    missing: List[FaultKind] = []
    for report in reports:
        for kind in report.missing_kinds:
            if kind not in budgeted and kind not in missing:
                missing.append(kind)
    return BudgetReport(
        version=reports[0].version,
        objective=reports[0].objective,
        offered_rate=reports[0].offered_rate,
        lines=lines,
        measured=measured,
        missing_kinds=missing,
    )


def _catalog_for(version_name: str) -> FaultCatalog:
    """The fault catalog a version's world would carry (no simulation)."""
    from repro.experiments.configs import version as version_by_name
    from repro.faults.faultload import table1_catalog

    try:
        spec = version_by_name(version_name)
    except KeyError as exc:
        raise ValueError(
            f"no fault catalog for recorded version {version_name!r}; "
            f"pass an explicit catalog") from exc
    return spec.transform_catalog(table1_catalog(
        n_nodes=spec.server_count,
        disks_per_node=2,
        with_frontend=spec.frontend,
    ))


# -- rendering -------------------------------------------------------------
def format_budget(report: BudgetReport, top: int = 0) -> str:
    """Human-readable budget with stage drill-down and measured coverage."""
    total = report.total_unavailability
    lines = [
        f"version {report.version}: unavailability {total:.2e} "
        f"(availability {report.availability:.5f})",
        f"objective {report.objective:.5g} -> budget {report.budget:.2e}, "
        f"consumed {report.consumed * 100:.1f}%",
        "",
        f"  {'fault class':<18} {'stage':<5} {'dur(s)':>9} {'tput':>8} "
        f"{'unavail':>10} {'share':>6}  cause",
    ]
    shown = report.lines[:top] if top else report.lines
    for line in shown:
        share = line.unavailability / total if total > 0 else 0.0
        lines.append(
            f"  {line.label:<18} {line.stage:<5} {line.duration:>9.1f} "
            f"{line.throughput:>8.1f} {line.unavailability:>10.2e} "
            f"{share * 100:>5.1f}%  {line.cause}"
        )
    if top and len(report.lines) > top:
        rest = sum(l.unavailability for l in report.lines[top:])
        lines.append(f"  {'(other lines)':<18} {'':<5} {'':>9} {'':>8} "
                     f"{rest:>10.2e}")
    if report.missing_kinds:
        names = ", ".join(k.value for k in report.missing_kinds)
        lines.append(f"  (no recorded template for: {names} — their share "
                     f"is not budgeted)")

    by_stage = report.by_stage()
    if by_stage and total > 0:
        lines.append("")
        lines.append("  per-stage rollup:")
        peak = max(by_stage.values())
        for name in STAGE_NAMES:
            if name not in by_stage:
                continue
            u = by_stage[name]
            lines.append(
                f"    {name}  {u:>10.2e} {u / total * 100:>5.1f}% "
                f"{format_bar(u, peak, width=30)}"
            )

    if report.measured:
        lines.append("")
        lines.append("  measured experiments:")
        for m in report.measured:
            flag = "" if m.agrees_with_fit else "  [fit disagreement]"
            lines.append(
                f"    {m.fault:<18} lost {m.total_lost:>9.1f} req-s, "
                f"{m.coverage * 100:>5.1f}% attributed{flag}"
            )
            for note in m.notes:
                lines.append(f"      note: {note}")
    return "\n".join(lines)
