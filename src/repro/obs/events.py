"""Structured trace events: the schema of the telemetry stream.

A :class:`TraceEvent` is one timestamped, typed record.  The ``kind``
field is drawn from the :class:`EventKind` vocabulary below; ``source``
names the component that observed the occurrence (a host name,
``"frontend"``, ``"injector"``, ...); ``data`` carries kind-specific
fields, always as JSON-serializable primitives so a trace survives an
export/parse round trip unchanged.

Event vocabulary (the trace schema)
-----------------------------------

=====================  ========================================================
kind                   data fields
=====================  ========================================================
``fault_injected``     ``fault`` (kind string), ``target``
``fault_repaired``     ``fault``, ``target``
``detected``           ``mechanism``, ``observer``, ``target``
``excluded``           ``observer``, ``peer``
``reintegrated``       ``peer``
``rejoined``           ``node``
``memb_view``          ``members`` (list), ``version`` (int)
``memb_excluded``      ``members`` dropped from the view
``memb_added``         ``members`` added to the view
``fme_offline``        ``node`` taken offline by FME
``fme_restart``        ``node`` whose application FME restarted
``sfme_offline``       ``node`` forced out of rotation by S-FME
``fe_node_down``       ``node`` removed from the front-end table
``fe_node_up``         ``node`` re-added to the front-end table
``fe_failed``          ``node`` (the front-end host)
``fe_takeover``        ``node``
``fe_repaired``        ``node``
``server_start``       ``node_id``
``server_crash``       ``node_id``
``queue_saturated``    ``queue``, ``action`` (reroute/dropped/qmon_failed)
``request_failed``     ``fid``, ``outcome``
``request_ok``         ``fid``, ``latency`` (opt-in; see Telemetry)
``operator_reset``     ``fault``, ``target``
``span``               one causal span (see :mod:`repro.obs.spans`)
=====================  ========================================================

Unknown marker labels pass through with ``kind`` equal to the label and a
``{"value": ...}`` payload, so the stream is lossless even for ad-hoc
annotations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class EventKind:
    """String constants for the trace-event vocabulary."""

    FAULT_INJECTED = "fault_injected"
    FAULT_REPAIRED = "fault_repaired"
    DETECTED = "detected"
    EXCLUDED = "excluded"
    REINTEGRATED = "reintegrated"
    REJOINED = "rejoined"
    MEMB_VIEW = "memb_view"
    MEMB_EXCLUDED = "memb_excluded"
    MEMB_ADDED = "memb_added"
    FME_OFFLINE = "fme_offline"
    FME_RESTART = "fme_restart"
    SFME_OFFLINE = "sfme_offline"
    FE_NODE_DOWN = "fe_node_down"
    FE_NODE_UP = "fe_node_up"
    FE_FAILED = "fe_failed"
    FE_TAKEOVER = "fe_takeover"
    FE_REPAIRED = "fe_repaired"
    SERVER_START = "server_start"
    SERVER_CRASH = "server_crash"
    QUEUE_SATURATED = "queue_saturated"
    REQUEST_FAILED = "request_failed"
    REQUEST_OK = "request_ok"
    OPERATOR_RESET = "operator_reset"
    SPAN = "span"


#: Every kind the schema above documents.
KNOWN_KINDS = frozenset(
    v for k, v in vars(EventKind).items() if not k.startswith("_")
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, typed telemetry record."""

    time: float
    kind: str
    source: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


def sanitize(value: Any) -> Any:
    """Coerce ``value`` into JSON-serializable primitives.

    Applied at emit time so that export -> parse reproduces the event
    exactly (tuples become lists, enums become their values, and so on).
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, enum.Enum):
        return sanitize(value.value)
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((sanitize(v) for v in value), key=repr)
    kind = getattr(value, "kind", None)
    target = getattr(value, "target", None)
    if kind is not None and target is not None:  # FaultComponent shape
        return {"kind": sanitize(kind), "target": sanitize(target)}
    return repr(value)


#: marker label -> source attribution for facade-translated events
_MARKER_SOURCES = {
    EventKind.FAULT_INJECTED: "injector",
    EventKind.FAULT_REPAIRED: "injector",
    EventKind.OPERATOR_RESET: "operator",
    EventKind.MEMB_VIEW: "membership",
    EventKind.MEMB_EXCLUDED: "membership",
    EventKind.MEMB_ADDED: "membership",
    EventKind.FE_NODE_DOWN: "frontend",
    EventKind.FE_NODE_UP: "frontend",
    EventKind.FE_FAILED: "frontend",
    EventKind.FE_TAKEOVER: "frontend",
    EventKind.FE_REPAIRED: "frontend",
    EventKind.FME_OFFLINE: "fme",
    EventKind.FME_RESTART: "fme",
    EventKind.SFME_OFFLINE: "sfme",
}


def marker_event(time: float, label: str, data: Any) -> TraceEvent:
    """Translate one MarkerLog entry into a structured TraceEvent.

    Known labels get typed payloads; unknown labels pass through with a
    generic ``{"value": ...}`` payload.
    """
    source = _MARKER_SOURCES.get(label, "marker")
    payload: Dict[str, Any]
    if label == EventKind.DETECTED and isinstance(data, tuple) and len(data) == 3:
        payload = {
            "mechanism": sanitize(data[0]),
            "observer": sanitize(data[1]),
            "target": sanitize(data[2]),
        }
        source = str(payload["observer"])
    elif label == EventKind.EXCLUDED and isinstance(data, tuple) and len(data) == 2:
        payload = {"observer": sanitize(data[0]), "peer": sanitize(data[1])}
        source = str(payload["observer"])
    elif label in (EventKind.FAULT_INJECTED, EventKind.FAULT_REPAIRED,
                   EventKind.OPERATOR_RESET) and hasattr(data, "kind"):
        payload = {"fault": sanitize(data.kind), "target": sanitize(data.target)}
    elif label in (EventKind.MEMB_EXCLUDED, EventKind.MEMB_ADDED):
        payload = {"members": sanitize(data)}
    elif label == EventKind.REINTEGRATED:
        payload = {"peer": sanitize(data)}
    elif label == EventKind.REJOINED:
        payload = {"node": sanitize(data)}
    elif label.startswith("fe_") or label.startswith("fme_") or label.startswith("sfme_"):
        payload = {"node": sanitize(data)}
    elif data is None:
        payload = {}
    elif isinstance(data, dict):
        payload = {str(k): sanitize(v) for k, v in data.items()}
    else:
        payload = {"value": sanitize(data)}
    return TraceEvent(time=float(time), kind=label, source=source, data=payload)
