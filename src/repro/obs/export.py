"""Trace and metrics exporters: JSONL and CSV, with lossless round trip.

One JSONL line per event::

    {"time": 105.2, "kind": "fault_injected", "source": "injector",
     "data": {"fault": "node_crash", "target": "n1"}}

Because events are sanitized to JSON primitives at emit time
(:func:`repro.obs.events.sanitize`), ``read_jsonl(write_jsonl(events))``
reproduces the events exactly — the property the round-trip tests pin.

CSV columns are ``time,kind,source,data`` with ``data`` JSON-encoded, so
spreadsheet tools get sortable columns without losing structure.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from repro.obs.events import TraceEvent

PathOrFile = Union[str, TextIO]


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    return {"time": event.time, "kind": event.kind, "source": event.source,
            "data": event.data}


def event_from_dict(d: Dict[str, Any]) -> TraceEvent:
    return TraceEvent(time=float(d["time"]), kind=str(d["kind"]),
                      source=str(d.get("source", "")), data=dict(d.get("data", {})))


def filter_events(events: Iterable[TraceEvent],
                  kinds: Optional[Iterable[str]] = None,
                  components: Optional[Iterable[str]] = None,
                  limit: Optional[int] = None) -> List[TraceEvent]:
    """Select events by kind and/or source component, capped at ``limit``.

    The shared selection layer behind ``repro trace`` / ``repro spans``
    filters; empty/None selectors pass everything through.
    """
    kind_set = {str(k) for k in kinds} if kinds else None
    comp_set = {str(c) for c in components} if components else None
    out: List[TraceEvent] = []
    for ev in events:
        if kind_set is not None and ev.kind not in kind_set:
            continue
        if comp_set is not None and ev.source not in comp_set:
            continue
        out.append(ev)
        if limit is not None and len(out) >= limit:
            break
    return out


def _open_for_write(dst: PathOrFile):
    if isinstance(dst, str):
        # a bare checkout has no results/ dir yet: create parents so
        # --out paths work on the first run
        parent = os.path.dirname(dst)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return open(dst, "w", encoding="utf-8"), True
    return dst, False


def _open_for_read(src: PathOrFile):
    if isinstance(src, str):
        return open(src, "r", encoding="utf-8"), True
    return src, False


# -- JSONL ---------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], dst: PathOrFile) -> int:
    """Write one JSON object per line; returns the number of events."""
    fp, owned = _open_for_write(dst)
    try:
        n = 0
        for event in events:
            fp.write(json.dumps(event_to_dict(event), sort_keys=True))
            fp.write("\n")
            n += 1
        return n
    finally:
        if owned:
            fp.close()


def read_jsonl(src: PathOrFile) -> List[TraceEvent]:
    fp, owned = _open_for_read(src)
    try:
        return [event_from_dict(json.loads(line))
                for line in fp if line.strip()]
    finally:
        if owned:
            fp.close()


def dumps_jsonl(events: Iterable[TraceEvent]) -> str:
    buf = io.StringIO()
    write_jsonl(events, buf)
    return buf.getvalue()


def jsonl_subscriber(fp: TextIO):
    """A :meth:`Tracer.subscribe` callback streaming each event to ``fp``.

    This is the "fully exporting" observability configuration: every
    event is serialized at emit time (the cost the benchmark harness's
    ``on`` mode measures), and nothing accumulates in memory beyond the
    tracer's own retention window.
    """
    def _write(event: TraceEvent) -> None:
        fp.write(json.dumps(event_to_dict(event), sort_keys=True))
        fp.write("\n")

    return _write


# -- CSV -----------------------------------------------------------------
_CSV_FIELDS = ("time", "kind", "source", "data")


def write_csv(events: Iterable[TraceEvent], dst: PathOrFile) -> int:
    fp, owned = _open_for_write(dst)
    try:
        writer = csv.writer(fp, lineterminator="\n")
        writer.writerow(_CSV_FIELDS)
        n = 0
        for event in events:
            writer.writerow([repr(event.time), event.kind, event.source,
                             json.dumps(event.data, sort_keys=True)])
            n += 1
        return n
    finally:
        if owned:
            fp.close()


def read_csv(src: PathOrFile) -> List[TraceEvent]:
    fp, owned = _open_for_read(src)
    try:
        reader = csv.reader(fp)
        header = next(reader, None)
        if header is not None and tuple(header) != _CSV_FIELDS:
            raise ValueError(f"unexpected CSV header {header!r}")
        return [
            TraceEvent(time=float(row[0]), kind=row[1], source=row[2],
                       data=json.loads(row[3]))
            for row in reader if row
        ]
    finally:
        if owned:
            fp.close()


# -- metrics -------------------------------------------------------------
def write_metrics_json(snapshot: List[Dict[str, Any]], dst: PathOrFile) -> None:
    """Persist a MetricsHub snapshot as a JSON array."""
    fp, owned = _open_for_write(dst)
    try:
        json.dump(snapshot, fp, sort_keys=True, indent=2)
        fp.write("\n")
    finally:
        if owned:
            fp.close()


def format_metrics(snapshot: List[Dict[str, Any]]) -> str:
    """Human-readable one-line-per-series rendering of a snapshot."""
    lines = []
    for record in snapshot:
        labels = record.get("labels") or {}
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        series = f"{record['name']}{{{label_str}}}" if label_str else record["name"]
        if record["type"] == "counter":
            lines.append(f"{series:<52} {record['value']:g}")
        elif record["type"] == "gauge":
            lines.append(f"{series:<52} {record['value']:g} "
                         f"(max {record['max']:g})")
        else:  # histogram
            line = (f"{series:<52} count={record['count']} "
                    f"sum={record['sum']:.4g}")
            if "p50" in record:
                quantiles = " ".join(
                    f"{q}={record[q]:.4g}" if record[q] != float("inf")
                    else f"{q}=inf"
                    for q in ("p50", "p90", "p99")
                )
                line += f" {quantiles}"
            lines.append(line)
    return "\n".join(lines)
