"""Kernel profiling hooks: where does simulation time go?

:class:`KernelProfiler` plugs into :meth:`repro.sim.kernel.Environment.set_monitor`.
The kernel calls it on every schedule and every processed event — an
opt-in path; with no monitor attached the kernel pays a single
``is not None`` check per event.

The profiler counts events processed, tracks the scheduler-queue
high-water mark, and attributes each event to the *owner* of its
callbacks (the Process name for coroutine resumptions — e.g.
``n0.main`` or ``client-req`` — or the function's qualname for bare
callbacks), which is what ``repro profile`` reports.

:class:`TimingProfiler` extends the counting profiler with wall-clock
*time attribution*: the kernel brackets each event's callback batch with
``on_event``/``on_event_done``, and the elapsed host time is charged to
the event's kind (Timeout/Process/...), the owning process *type*
(``n0.main`` and ``n3.main`` collapse to ``n*.main``), and the subsystem
that owns the resumed code (kernel / press / ha / workload / net / ...).
The wall-clock reads never touch simulated time or any digested stream —
they exist only in the profiler's own report (REP001 allowlists this
module for exactly that reason).
"""

from __future__ import annotations

import re
import time
from typing import Any, Dict, List, Optional, Tuple

#: collapse digit runs so per-instance process names group into types:
#: ``n0.main`` -> ``n*.main``, ``client17`` -> ``client*``
_DIGITS = re.compile(r"\d+")

#: package component under ``repro/`` -> reported subsystem name
_SUBSYSTEM_OF_PKG = {"sim": "kernel"}


def callback_owner(cb) -> str:
    """Attribution key for one event callback."""
    bound_self = getattr(cb, "__self__", None)
    if bound_self is not None:
        name = getattr(bound_self, "name", None)
        if name:
            return str(name)
        return type(bound_self).__name__
    return getattr(cb, "__qualname__", repr(cb))


def process_type(owner: str) -> str:
    """Collapse an owner name to its process type (``n0.main`` -> ``n*.main``)."""
    return _DIGITS.sub("*", owner)


def _callback_code(cb):
    """The code object that will actually run when ``cb`` fires.

    For a Process resumption the interesting code is the *generator
    body* (``n0.main`` lives in press/server.py, not sim/process.py);
    for plain functions and bound methods it is the function itself.
    """
    bound_self = getattr(cb, "__self__", None)
    gen = getattr(bound_self, "_generator", None) if bound_self is not None else None
    if gen is not None:
        code = getattr(gen, "gi_code", None)
        if code is not None:
            return code
    func = getattr(cb, "__func__", cb)
    return getattr(func, "__code__", None)


def subsystem_of_path(filename: str) -> str:
    """Map a source path to its subsystem (``.../repro/press/server.py`` -> ``press``)."""
    norm = filename.replace("\\", "/")
    marker = "/repro/"
    idx = norm.rfind(marker)
    if idx < 0:
        return "other"
    rest = norm[idx + len(marker):]
    pkg = rest.split("/", 1)[0]
    if pkg.endswith(".py"):  # module directly under repro/ (cli.py, bench.py)
        pkg = pkg[:-3]
    return _SUBSYSTEM_OF_PKG.get(pkg, pkg)


def callback_subsystem(cb) -> str:
    """Subsystem attribution key for one event callback."""
    code = _callback_code(cb)
    if code is None:
        return "other"
    return subsystem_of_path(code.co_filename)


class KernelProfiler:
    """Event-loop statistics collector (attach via ``env.set_monitor``)."""

    __slots__ = ("events_processed", "events_scheduled", "queue_high_water",
                 "by_owner")

    def __init__(self) -> None:
        self.events_processed = 0
        self.events_scheduled = 0
        self.queue_high_water = 0
        self.by_owner: Dict[str, int] = {}

    # -- kernel monitor protocol ----------------------------------------
    def on_schedule(self, depth: int) -> None:
        self.events_scheduled += 1
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def on_event(self, event, callbacks) -> None:
        self.events_processed += 1
        by_owner = self.by_owner
        if callbacks:
            for cb in callbacks:
                owner = callback_owner(cb)
                by_owner[owner] = by_owner.get(owner, 0) + 1
        else:
            by_owner["(uncollected)"] = by_owner.get("(uncollected)", 0) + 1

    def on_event_done(self, event) -> None:
        """Post-callback hook; the counting profiler has nothing to do."""

    # -- reporting -------------------------------------------------------
    def top(self, n: int = 15) -> List[Tuple[str, int]]:
        """The ``n`` busiest callback owners, descending."""
        return sorted(self.by_owner.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "queue_high_water": self.queue_high_water,
            "by_owner": dict(self.by_owner),
        }

    def report(self, top_n: int = 15) -> str:
        lines = [
            f"events processed : {self.events_processed}",
            f"events scheduled : {self.events_scheduled}",
            f"queue high-water : {self.queue_high_water}",
            "",
            f"{'callback owner':<32} events",
        ]
        for owner, count in self.top(top_n):
            lines.append(f"{owner:<32} {count}")
        return "\n".join(lines)


def _top_times(table: Dict[str, float], n: Optional[int] = None) -> List[Tuple[str, float]]:
    ranked = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked if n is None else ranked[:n]


class TimingProfiler(KernelProfiler):
    """Counting profiler plus wall-time attribution per event.

    Each processed event's callback batch is timed
    (``on_event`` .. ``on_event_done``) and the elapsed host seconds are
    charged to three independent breakdowns:

    * ``time_by_kind`` — the event class (``Timeout``, ``Process``,
      ``Event``, ``AnyOf``...), i.e. *what the kernel was delivering*;
    * ``time_by_type`` — the owning process type
      (:func:`process_type`), i.e. *which coroutine family ran*;
    * ``time_by_subsystem`` — the package owning the resumed code
      (:func:`callback_subsystem`): kernel / press / ha / workload /
      net / faults / hardware / ...

    Attribution keys are computed per event (an event's callbacks
    overwhelmingly share one owner); multi-owner batches are charged to
    the first callback's owner.  ``wall_seconds`` totals time spent
    inside callbacks — the kernel's own heap work is the remainder of
    the run's wall clock.
    """

    __slots__ = ("time_by_kind", "time_by_type", "time_by_subsystem",
                 "count_by_kind", "wall_seconds", "_keys", "_t0")

    def __init__(self) -> None:
        super().__init__()
        self.time_by_kind: Dict[str, float] = {}
        self.time_by_type: Dict[str, float] = {}
        self.time_by_subsystem: Dict[str, float] = {}
        self.count_by_kind: Dict[str, int] = {}
        self.wall_seconds = 0.0
        self._keys: Tuple[str, str, str] = ("", "", "")
        self._t0 = 0.0

    # -- kernel monitor protocol ----------------------------------------
    def on_event(self, event, callbacks) -> None:
        super().on_event(event, callbacks)
        kind = type(event).__name__
        if callbacks:
            cb = callbacks[0]
            owner = process_type(callback_owner(cb))
            subsystem = callback_subsystem(cb)
        else:
            owner, subsystem = "(uncollected)", "kernel"
        self.count_by_kind[kind] = self.count_by_kind.get(kind, 0) + 1
        self._keys = (kind, owner, subsystem)
        self._t0 = time.perf_counter()

    def on_event_done(self, event) -> None:
        dt = time.perf_counter() - self._t0
        kind, owner, subsystem = self._keys
        self.wall_seconds += dt
        self.time_by_kind[kind] = self.time_by_kind.get(kind, 0.0) + dt
        self.time_by_type[owner] = self.time_by_type.get(owner, 0.0) + dt
        self.time_by_subsystem[subsystem] = \
            self.time_by_subsystem.get(subsystem, 0.0) + dt

    # -- reporting -------------------------------------------------------
    def top_times(self, table: str, n: int = 15) -> List[Tuple[str, float]]:
        """The ``n`` most expensive keys of one breakdown
        (``kind``/``type``/``subsystem``), descending by seconds."""
        return _top_times({
            "kind": self.time_by_kind,
            "type": self.time_by_type,
            "subsystem": self.time_by_subsystem,
        }[table], n)

    def snapshot(self) -> Dict[str, Any]:
        snap = super().snapshot()
        snap.update({
            "wall_seconds": self.wall_seconds,
            "time_by_kind": dict(self.time_by_kind),
            "time_by_type": dict(self.time_by_type),
            "time_by_subsystem": dict(self.time_by_subsystem),
            "count_by_kind": dict(self.count_by_kind),
        })
        return snap

    def report(self, top_n: int = 15) -> str:
        lines = [super().report(top_n=top_n), ""]
        lines.append(f"wall in callbacks: {self.wall_seconds * 1e3:.1f} ms")
        total = self.wall_seconds or 1.0
        for title, table in (("subsystem", self.time_by_subsystem),
                             ("event kind", self.time_by_kind),
                             ("process type", self.time_by_type)):
            lines.append("")
            lines.append(f"{title:<32} ms      share")
            for key, secs in _top_times(table, top_n):
                lines.append(f"{key:<32} {secs * 1e3:7.1f} {secs / total:6.1%}")
        return "\n".join(lines)
