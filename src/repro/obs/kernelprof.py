"""Kernel profiling hooks: where does simulation time go?

:class:`KernelProfiler` plugs into :meth:`repro.sim.kernel.Environment.set_monitor`.
The kernel calls it on every schedule and every processed event — an
opt-in path; with no monitor attached the kernel pays a single
``is not None`` check per event.

The profiler counts events processed, tracks the scheduler-queue
high-water mark, and attributes each event to the *owner* of its
callbacks (the Process name for coroutine resumptions — e.g.
``n0.main`` or ``client-req`` — or the function's qualname for bare
callbacks), which is what ``repro profile`` reports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


def callback_owner(cb) -> str:
    """Attribution key for one event callback."""
    bound_self = getattr(cb, "__self__", None)
    if bound_self is not None:
        name = getattr(bound_self, "name", None)
        if name:
            return str(name)
        return type(bound_self).__name__
    return getattr(cb, "__qualname__", repr(cb))


class KernelProfiler:
    """Event-loop statistics collector (attach via ``env.set_monitor``)."""

    __slots__ = ("events_processed", "events_scheduled", "queue_high_water",
                 "by_owner")

    def __init__(self) -> None:
        self.events_processed = 0
        self.events_scheduled = 0
        self.queue_high_water = 0
        self.by_owner: Dict[str, int] = {}

    # -- kernel monitor protocol ----------------------------------------
    def on_schedule(self, depth: int) -> None:
        self.events_scheduled += 1
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def on_event(self, event, callbacks) -> None:
        self.events_processed += 1
        by_owner = self.by_owner
        if callbacks:
            for cb in callbacks:
                owner = callback_owner(cb)
                by_owner[owner] = by_owner.get(owner, 0) + 1
        else:
            by_owner["(uncollected)"] = by_owner.get("(uncollected)", 0) + 1

    # -- reporting -------------------------------------------------------
    def top(self, n: int = 15) -> List[Tuple[str, int]]:
        """The ``n`` busiest callback owners, descending."""
        return sorted(self.by_owner.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "queue_high_water": self.queue_high_water,
            "by_owner": dict(self.by_owner),
        }

    def report(self, top_n: int = 15) -> str:
        lines = [
            f"events processed : {self.events_processed}",
            f"events scheduled : {self.events_scheduled}",
            f"queue high-water : {self.queue_high_water}",
            "",
            f"{'callback owner':<32} events",
        ]
        for owner, count in self.top(top_n):
            lines.append(f"{owner:<32} {count}")
        return "\n".join(lines)
