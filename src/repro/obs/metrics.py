"""Metrics registry: counters, gauges, and histograms with label sets.

Components obtain metric handles once, at construction time, from a
:class:`MetricsHub`; incrementing a handle on the hot path is a single
attribute update.  When the hub is disabled it hands out shared null
instruments whose mutators are no-ops, so instrumented code pays only a
method call — no branching, no allocation — with telemetry off.

``MetricsHub.snapshot()`` renders every registered instrument as plain
dicts, the record format the exporters and the ``--json`` CLI flags
share.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Gauge:
    """Point-in-time value, remembering its extremes."""

    __slots__ = ("name", "labels", "value", "max", "min")

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = float("-inf")
        self.min = float("inf")

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max:
            self.max = v
        if v < self.min:
            self.min = v

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.set(self.value - n)

    def snapshot(self) -> Dict[str, Any]:
        touched = self.max >= self.min
        return {"type": "gauge", "name": self.name, "labels": dict(self.labels),
                "value": self.value,
                "max": self.max if touched else 0.0,
                "min": self.min if touched else 0.0}


#: default histogram buckets: tuned for request latencies in seconds
DEFAULT_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Histogram:
    """Fixed-bucket distribution (cumulative counts, Prometheus-style)."""

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str],
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = +inf
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bucket bound); q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def snapshot(self) -> Dict[str, Any]:
        buckets = {f"{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["+inf"] = self.counts[-1]
        return {"type": "histogram", "name": self.name, "labels": dict(self.labels),
                "count": self.count, "sum": self.sum, "buckets": buckets,
                "mean": self.mean(),
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}


class _NullCounter:
    __slots__ = ()
    kind = "counter"
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0
    max = 0.0
    min = 0.0

    def set(self, v: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    sum = 0.0
    count = 0

    def observe(self, v: float) -> None:
        pass

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsHub:
    """Registry of labelled instruments for one world/experiment.

    ``counter``/``gauge``/``histogram`` are memoized on
    ``(name, sorted(labels))`` — asking twice returns the same instrument,
    so independent components can share a series.  A disabled hub returns
    the shared null instruments and snapshots to an empty list.
    """

    __slots__ = ("enabled", "_metrics")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any], **kw):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, {str(k): str(v) for k, v in labels.items()}, **kw)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{dict(labels)!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(Histogram, name, labels,
                         buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS)

    # -- queries ---------------------------------------------------------
    def get(self, name: str, **labels: Any):
        """The registered instrument, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> float:
        metric = self.get(name, **labels)
        # Histograms have no scalar .value; report their observation count
        # so value() is total on every instrument type.
        if metric is None:
            return 0.0
        return getattr(metric, "value", getattr(metric, "count", 0.0))

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every instrument as a plain dict, sorted by (name, labels)."""
        return [m.snapshot() for _, m in sorted(self._metrics.items())]

    def __len__(self) -> int:
        return len(self._metrics)
