"""Performance observability: kernel benchmarks, overhead self-measurement.

This module is the measurement core behind ``repro bench`` (the thin
runner lives in :mod:`repro.bench`).  It answers three questions the
kernel-speed work (ROADMAP item 1) is gated on:

1. **How fast is the kernel?**  Standardized scenarios — single-cell
   steady state, single-cell fault+recovery, and a small campaign grid —
   are driven end to end and report events/sec, wall-per-cell, and peak
   RSS.  Event counts come from the kernel's unconditional
   ``processed_count`` counter, so measuring does not require attaching
   a monitor (which would perturb the number being measured).

2. **What does observability cost?**  Every scenario runs once per obs
   mode — ``off`` (``Telemetry.disabled()``), ``unsub`` (tracing+metrics
   enabled, nothing consuming), and ``on`` (a JSONL subscriber
   serializing every event at emit time) — and the wall-clock ratios
   make the "obs is ~free when not exporting" claim a gated number.

3. **Does observability perturb results?**  Each run is fingerprinted
   with a chained SHA-256 over telemetry-independent simulation outputs
   (marker-log entries, request outcomes, final clock, event count).
   The digests must be identical across all modes *and* under the
   time-attribution profiler; any divergence means telemetry leaked into
   simulation behaviour.

Wall-clock reads here time the *host*, never simulated components, and
feed only the benchmark report — REP001 allowlists this module for that
reason.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.export import jsonl_subscriber
from repro.obs.telemetry import Telemetry

#: the observability configurations every scenario is measured under:
#: off / enabled-unsubscribed / fully exporting / causal span tracing
OBS_MODES: Tuple[str, ...] = ("off", "unsub", "on", "spans")

#: schema of the BENCH_kernel.json / TREND.jsonl records
BENCH_SCHEMA = 1


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=repr).encode("utf-8")


# ---------------------------------------------------------------------------
# scenarios


@dataclass(frozen=True)
class Scenario:
    """One standardized, seeded benchmark workload.

    ``run(telemetry)`` builds fresh world(s) under the given telemetry
    bundle, drives them to completion, and returns the worlds so the
    harness can fingerprint and count events.  ``cells`` is the logical
    experiment-cell count (wall-per-cell = wall / cells).
    """

    name: str
    description: str
    cells: int
    run: Callable[[Telemetry], List[Any]]


def _run_steady(telemetry: Telemetry) -> List[Any]:
    from repro.experiments.configs import version
    from repro.experiments.profiles import SMALL
    from repro.experiments.runner import build_world

    world = build_world(version("COOP"), SMALL, seed=0, telemetry=telemetry)
    world.env.run(until=120.0)
    return [world]


def _run_crash(telemetry: Telemetry) -> List[Any]:
    from repro.experiments.configs import version
    from repro.experiments.profiles import SMALL
    from repro.experiments.runner import build_world
    from repro.faults.types import FaultKind

    world = build_world(version("COOP"), SMALL, seed=0, telemetry=telemetry)
    world.env.run(until=80.0)
    world.injector.inject_for(FaultKind.NODE_CRASH, "n1", duration=30.0)
    world.env.run(until=140.0)
    return [world]


def _run_grid(telemetry: Telemetry) -> List[Any]:
    from repro.core.quantify import QuantifyConfig, run_single_fault
    from repro.experiments.configs import version
    from repro.faults.types import FaultKind

    config = QuantifyConfig.quick(seed=0)
    spec = version("INDEP")
    worlds = []
    for kind in (FaultKind.NODE_CRASH, FaultKind.APP_CRASH):
        _trace, world = run_single_fault(spec, kind, config,
                                         telemetry=telemetry)
        worlds.append(world)
    return worlds


#: the standard scenario suite ``repro bench`` runs by default
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("steady", "COOP fault-free steady state, 120 sim-s",
                 cells=1, run=_run_steady),
        Scenario("crash", "COOP node crash at t=80 + recovery, 140 sim-s",
                 cells=1, run=_run_crash),
        Scenario("grid", "INDEP quick campaign cells: node_crash, app_crash",
                 cells=2, run=_run_grid),
    )
}


# ---------------------------------------------------------------------------
# fingerprinting: the cross-mode correctness oracle


def worlds_digest(worlds: Sequence[Any]) -> str:
    """Chained SHA-256 over telemetry-independent simulation outputs.

    Uses only streams that exist in every obs mode — the plain MarkerLog
    half of the traced marker log, the request-outcome counters, the
    final simulated clock, and the kernel's processed-event count.  Equal
    digests across modes prove observability never perturbed the run.
    """
    chain = hashlib.sha256(b"repro-kernel-bench")
    for world in worlds:
        for entry in world.markers.entries:
            chain.update(_canonical(list(entry)))
        stats = world.stats
        chain.update(_canonical({
            "issued": stats.issued,
            "outcomes": {str(k): v for k, v in stats.outcomes.items()},
            "now": world.env.now,
            "processed": world.env.processed_count,
        }))
    return chain.hexdigest()


# ---------------------------------------------------------------------------
# per-mode measurement


@dataclass
class ModeRun:
    """One scenario executed under one observability mode."""

    mode: str
    wall_seconds: float
    events_processed: int
    events_scheduled: int
    trace_events: int
    digest: str
    spans_recorded: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.events_processed / self.wall_seconds \
            if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "events_processed": self.events_processed,
            "events_scheduled": self.events_scheduled,
            "events_per_sec": self.events_per_sec,
            "trace_events": self.trace_events,
            "digest": self.digest,
            "spans_recorded": self.spans_recorded,
        }


def _telemetry_for(mode: str, sink) -> Telemetry:
    if mode == "off":
        return Telemetry.disabled()
    if mode == "spans":
        # Full causal tracing: every request grows a span tree.
        return Telemetry(trace_spans=True)
    telemetry = Telemetry()
    if mode == "on":
        telemetry.tracer.subscribe(jsonl_subscriber(sink))
    return telemetry


def measure_mode(scenario: Scenario, mode: str) -> ModeRun:
    """Run ``scenario`` once under ``mode`` and measure it."""
    if mode not in OBS_MODES:
        raise ValueError(f"unknown obs mode {mode!r}; expected one of {OBS_MODES}")
    gc.collect()
    sink = open(os.devnull, "w", encoding="utf-8") if mode == "on" else None
    try:
        telemetry = _telemetry_for(mode, sink)
        t0 = time.perf_counter()
        worlds = scenario.run(telemetry)
        wall = time.perf_counter() - t0
    finally:
        if sink is not None:
            sink.close()
    return ModeRun(
        mode=mode,
        wall_seconds=wall,
        events_processed=sum(w.env.processed_count for w in worlds),
        events_scheduled=sum(w.env.scheduled_count for w in worlds),
        trace_events=len(telemetry.tracer),
        digest=worlds_digest(worlds),
        spans_recorded=len(telemetry.spans) if telemetry.trace_spans else 0,
    )


def measure_attribution(scenario: Scenario,
                        top_n: int = 10) -> Tuple[Dict[str, Any], str]:
    """Run ``scenario`` under the :class:`TimingProfiler`.

    Returns ``(attribution, digest)``: the wall-time breakdown per
    subsystem / event kind / process type, plus the run's fingerprint
    (which must match the unprofiled modes — profiling is observability
    too and must not perturb results).
    """
    gc.collect()
    telemetry = Telemetry(profile_time=True)
    t0 = time.perf_counter()
    worlds = scenario.run(telemetry)
    wall = time.perf_counter() - t0
    profiler = telemetry.profiler
    assert profiler is not None
    attribution = {
        "wall_seconds": wall,
        "callback_seconds": profiler.wall_seconds,
        "kernel_overhead_seconds": max(wall - profiler.wall_seconds, 0.0),
        "by_subsystem": dict(profiler.top_times("subsystem", top_n)),
        "by_kind": dict(profiler.top_times("kind", top_n)),
        "by_type": dict(profiler.top_times("type", top_n)),
    }
    return attribution, worlds_digest(worlds)


# ---------------------------------------------------------------------------
# per-scenario report


@dataclass
class ScenarioReport:
    """All measurements for one scenario: modes, ratios, attribution."""

    scenario: str
    description: str
    cells: int
    runs: Dict[str, ModeRun] = field(default_factory=dict)
    attribution: Dict[str, Any] = field(default_factory=dict)
    attribution_digest: str = ""

    @property
    def digests(self) -> List[str]:
        out = [run.digest for _, run in sorted(self.runs.items())]
        if self.attribution_digest:
            out.append(self.attribution_digest)
        return out

    @property
    def digests_equal(self) -> bool:
        return len(set(self.digests)) == 1

    @property
    def events_per_sec(self) -> float:
        """Headline kernel speed: events/sec with observability off."""
        return self.runs["off"].events_per_sec

    @property
    def wall_per_cell(self) -> float:
        return self.runs["off"].wall_seconds / self.cells

    def overhead(self, mode: str) -> float:
        """Wall-clock ratio of ``mode`` over the ``off`` baseline."""
        base = self.runs["off"].wall_seconds
        return self.runs[mode].wall_seconds / base if base > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "description": self.description,
            "cells": self.cells,
            "runs": {m: r.to_dict() for m, r in sorted(self.runs.items())},
            "events_per_sec": self.events_per_sec,
            "wall_per_cell": self.wall_per_cell,
            "overhead_unsub": self.overhead("unsub"),
            "overhead_on": self.overhead("on"),
            "overhead_spans": self.overhead("spans")
            if "spans" in self.runs else None,
            "digests_equal": self.digests_equal,
            "attribution": self.attribution,
            "attribution_digest": self.attribution_digest,
        }


def measure_scenario(scenario: Scenario,
                     modes: Sequence[str] = OBS_MODES,
                     attribution: bool = True,
                     top_n: int = 10) -> ScenarioReport:
    """The full treatment for one scenario: every mode + attribution."""
    report = ScenarioReport(scenario=scenario.name,
                            description=scenario.description,
                            cells=scenario.cells)
    for mode in modes:
        report.runs[mode] = measure_mode(scenario, mode)
    if attribution:
        report.attribution, report.attribution_digest = \
            measure_attribution(scenario, top_n=top_n)
    return report


# ---------------------------------------------------------------------------
# provenance


def _git(*args: str) -> Optional[str]:
    """stdout of one git command, or None if git fails/is absent."""
    try:
        proc = subprocess.run(["git", *args], capture_output=True, text=True,
                              check=False)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip()


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unsupported).

    Note: ``ru_maxrss`` is a process-lifetime high-water mark, so in a
    multi-scenario run it reflects the heaviest scenario so far.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def provenance() -> Dict[str, Any]:
    """Where/when/what produced a bench record (TREND.jsonl stamp).

    Host identity is both readable (``host``) and stable
    (``host_fingerprint``) so trend renderers can separate trajectories
    measured on different machines instead of mixing incomparable
    numbers.
    """
    sha = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain") if sha is not None else None
    fingerprint = hashlib.sha256("|".join((
        platform.node(), platform.machine(), platform.processor(),
        str(os.cpu_count()),
    )).encode("utf-8")).hexdigest()[:12]
    return {
        "git_sha": sha or "unknown",
        "git_dirty": bool(status) if status is not None else None,
        "host": platform.node(),
        "host_fingerprint": fingerprint,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "timestamp": time.time(),
    }
