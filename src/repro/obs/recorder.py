"""Campaign flight recorder: capture one single-fault experiment to disk.

A :class:`FlightRecord` is a complete, versioned snapshot of a phase-1
injection experiment — the campaign configuration and seed, the fault
lifecycle timeline, every structured :class:`~repro.obs.events.TraceEvent`,
every marker, and the raw completion timestamps of the throughput series.
That is exactly the input set of the downstream analyses (the
:class:`~repro.core.template.TemplateFitter` and the stage-attribution
engine in :mod:`repro.obs.attribution`), so a saved record can be
re-analyzed or re-fit offline, without re-simulating, and two analyses of
the same record are bit-identical (the replay property the round-trip
tests pin).

Artifact schema (JSON, one object per file)
-------------------------------------------

======================  ====================================================
field                   contents
======================  ====================================================
``schema``              integer schema version (:data:`SCHEMA_VERSION`)
``version``             system version name (``COOP``, ``FME``, ...)
``fault``               injected :class:`~repro.faults.types.FaultKind` value
``target``              injection target (``n1``, ``switch0``, ...)
``seed``                master RNG seed of the run
``profile``             scale-profile name (``small``, ...)
``campaign``            :class:`~repro.faults.campaign.CampaignConfig` fields
``timeline``            ``t_inject``/``t_detect``/``t_repair``/``t_reset``/
                        ``t_end``/``normal_tput``/``offered_rate``
``component``           ``{"kind": ..., "target": ...}`` of the faulted part
``samples``             raw completion timestamps (the throughput series)
``markers``             ``[time, label, data]`` triples (sanitized)
``events``              structured trace events (``event_to_dict`` form)
======================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from repro.faults.campaign import CampaignConfig, ExperimentTrace
from repro.faults.types import FaultComponent, FaultKind
from repro.obs.events import TraceEvent, sanitize
from repro.obs.export import event_from_dict, event_to_dict
from repro.sim.series import MarkerLog, ThroughputSeries

#: Bump when the artifact layout changes; readers refuse newer schemas.
SCHEMA_VERSION = 1

PathOrFile = Union[str, Path, TextIO]

_TIMELINE_FIELDS = ("t_inject", "t_detect", "t_repair", "t_reset", "t_end",
                    "normal_tput", "offered_rate")


@dataclass
class FlightRecord:
    """One recorded single-fault experiment, replayable offline."""

    version: str
    fault: str
    target: str
    seed: int
    profile: str
    campaign: CampaignConfig
    timeline: Dict[str, Optional[float]]
    component: FaultComponent
    samples: List[float]
    markers: List[Any]  # [time, label, data] triples
    events: List[TraceEvent] = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    # -- construction ------------------------------------------------------
    @classmethod
    def from_experiment(
        cls,
        trace: ExperimentTrace,
        events: List[TraceEvent],
        seed: int = 0,
        profile: str = "",
        target: str = "",
    ) -> "FlightRecord":
        """Snapshot a freshly run :class:`ExperimentTrace` plus its
        structured event stream (``telemetry.tracer.events``)."""
        timeline = {
            "t_inject": trace.t_inject,
            "t_detect": trace.t_detect,
            "t_repair": trace.t_repair,
            "t_reset": trace.t_reset,
            "t_end": trace.t_end,
            "normal_tput": trace.normal_tput,
            "offered_rate": trace.offered_rate,
        }
        return cls(
            version=trace.version,
            fault=trace.component.kind.value,
            target=target or trace.component.target,
            seed=seed,
            profile=profile,
            campaign=trace.config,
            timeline=timeline,
            component=trace.component,
            samples=[float(t) for t in trace.series.times],
            markers=[[float(t), lbl, sanitize(d)]
                     for t, lbl, d in trace.markers.entries],
            events=list(events),
        )

    # -- replay ------------------------------------------------------------
    def to_trace(self) -> ExperimentTrace:
        """Rebuild the :class:`ExperimentTrace` the analyses consume.

        The rebuilt trace is observationally identical to the live one:
        the throughput series has the same timestamps, the marker log the
        same ``(time, label)`` pairs (payloads are the sanitized forms),
        so fitting and attribution reproduce the online results exactly.
        """
        series = ThroughputSeries(name=f"{self.version}:{self.fault}")
        for t in self.samples:
            series.record(t)
        markers = MarkerLog()
        for t, label, data in self.markers:
            markers.mark(t, label, data)
        return ExperimentTrace(
            component=self.component,
            config=self.campaign,
            series=series,
            markers=markers,
            t_inject=float(self.timeline["t_inject"]),
            t_repair=float(self.timeline["t_repair"]),
            t_end=float(self.timeline["t_end"]),
            normal_tput=float(self.timeline["normal_tput"]),
            offered_rate=float(self.timeline["offered_rate"]),
            t_reset=(None if self.timeline.get("t_reset") is None
                     else float(self.timeline["t_reset"])),
            version=self.version,
        )

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "version": self.version,
            "fault": self.fault,
            "target": self.target,
            "seed": self.seed,
            "profile": self.profile,
            "campaign": asdict(self.campaign),
            "timeline": dict(self.timeline),
            "component": {"kind": self.component.kind.value,
                          "target": self.component.target},
            "samples": self.samples,
            "markers": self.markers,
            "events": [event_to_dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FlightRecord":
        schema = int(d.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"flight record schema {schema} is newer than supported "
                f"({SCHEMA_VERSION}); upgrade the tooling"
            )
        component = FaultComponent(
            kind=FaultKind(d["component"]["kind"]),
            target=str(d["component"]["target"]),
        )
        return cls(
            version=str(d["version"]),
            fault=str(d["fault"]),
            target=str(d.get("target", component.target)),
            seed=int(d.get("seed", 0)),
            profile=str(d.get("profile", "")),
            campaign=CampaignConfig(**d["campaign"]),
            timeline=dict(d["timeline"]),
            component=component,
            samples=[float(t) for t in d["samples"]],
            markers=[list(m) for m in d.get("markers", [])],
            events=[event_from_dict(e) for e in d.get("events", [])],
            schema=schema,
        )

    # -- convenience -------------------------------------------------------
    @property
    def duration(self) -> float:
        return float(self.timeline["t_end"])

    def events_of(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]


def write_record(record: FlightRecord, dst: PathOrFile) -> None:
    """Persist one record as a JSON artifact (parents created)."""
    if isinstance(dst, (str, Path)):
        path = Path(dst)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(record.to_dict(), fp, sort_keys=True)
            fp.write("\n")
    else:
        json.dump(record.to_dict(), dst, sort_keys=True)
        dst.write("\n")


def read_record(src: PathOrFile) -> FlightRecord:
    if isinstance(src, (str, Path)):
        with open(src, "r", encoding="utf-8") as fp:
            return FlightRecord.from_dict(json.load(fp))
    return FlightRecord.from_dict(json.load(src))


def merge_records(records: Sequence[FlightRecord]) -> Dict[str, FlightRecord]:
    """Deterministically merge per-cell records into a fault-keyed map.

    The parallel executor hands records back in cell (grid) order; this
    keys them by fault kind *preserving that order*, so downstream
    iteration — template fitting, normal-throughput averaging — walks
    the same sequence a serial campaign would.  Records must share one
    system version and one seed, and a duplicated fault kind is an
    error: a grid never runs the same cell twice, so a duplicate means
    the caller merged two different campaigns.
    """
    merged: Dict[str, FlightRecord] = {}
    versions = {r.version for r in records}
    if len(versions) > 1:
        raise ValueError(
            f"records span multiple versions {sorted(versions)}; "
            "merge one version at a time")
    seeds = {r.seed for r in records}
    if len(seeds) > 1:
        raise ValueError(
            f"records span multiple seeds {sorted(seeds)}; "
            "a campaign grid runs under one master seed")
    for record in records:
        if record.fault in merged:
            raise ValueError(
                f"duplicate record for fault {record.fault!r} "
                f"(version {record.version}, seed {record.seed})")
        merged[record.fault] = record
    return merged


def record_flight(
    spec,
    kind: FaultKind,
    config=None,
    target: Optional[str] = None,
    seed: Optional[int] = None,
) -> FlightRecord:
    """Run one single-fault experiment with telemetry and snapshot it.

    ``spec`` is a :class:`~repro.experiments.configs.VersionSpec` (or a
    version name); ``config`` a
    :class:`~repro.core.quantify.QuantifyConfig`.  This is the engine of
    the ``repro record`` command.
    """
    # Imported here: core.quantify reaches back into the obs package via
    # the world builder, so a module-level import would be cyclic.
    from repro.core.quantify import QuantifyConfig, run_single_fault
    from repro.experiments.configs import version as version_by_name
    from repro.obs.telemetry import Telemetry

    if isinstance(spec, str):
        spec = version_by_name(spec)
    config = config or QuantifyConfig.from_env()
    if seed is not None and seed != config.seed:
        from dataclasses import replace

        config = replace(config, seed=seed)
    telemetry = Telemetry()
    trace, world = run_single_fault(spec, kind, config, target=target,
                                    telemetry=telemetry)
    return FlightRecord.from_experiment(
        trace,
        events=telemetry.tracer.events,
        seed=getattr(world, "seed", config.seed),
        profile=config.profile.name,
        target=target or world.default_target(kind),
    )
