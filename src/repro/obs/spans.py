"""Causal request-path tracing: span trees, critical paths, tail blame.

The paper's central claim is that faults *propagate through
cooperation*: COOP's unavailability grows with the cluster while FME's
stays flat.  Aggregate telemetry (TraceEvents, metrics) shows *that*
p99 explodes during a fault; this module shows *why*, per request.

A :class:`Span` is one timed hop of one request (queueing in the main
queue, CPU service, a cooperative peer fetch, a disk read, a network
transfer, timeout wait).  Spans form a tree per request, rooted at the
client's ``request`` span and threaded through the cluster by a trace
context — the parent :class:`Span` object itself — carried on
:class:`~repro.net.message.Message.ctx` and captured at kernel
process-spawn points (:meth:`repro.sim.kernel.Environment.process`).

Determinism contract (the PR-6 oracle extends to spans):

* recording never schedules events, draws RNG, or mutates component
  state — a spans-enabled run is event-for-event identical to a
  disabled one;
* head-based sampling is a pure integer hash of the request id mixed
  with a seed (:func:`sampled`), so the same requests are sampled under
  every ``PYTHONHASHSEED`` and in every worker process;
* span ids are allocated from a monotone per-recorder counter and all
  bookkeeping is keyed on deterministic integers, never ``id()``.

Retention is ring-buffered per request *tree* (``max_requests``),
mirroring the :class:`~repro.obs.trace.Tracer` event ring, so
full-fidelity capture is opt-in and bounded.

On top of the store:

* :func:`critical_path` — the chain of hops that determined when the
  request finished, with per-hop self-time attribution
  (:func:`attribute_path`: queueing vs service vs network vs disk vs
  timeout-wait);
* :func:`render_waterfall` — per-request ASCII waterfall in the style
  of :mod:`repro.obs.timeline`;
* :func:`blame_report` / :func:`format_blame` — the p99 slowest
  requests grouped by critical-path signature and dominant hop,
  split before/during/after each injected fault.  During a node crash
  this is where COOP's tails show ``peer_fetch`` hops while FME's
  stay local;
* :func:`span_event` / :func:`span_to_dict` — export through the
  existing JSONL exporters (:mod:`repro.obs.export`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.events import EventKind, TraceEvent

#: Attribution buckets a span may charge its self-time to.
CATEGORIES = frozenset(
    {"request", "queue", "service", "network", "disk", "wait", "route", "probe"}
)

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a seeded, hashseed-independent integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Span:
    """One timed hop of one request.

    ``t1`` is ``None`` while the span is open; crash/reap paths may
    legitimately leave spans unfinished (the analysis helpers clamp
    them to the tree's end).
    """

    __slots__ = ("span_id", "req_id", "parent_id", "name", "category",
                 "node", "t0", "t1", "meta")

    def __init__(self, span_id: int, req_id: int, parent_id: Optional[int],
                 name: str, category: str, node: str, t0: float):
        assert category in CATEGORIES, f"unknown span category {category!r}"
        self.span_id = span_id
        self.req_id = req_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.node = node
        self.t0 = t0
        self.t1: Optional[float] = None
        self.meta: Dict[str, Any] = {}

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t1:.3f}" if self.t1 is not None else "open"
        return (f"<Span #{self.span_id} req={self.req_id} {self.name} "
                f"[{self.t0:.3f}..{end}]>")


class SpanRecorder:
    """The per-world span store: sampling, recording, ring retention.

    The trace context threaded through the system *is* the parent
    :class:`Span`; ``None`` means "not sampled", and every method is
    ``None``-tolerant so call sites stay unconditional.  Disabled
    recorders never allocate, so the simulation hot path pays one
    attribute check per call site.
    """

    __slots__ = ("enabled", "sample", "seed", "max_requests", "dropped",
                 "_trees", "_next_span_id", "_next_probe_id", "_env")

    def __init__(self, enabled: bool = True, sample: float = 1.0,
                 seed: int = 0, max_requests: Optional[int] = None):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample rate {sample!r} outside [0, 1]")
        self.enabled = enabled
        self.sample = sample
        self.seed = seed
        self.max_requests = max_requests
        #: request trees evicted by the ring buffer
        self.dropped = 0
        # req_id -> [Span, ...] in creation order; dict order doubles as
        # the eviction ring (oldest tree first).
        self._trees: Dict[int, List[Span]] = {}
        self._next_span_id = 0
        self._next_probe_id = 0
        self._env = None

    # -- wiring ----------------------------------------------------------
    def bind_clock(self, env) -> None:
        """Read timestamps from ``env.now`` (done by Telemetry.attach)."""
        self._env = env

    def _time(self, t: Optional[float]) -> float:
        if t is not None:
            return t
        return self._env.now if self._env is not None else 0.0

    # -- sampling --------------------------------------------------------
    def sampled(self, req_id: int) -> bool:
        """Deterministic head-based sampling decision for one request.

        A pure function of ``(req_id, seed, sample)`` — independent of
        ``PYTHONHASHSEED``, process boundaries, and arrival order.
        """
        if not self.enabled:
            return False
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        h = _mix64((req_id & _MASK64) ^ _mix64(self.seed & _MASK64))
        return (h / float(1 << 64)) < self.sample

    # -- recording -------------------------------------------------------
    def _alloc(self, req_id: int, parent_id: Optional[int], name: str,
               category: str, node: str, t: Optional[float],
               meta: Dict[str, Any]) -> Span:
        self._next_span_id += 1
        span = Span(self._next_span_id, req_id, parent_id, name, category,
                    node, self._time(t))
        if meta:
            span.meta.update(meta)
        return span

    def root(self, req_id: int, name: str, node: str,
             t: Optional[float] = None, **meta: Any) -> Optional[Span]:
        """Open a request's root span; returns None when not sampled."""
        if not self.sampled(req_id):
            return None
        if self.max_requests is not None and req_id not in self._trees:
            while len(self._trees) >= self.max_requests:
                self._trees.pop(next(iter(self._trees)))
                self.dropped += 1
        span = self._alloc(req_id, None, name, "request", node, t, meta)
        self._trees.setdefault(req_id, []).append(span)
        return span

    def probe_root(self, name: str, node: str, t: Optional[float] = None,
                   **meta: Any) -> Optional[Span]:
        """Root span in the monitoring namespace (negative req_ids).

        FME/S-FME probe rounds live here so request blame reports can
        exclude them without a schema flag.
        """
        if not self.enabled:
            return None
        self._next_probe_id -= 1
        return self.root(self._next_probe_id, name, node, t, **meta)

    def start(self, name: str, category: str, node: str,
              ctx: Optional[Span], t: Optional[float] = None,
              **meta: Any) -> Optional[Span]:
        """Open a child span under ``ctx``; None ctx (unsampled) no-ops."""
        if ctx is None or not self.enabled:
            return None
        tree = self._trees.get(ctx.req_id)
        if tree is None:  # tree already evicted by the ring: drop the child
            return None
        span = self._alloc(ctx.req_id, ctx.span_id, name, category, node,
                           t, meta)
        tree.append(span)
        return span

    def event(self, ctx: Optional[Span], name: str, category: str, node: str,
              t: Optional[float] = None, **meta: Any) -> Optional[Span]:
        """A zero-duration annotation span (e.g. a routing decision)."""
        span = self.start(name, category, node, ctx, t, **meta)
        if span is not None:
            span.t1 = span.t0
        return span

    def finish(self, span: Optional[Span], t: Optional[float] = None,
               **meta: Any) -> None:
        if span is None:
            return
        span.t1 = self._time(t)
        if meta:
            span.meta.update(meta)

    def annotate(self, span: Optional[Span], **meta: Any) -> None:
        if span is not None and meta:
            span.meta.update(meta)

    # -- access ----------------------------------------------------------
    @property
    def request_ids(self) -> List[int]:
        return list(self._trees)

    def tree(self, req_id: int) -> List[Span]:
        return list(self._trees.get(req_id, ()))

    def trees(self) -> Iterator[Tuple[int, List[Span]]]:
        for req_id, spans in self._trees.items():
            yield req_id, list(spans)

    def spans(self) -> Iterator[Span]:
        for spans in self._trees.values():
            yield from spans

    def __len__(self) -> int:
        return sum(len(s) for s in self._trees.values())

    def clear(self) -> None:
        self._trees.clear()


#: Shared always-disabled recorder (mirrors NULL_TELEMETRY).
NULL_SPANS = SpanRecorder(enabled=False)


# ---------------------------------------------------------------------------
# export


def span_to_dict(span: Span) -> Dict[str, Any]:
    return {
        "span_id": span.span_id,
        "req_id": span.req_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "category": span.category,
        "node": span.node,
        "t0": span.t0,
        "t1": span.t1,
        "meta": dict(span.meta),
    }


def span_from_dict(doc: Dict[str, Any]) -> Span:
    span = Span(int(doc["span_id"]), int(doc["req_id"]),
                doc["parent_id"], str(doc["name"]), str(doc["category"]),
                str(doc["node"]), float(doc["t0"]))
    span.t1 = None if doc.get("t1") is None else float(doc["t1"])
    span.meta.update(doc.get("meta") or {})
    return span


def span_event(span: Span) -> TraceEvent:
    """Bridge a span onto the TraceEvent schema so the existing JSONL/CSV
    exporters (:mod:`repro.obs.export`) carry spans unchanged."""
    return TraceEvent(time=span.t0, kind=EventKind.SPAN, source=span.node,
                      data=span_to_dict(span))


def span_from_event(event: TraceEvent) -> Span:
    return span_from_dict(event.data)


def spans_digest(spans: Iterable[Span]) -> str:
    """Canonical SHA-256 over a span set: the determinism oracle's view.

    Sorted by ``(req_id, span_id)`` so insertion order (which may differ
    between a live recorder and a parsed export) cannot leak in.
    """
    h = hashlib.sha256()
    for span in sorted(spans, key=lambda s: (s.req_id, s.span_id)):
        h.update(json.dumps(span_to_dict(span), sort_keys=True,
                            separators=(",", ":")).encode())
    return h.hexdigest()


def filter_spans(spans: Iterable[Span],
                 kinds: Optional[Sequence[str]] = None,
                 components: Optional[Sequence[str]] = None,
                 limit: Optional[int] = None) -> List[Span]:
    """The span half of the CLI selection layer (``--kind`` filters the
    span *category*, ``--component`` the recording node)."""
    out: List[Span] = []
    kindset = set(kinds) if kinds else None
    compset = set(components) if components else None
    for span in spans:
        if kindset is not None and span.category not in kindset:
            continue
        if compset is not None and span.node not in compset:
            continue
        out.append(span)
        if limit is not None and len(out) >= limit:
            break
    return out


# ---------------------------------------------------------------------------
# tree analysis


def _tree_end(spans: Sequence[Span]) -> float:
    """Latest known timestamp in a tree (clamp for unfinished spans)."""
    end = max(s.t0 for s in spans)
    for s in spans:
        if s.t1 is not None and s.t1 > end:
            end = s.t1
    return end


def span_end(span: Span, default: float) -> float:
    return span.t1 if span.t1 is not None else default


def tree_root(spans: Sequence[Span]) -> Optional[Span]:
    for span in spans:
        if span.parent_id is None:
            return span
    return None


def _walk_critical(span: Span, children: Dict[int, List[Span]], end: float,
                   out: List[Tuple[Span, float]]) -> None:
    """Backward scan: from the span's end, repeatedly descend into the
    child that was completing latest, then continue scanning earlier
    siblings — so *serialized* stages (connect, then queue, then serve)
    all land on the path, not just the final chain.  Time not covered by
    any on-path child is the span's own (``self``) time."""
    e = span_end(span, end)
    entry_index = len(out)
    out.append((span, 0.0))
    cursor = e
    self_time = 0.0
    # ascending by (end, id): pop() yields the latest-ending child.
    pending = sorted(children.get(span.span_id, []),
                     key=lambda s: (span_end(s, end), s.span_id))
    while pending:
        child = pending.pop()
        ce = span_end(child, end)
        if child.t0 >= cursor:
            continue  # entirely inside an already-attributed region
        ce = min(ce, cursor)
        self_time += cursor - ce  # gap the span spent on its own
        _walk_critical(child, children, end, out)
        cursor = child.t0
        # siblings overlapping the chosen child are shadowed by it;
        # only ones that finished before it started remain candidates.
        pending = [p for p in pending if span_end(p, end) <= cursor]
    self_time += max(0.0, cursor - span.t0)
    out[entry_index] = (span, self_time)


def _critical_entries(spans: Sequence[Span]) -> List[Tuple[Span, float]]:
    root = tree_root(spans)
    if root is None:
        return []
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    end = _tree_end(spans)
    out: List[Tuple[Span, float]] = []
    _walk_critical(root, children, end, out)
    out.sort(key=lambda e: (e[0].t0, e[0].span_id))  # chronological
    return out


def critical_path(spans: Sequence[Span]) -> List[Span]:
    """The chronological chain of spans that determined when the request
    finished (waiting excluded: parallel hops shadowed by a slower one
    are not on the path)."""
    return [span for span, _self in _critical_entries(spans)]


def attribute_path(spans: Sequence[Span],
                   end: Optional[float] = None) -> List[Dict[str, Any]]:
    """Per-hop latency attribution along the critical path of a tree.

    Each hop's ``self_time`` is the part of the request's latency this
    hop alone was responsible for; hop times sum to the root's duration.
    The hop's ``category`` buckets it: queueing vs service vs network
    vs disk vs timeout-wait.
    """
    tail = end if end is not None else (_tree_end(spans) if spans else 0.0)
    hops: List[Dict[str, Any]] = []
    for span, self_time in _critical_entries(spans):
        e = span_end(span, tail)
        hops.append({
            "span_id": span.span_id,
            "name": span.name,
            "category": span.category,
            "node": span.node,
            "duration": e - span.t0,
            "self_time": self_time,
        })
    return hops


def path_signature(path: Sequence[Span]) -> str:
    """Stable label for a critical-path shape, e.g.
    ``request>mainq>peer_fetch>remote_serve>disk``."""
    return ">".join(s.name for s in path)


def dominant_hop(hops: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    if not hops:
        return None
    return max(hops, key=lambda h: (h["self_time"], -h["span_id"]))


def analyze_tree(req_id: int, spans: Sequence[Span]) -> Optional[Dict[str, Any]]:
    """One request's blame record: latency, signature, dominant hop."""
    root = tree_root(spans)
    if root is None:
        return None
    end = _tree_end(spans)
    entries = _critical_entries(spans)
    hops = attribute_path(spans, end=end)
    dom = dominant_hop(hops)
    return {
        "req_id": req_id,
        "t0": root.t0,
        "latency": span_end(root, end) - root.t0,
        "outcome": root.meta.get("outcome", "open"),
        "signature": path_signature([s for s, _ in entries]),
        "hops": hops,
        "dominant": dom,
    }


# ---------------------------------------------------------------------------
# tail-latency blame


def phases_from_trace(events: Iterable[TraceEvent],
                      end: Optional[float] = None) -> List[Tuple[str, float, float]]:
    """Before/during/after windows for each injected fault in a trace.

    ``end`` defaults to the last event's timestamp.
    """
    marks: List[Tuple[float, str, str]] = []
    last = 0.0
    for ev in events:
        last = max(last, ev.time)
        if ev.kind == EventKind.FAULT_INJECTED:
            marks.append((ev.time, "inject", str(ev.get("fault", "fault"))))
        elif ev.kind in (EventKind.FAULT_REPAIRED, EventKind.OPERATOR_RESET):
            marks.append((ev.time, "repair", str(ev.get("fault", "fault"))))
    if end is None:
        end = last
    if not marks:
        return [("all", 0.0, end)]
    marks.sort(key=lambda m: m[0])
    phases: List[Tuple[str, float, float]] = []
    cursor = 0.0
    label = "before"
    for t, action, fault in marks:
        if t > cursor:
            phases.append((label, cursor, t))
        cursor = t
        label = f"during {fault}" if action == "inject" else f"after {fault}"
    if end > cursor:
        phases.append((label, cursor, end))
    return phases


def blame_report(trees: Iterable[Tuple[int, Sequence[Span]]],
                 percentile: float = 99.0,
                 phases: Optional[Sequence[Tuple[str, float, float]]] = None,
                 top: int = 5) -> Dict[str, Any]:
    """Group the p-``percentile`` slowest requests by critical-path
    signature and dominant hop, per phase.

    Monitoring trees (negative req_ids, e.g. FME probes) are excluded.
    The per-phase threshold is computed within the phase, so a fault
    that slows *everything* still yields a meaningful tail.
    """
    records = []
    for req_id, spans in trees:
        if req_id < 0 or not spans:
            continue
        rec = analyze_tree(req_id, spans)
        if rec is not None:
            records.append(rec)
    if phases is None:
        end = max((r["t0"] + r["latency"] for r in records), default=0.0)
        phases = [("all", 0.0, end)]

    out_phases: List[Dict[str, Any]] = []
    for label, t0, t1 in phases:
        in_phase = [r for r in records if t0 <= r["t0"] < t1]
        in_phase.sort(key=lambda r: (-r["latency"], r["req_id"]))
        if in_phase:
            idx = max(0, int(len(in_phase) * (1.0 - percentile / 100.0)))
            tail = in_phase[:max(1, idx)]
            threshold = tail[-1]["latency"]
        else:
            tail, threshold = [], 0.0
        groups: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for rec in tail:
            dom = rec["dominant"] or {"name": "?", "category": "?"}
            key = (rec["signature"], dom["name"])
            g = groups.setdefault(key, {
                "signature": rec["signature"],
                "dominant": dom["name"],
                "dominant_category": dom["category"],
                "count": 0,
                "total_latency": 0.0,
                "max_latency": 0.0,
                "example_req": rec["req_id"],
            })
            g["count"] += 1
            g["total_latency"] += rec["latency"]
            if rec["latency"] > g["max_latency"]:
                g["max_latency"] = rec["latency"]
                g["example_req"] = rec["req_id"]
        ranked = sorted(groups.values(),
                        key=lambda g: (-g["count"], -g["total_latency"],
                                       g["signature"]))[:top]
        for g in ranked:
            g["mean_latency"] = g.pop("total_latency") / g["count"]
        out_phases.append({
            "label": label,
            "t0": t0,
            "t1": t1,
            "requests": len(in_phase),
            "tail": len(tail),
            "threshold": threshold,
            "groups": ranked,
        })
    return {
        "percentile": percentile,
        "requests": len(records),
        "phases": out_phases,
    }


def format_blame(report: Dict[str, Any]) -> str:
    """ASCII rendering of :func:`blame_report`."""
    lines: List[str] = []
    lines.append(f"tail-latency blame — p{report['percentile']:g} of "
                 f"{report['requests']} sampled requests")
    for phase in report["phases"]:
        lines.append("")
        lines.append(f"[{phase['t0']:.1f}s .. {phase['t1']:.1f}s] "
                     f"{phase['label']}: {phase['tail']} tail / "
                     f"{phase['requests']} reqs "
                     f"(threshold {phase['threshold'] * 1000:.1f} ms)")
        if not phase["groups"]:
            lines.append("  (no sampled requests in phase)")
            continue
        lines.append(f"  {'n':>4} {'mean ms':>9} {'max ms':>9} "
                     f"{'dominant hop':<22} critical path")
        for g in phase["groups"]:
            dom = f"{g['dominant']} ({g['dominant_category']})"
            lines.append(f"  {g['count']:>4} {g['mean_latency'] * 1000:>9.1f} "
                         f"{g['max_latency'] * 1000:>9.1f} {dom:<22} "
                         f"{g['signature']}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# waterfall rendering


def render_waterfall(spans: Sequence[Span], width: int = 56) -> str:
    """Per-request ASCII waterfall (one row per span, bars on a shared
    time axis), in the style of :func:`repro.obs.timeline.render_timeline`."""
    root = tree_root(spans)
    if root is None:
        return "(empty span tree)"
    end = _tree_end(spans)
    total = max(span_end(root, end) - root.t0, 1e-9)
    depth: Dict[int, int] = {root.span_id: 0}
    ordered = sorted(spans, key=lambda s: (s.t0, s.span_id))
    lines = [
        f"request {root.req_id} on {root.node} — "
        f"{total * 1000:.1f} ms, {len(spans)} spans "
        f"(outcome: {root.meta.get('outcome', 'open')})",
        f"{'t0 ms':>9} {'dur ms':>9}  {'span':<28} "
        f"|{'-' * width}|",
    ]
    for span in ordered:
        if span.span_id not in depth:
            depth[span.span_id] = depth.get(span.parent_id, 0) + 1
        d = depth[span.span_id]
        e = span_end(span, end)
        off = int((span.t0 - root.t0) / total * width)
        w = max(1, int((e - span.t0) / total * width))
        off = min(off, width - 1)
        w = min(w, width - off)
        bar = " " * off + "#" * w + " " * (width - off - w)
        label = ("  " * d) + span.name
        suffix = " *open*" if span.t1 is None else ""
        note = ",".join(f"{k}={span.meta[k]}" for k in sorted(span.meta))
        tag = f"{label} [{span.node}]"
        lines.append(f"{(span.t0 - root.t0) * 1000:>9.1f} "
                     f"{(e - span.t0) * 1000:>9.1f}  {tag:<28} "
                     f"|{bar}|{suffix}{' ' + note if note else ''}")
    return "\n".join(lines)


def format_critical_path(record: Dict[str, Any]) -> str:
    """One request's critical path with per-hop attribution."""
    lines = [
        f"req {record['req_id']}: {record['latency'] * 1000:.1f} ms "
        f"({record['outcome']}) — {record['signature']}",
    ]
    for hop in record["hops"]:
        lines.append(f"  {hop['self_time'] * 1000:>8.1f} ms "
                     f"{hop['category']:<8} {hop['name']:<14} "
                     f"[{hop['node']}]")
    return "\n".join(lines)
