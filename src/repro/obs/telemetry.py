"""The per-world telemetry bundle.

One :class:`Telemetry` object travels with a
:class:`~repro.experiments.runner.World`: a structured tracer, a metrics
hub, and (opt-in) a kernel profiler.  ``build_world`` creates an enabled
bundle by default; pass ``Telemetry.disabled()`` for zero-overhead runs
(every instrument degrades to a null object and the kernel keeps its
monitor-free fast path).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.kernelprof import KernelProfiler
from repro.obs.metrics import MetricsHub
from repro.obs.trace import TracedMarkerLog, Tracer


class Telemetry:
    """Tracer + metrics registry + optional kernel profiler for one world.

    ``trace_requests`` additionally records a ``request_ok`` event per
    successful request — precise but memory-hungry; off by default
    (successes are always *counted* in metrics, and failures are always
    traced as discrete events).
    """

    __slots__ = ("enabled", "tracer", "metrics", "profiler", "trace_requests")

    def __init__(self, enabled: bool = True, profile_kernel: bool = False,
                 trace_requests: bool = False):
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsHub(enabled=enabled)
        self.profiler: Optional[KernelProfiler] = (
            KernelProfiler() if (enabled and profile_kernel) else None
        )
        self.trace_requests = bool(enabled and trace_requests)

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    def attach(self, env) -> None:
        """Bind to a simulation environment (clock + kernel hooks)."""
        self.tracer.bind_clock(env)
        if self.profiler is not None:
            env.set_monitor(self.profiler)

    def marker_log(self) -> TracedMarkerLog:
        """A MarkerLog that mirrors every mark into the tracer."""
        return TracedMarkerLog(self.tracer)


#: Shared do-nothing bundle for components constructed without telemetry.
NULL_TELEMETRY = Telemetry.disabled()
