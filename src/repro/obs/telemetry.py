"""The per-world telemetry bundle.

One :class:`Telemetry` object travels with a
:class:`~repro.experiments.runner.World`: a structured tracer, a metrics
hub, and (opt-in) a kernel profiler.  ``build_world`` creates an enabled
bundle by default; pass ``Telemetry.disabled()`` for zero-overhead runs
(every instrument degrades to a null object and the kernel keeps its
monitor-free fast path).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.kernelprof import KernelProfiler, TimingProfiler
from repro.obs.metrics import MetricsHub
from repro.obs.spans import SpanRecorder
from repro.obs.trace import TracedMarkerLog, Tracer


class Telemetry:
    """Tracer + metrics registry + optional kernel profiler for one world.

    ``trace_requests`` additionally records a ``request_ok`` event per
    successful request — precise but memory-hungry; off by default
    (successes are always *counted* in metrics, and failures are always
    traced as discrete events).

    ``profile_time=True`` upgrades the kernel profiler to a
    :class:`~repro.obs.kernelprof.TimingProfiler` (wall-time attribution
    per event kind / process type / subsystem); it implies kernel
    profiling.

    ``trace_max_events`` caps the tracer's in-memory retention (ring
    buffer).  The drop count is exposed both as ``tracer.dropped`` and —
    when metrics are enabled — as the ``trace_events_dropped`` counter in
    the hub.  Unset (the default), nothing changes: the stream is
    unbounded and no extra metric series is registered, so existing
    digests are untouched.

    ``trace_spans=True`` turns on causal request tracing
    (:mod:`repro.obs.spans`): per-request span trees threaded through
    client, front-end, PRESS servers, peer fetches, and disk queues.
    ``span_sample`` is the deterministic head-sampling rate (keyed on
    ``req_id`` with ``span_seed``), and ``span_max_requests`` ring-
    bounds retention per request tree.  Off by default: no contexts are
    created, so the simulation is event-identical to an untraced run.
    """

    __slots__ = ("enabled", "tracer", "metrics", "profiler", "trace_requests",
                 "spans", "trace_spans")

    def __init__(self, enabled: bool = True, profile_kernel: bool = False,
                 trace_requests: bool = False, profile_time: bool = False,
                 trace_max_events: Optional[int] = None,
                 trace_spans: bool = False, span_sample: float = 1.0,
                 span_seed: int = 0,
                 span_max_requests: Optional[int] = None):
        self.enabled = enabled
        self.metrics = MetricsHub(enabled=enabled)
        drop_counter = (self.metrics.counter("trace_events_dropped")
                        if (enabled and trace_max_events is not None) else None)
        self.tracer = Tracer(enabled=enabled, max_events=trace_max_events,
                             drop_counter=drop_counter)
        profiler: Optional[KernelProfiler] = None
        if enabled and (profile_kernel or profile_time):
            profiler = TimingProfiler() if profile_time else KernelProfiler()
        self.profiler = profiler
        self.trace_requests = bool(enabled and trace_requests)
        self.trace_spans = bool(enabled and trace_spans)
        self.spans = SpanRecorder(enabled=self.trace_spans,
                                  sample=span_sample, seed=span_seed,
                                  max_requests=span_max_requests)

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    def attach(self, env) -> None:
        """Bind to a simulation environment (clock + kernel hooks)."""
        self.tracer.bind_clock(env)
        if self.profiler is not None:
            env.set_monitor(self.profiler)
        if self.trace_spans:
            # Only bind when tracing is on: env.spans stays None on the
            # untraced fast path (transport/fabric check it per send).
            self.spans.bind_clock(env)
            env.bind_spans(self.spans)

    def marker_log(self) -> TracedMarkerLog:
        """A MarkerLog that mirrors every mark into the tracer."""
        return TracedMarkerLog(self.tracer)


#: Shared do-nothing bundle for components constructed without telemetry.
NULL_TELEMETRY = Telemetry.disabled()
