"""ASCII timeline rendering of recorded flights and their attributions.

``repro timeline`` turns a flight-recorder artifact into a terminal
chart: throughput per bucket, the template stage each bucket was
attributed to, and the fault lifecycle marks — Figure 3/4 of the paper
as text — followed by the per-stage loss table and the fit cross-check.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.report import format_bar
from repro.obs.attribution import (
    RESIDUAL_STAGE,
    AttributionConfig,
    AttributionReport,
    StageAttributor,
)
from repro.obs.recorder import FlightRecord

#: fault-lifecycle marks shown beside the chart
_MARKS = (
    ("INJECT", "t_inject"),
    ("DETECT", "t_detect"),
    ("REPAIR", "t_repair"),
    ("RESET", "t_reset"),
)


def render_timeline(
    record: FlightRecord,
    report: Optional[AttributionReport] = None,
    bucket: float = 5.0,
    width: int = 40,
    lead: float = 15.0,
) -> str:
    """The throughput chart with stage bands and lifecycle marks.

    ``report`` defaults to a fresh attribution of ``record``; pass one in
    to reuse an existing analysis.  ``lead`` seconds of pre-injection
    steady state anchor the eye at the normal level.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    if report is None:
        report = StageAttributor(AttributionConfig()).attribute(record)
    trace = record.to_trace()
    t_start = max(trace.t_inject - lead, 0.0)
    times, rates = trace.series.bucketize(bucket, t_start, trace.t_end)
    peak = max(float(rates.max()) if len(rates) else 0.0,
               trace.offered_rate, 1.0)

    header = (f"{record.version} / {record.fault} @ {record.target} "
              f"(seed {record.seed}, profile {record.profile or '?'})")
    lines = [
        header,
        f"normal {trace.normal_tput:.1f} req/s, offered "
        f"{trace.offered_rate:.1f} req/s, bucket {bucket:g}s",
        "",
        f"{'t(s)':>8} {'req/s':>8}  {'throughput':<{width}} stage",
    ]
    for t, r in zip(times, rates):
        stage = _stage_of(report, t, t + bucket)
        marks = _marks_in(record, t, t + bucket)
        bar = format_bar(float(r), peak, width=width)
        suffix = f"  {' '.join(marks)}" if marks else ""
        lines.append(
            f"{t:>8.1f} {float(r):>8.1f}  {bar:<{width}} {stage:<5}{suffix}"
        )
    lines.append("")
    lines.extend(format_attribution(report).splitlines())
    return "\n".join(lines)


def format_attribution(report: AttributionReport) -> str:
    """The per-stage loss table plus the fit cross-check diagnostics."""
    lines = [
        f"{'stage':<6} {'window':<17} {'dur(s)':>8} {'lost req-s':>11} "
        f"{'share':>6}  cause",
    ]
    total = report.total_lost
    for s in report.slices:
        share = s.lost / total if total > 0 else 0.0
        window = f"{s.t0:.1f}-{s.t1:.1f}"
        lines.append(
            f"{s.stage:<6} {window:<17} {s.duration:>8.1f} {s.lost:>11.1f} "
            f"{share * 100:>5.1f}%  {s.cause}"
        )
    lines.append(
        f"attributed {report.attributed_lost:.1f} of {total:.1f} lost "
        f"request-seconds ({report.coverage * 100:.1f}%) to named stages"
    )
    if report.checks:
        verdict = "agree" if report.agrees_with_fit else "DISAGREE"
        detail = ", ".join(
            f"{c.stage}: {c.event_duration:.1f}s vs fit "
            f"{c.fit_duration:.1f}s" + ("" if c.agrees else " (!)")
            for c in report.checks
        )
        lines.append(f"fit cross-check ({verdict}): {detail}")
    for note in report.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _stage_of(report: AttributionReport, t0: float, t1: float) -> str:
    """The stage covering most of bucket [t0, t1) ('.' outside the fault)."""
    best: Tuple[float, str] = (0.0, "")
    for s in report.slices:
        overlap = min(s.t1, t1) - max(s.t0, t0)
        if overlap > best[0]:
            best = (overlap, s.stage)
    if not best[1]:
        return "."
    return "." if best[1] == RESIDUAL_STAGE else best[1]


def _marks_in(record: FlightRecord, t0: float, t1: float) -> List[str]:
    marks = []
    for label, key in _MARKS:
        t = record.timeline.get(key)
        if key == "t_detect":
            # Attribution uses the event stream for detection; the chart
            # should mark the same instant.
            events = record.events_of("detected")
            after = [e.time for e in events
                     if e.time >= record.timeline["t_inject"]]
            t = min(after) if after else t
        if t is not None and t0 <= float(t) < t1:
            marks.append(label)
    return marks
