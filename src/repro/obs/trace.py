"""The structured tracer and its MarkerLog-compatible facade.

:class:`Tracer` is the append-only stream of :class:`~repro.obs.events.TraceEvent`
records.  Components emit through it directly; legacy marker-based code
keeps working through :class:`TracedMarkerLog`, a drop-in
:class:`~repro.sim.series.MarkerLog` whose ``mark`` calls are mirrored
into the tracer as typed events.  The template fitter (which consumes the
MarkerLog interface) therefore sees exactly what it always saw, while the
exporters see the structured stream.

With ``enabled=False`` every ``emit`` returns immediately after one
attribute check — the guard-checked fast path the kernel benchmark
verifies.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional

from repro.obs.events import TraceEvent, marker_event, sanitize
from repro.sim.series import MarkerLog


class Tracer:
    """Append-only, typed telemetry stream.

    ``max_events`` bounds in-memory retention: when set, the stream
    becomes a ring buffer — the oldest events are discarded as new ones
    arrive, and ``dropped`` counts the casualties (long campaigns would
    otherwise accumulate an unbounded list).  Subscribers still see
    *every* event at emit time, so exporters that stream to disk lose
    nothing; only the in-memory tail is capped.  ``drop_counter`` is an
    optional Counter-shaped object (``inc()``) mirroring the drop count
    into a metrics registry.
    """

    __slots__ = ("enabled", "_events", "_env", "_subscribers", "_max_events",
                 "dropped", "_drop_counter")

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None,
                 drop_counter=None):
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.enabled = enabled
        self._max_events = max_events
        self._events: Any = (deque(maxlen=max_events) if max_events is not None
                             else [])
        self._env = None
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.dropped = 0
        self._drop_counter = drop_counter

    @property
    def max_events(self) -> Optional[int]:
        """Retention cap, or None for unbounded."""
        return self._max_events

    # -- wiring ----------------------------------------------------------
    def bind_clock(self, env) -> None:
        """Use ``env.now`` for events emitted without an explicit time."""
        self._env = env

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Call ``fn(event)`` for every event emitted from now on."""
        self._subscribers.append(fn)

    # -- emission --------------------------------------------------------
    def emit(self, kind: str, source: str = "", time: Optional[float] = None,
             **data: Any) -> Optional[TraceEvent]:
        """Record one event; no-op (returns None) when disabled."""
        if not self.enabled:
            return None
        if time is None:
            time = self._env.now if self._env is not None else 0.0
        event = TraceEvent(time=float(time), kind=kind, source=source,
                           data={k: sanitize(v) for k, v in data.items()})
        return self._append(event)

    def emit_marker(self, time: float, label: str, data: Any) -> Optional[TraceEvent]:
        """Record a legacy marker as a structured event; no-op when disabled."""
        if not self.enabled:
            return None
        return self._append(marker_event(time, label, data))

    def _append(self, event: TraceEvent) -> TraceEvent:
        buf = self._events
        if self._max_events is not None and len(buf) == self._max_events:
            self.dropped += 1
            if self._drop_counter is not None:
                self._drop_counter.inc()
        buf.append(event)
        for fn in self._subscribers:
            fn(event)
        return event

    # -- access ----------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def events_of(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for e in self._events:
            if e.kind == kind:
                return e
        return None

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()


class TracedMarkerLog(MarkerLog):
    """A MarkerLog whose marks are mirrored into a :class:`Tracer`.

    Behaviourally identical to a plain MarkerLog for every query
    (``entries``/``all``/``first``/``last``/``labels``); the only addition
    is the side channel into the structured trace.
    """

    def __init__(self, tracer: Tracer):
        super().__init__()
        self._tracer = tracer

    def mark(self, time: float, label: str, data: Any = None) -> None:
        super().mark(time, label, data)
        self._tracer.emit_marker(time, label, data)
