"""Parallel campaign execution: deterministic fan-out over process pools.

The quantification grid — every ``(version, fault kind, seed)`` cell of
a campaign — is embarrassingly parallel, and this package exploits that
without giving up the repository's determinism contract: a run with
``jobs=N`` produces artifacts **byte-identical** to a serial run (the
property ``tests/parallel`` pins with chained digests).

Layering: :mod:`repro.core.quantify` exposes the cell-level API
(:func:`~repro.core.quantify.campaign_cells` /
:func:`~repro.core.quantify.run_cell` /
:func:`~repro.core.quantify.quantify_from_cell_docs`); this package adds
the process-pool plumbing on top — :class:`CampaignExecutor` for the
fan-out/merge and crash isolation, :func:`run_campaign_cells` as the
strict entry point behind ``quantify_version(jobs=N)``, and
:func:`quantify_grid` for multi-version studies sharing one pool.  See
docs/PERFORMANCE.md for the architecture and the determinism argument.
"""

from repro.parallel.executor import (
    DEFAULT_HASH_SEED,
    CampaignExecutor,
    CellExecutionError,
    CellOutcome,
    ExecutionReport,
    ExecutorConfig,
    ExecutorStats,
    pinned_hashseed,
    quantify_grid,
    run_campaign_cells,
)
from repro.parallel.worker import execute_cell, worker_init

__all__ = [
    "DEFAULT_HASH_SEED",
    "CampaignExecutor",
    "CellExecutionError",
    "CellOutcome",
    "ExecutionReport",
    "ExecutorConfig",
    "ExecutorStats",
    "execute_cell",
    "pinned_hashseed",
    "quantify_grid",
    "run_campaign_cells",
    "worker_init",
]
