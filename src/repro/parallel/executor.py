"""Process-pool campaign executor with deterministic fan-out/merge.

The quantification grid is embarrassingly parallel: each phase-1 cell
(one ``(version, fault kind, seed)`` coordinate) builds its own world
from the master seed and shares no state with any other cell.  The
executor fans cells out over a **spawn**-context process pool and folds
the results back *in grid order* — never completion order — so a
parallel campaign is byte-identical to a serial one:

* every worker runs under the same pinned ``PYTHONHASHSEED`` (exported
  by the parent before the pool spawns; children read it at interpreter
  startup);
* a cell's RNG streams derive from its own ``(seed, stream name)``
  coordinates via :class:`~repro.sim.rng.RngRegistry`, so scheduling
  order across workers cannot perturb them;
* cell results are JSON documents wrapping a replayable
  :class:`~repro.obs.recorder.FlightRecord`; the parent re-fits the
  replayed traces, and replay is lossless (pinned by the recorder's
  round-trip tests), so the merged fits equal the serial fits;
* the merge walks outcomes by cell index, preserving the float
  summation order of the serial loop.

Crash isolation: a worker that raises — or dies outright, breaking the
pool — marks only its own cell as failed; surviving results are kept and
the round is re-run on a fresh pool for cells with attempts remaining
(``retries=K`` allows K re-executions per cell).  A cell that exhausts
its attempts is reported in the :class:`ExecutionReport` instead of
killing the run; strict callers (``quantify_version(jobs=N)``) raise
:class:`CellExecutionError` with the partial report attached.

Wall-clock reads in this module time the *real* worker processes for
speedup accounting — they never touch simulated time (see the reprolint
allowlist).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.quantify import (
    QuantifyConfig,
    VersionAvailability,
    campaign_cells,
    quantify_from_cell_docs,
    quantify_version,
)
from repro.experiments.configs import VersionSpec, version as version_by_name
from repro.faults.campaign import CampaignCell
from repro.parallel.worker import execute_cell, worker_init

#: hash seed pinned into every worker (any fixed value keeps runs
#: reproducible; 0 matches ``repro.analysis.sanitize``'s convention)
DEFAULT_HASH_SEED = "0"

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class ExecutorConfig:
    """Fan-out policy of one campaign execution."""

    jobs: int = 2
    retries: int = 0  # re-executions allowed per failed cell
    hash_seed: str = DEFAULT_HASH_SEED

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if not self.hash_seed:
            raise ValueError("hash_seed must be a non-empty string")


@dataclass
class CellOutcome:
    """What happened to one cell across all its attempts."""

    cell: CampaignCell
    doc: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    wall: float = 0.0  # worker-side wall seconds of the winning attempt

    @property
    def ok(self) -> bool:
        return self.doc is not None


@dataclass
class ExecutorStats:
    """Real-time accounting of one execution (process wall clock)."""

    jobs: int
    cells: int
    failed: int
    retried: int  # cells that needed more than one attempt
    wall_seconds: float  # parent-side elapsed time of the whole fan-out
    cell_seconds: float  # sum of per-cell worker wall times

    @property
    def speedup(self) -> float:
        """Aggregate-work / elapsed-time ratio (~1.0 means no overlap)."""
        return self.cell_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cells": self.cells,
            "failed": self.failed,
            "retried": self.retried,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "speedup": self.speedup,
        }


@dataclass
class ExecutionReport:
    """Per-cell outcomes (grid order) plus aggregate stats."""

    outcomes: List[CellOutcome]
    stats: ExecutorStats

    @property
    def docs(self) -> List[Dict[str, Any]]:
        """Successful cell documents, in grid order."""
        return [o.doc for o in self.outcomes if o.ok]

    @property
    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]


class CellExecutionError(RuntimeError):
    """Some cells exhausted their retry budget; partial results attached."""

    def __init__(self, report: ExecutionReport):
        self.report = report
        lines = ", ".join(
            f"{o.cell.cell_id} ({o.error})" for o in report.failures)
        super().__init__(
            f"{len(report.failures)} campaign cell(s) failed after "
            f"{report.outcomes[0].attempts if report.outcomes else 0} "
            f"attempt(s): {lines}"
        )


@contextmanager
def pinned_hashseed(value: str = DEFAULT_HASH_SEED):
    """Export ``PYTHONHASHSEED`` around pool creation, then restore it.

    Spawned children read the variable at interpreter startup, so the
    parent must export it *before* the pool forks off its first worker —
    a pool initializer runs too late to matter (it only asserts).
    """
    prev = os.environ.get("PYTHONHASHSEED")
    os.environ["PYTHONHASHSEED"] = value
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("PYTHONHASHSEED", None)
        else:
            os.environ["PYTHONHASHSEED"] = prev


class CampaignExecutor:
    """Deterministic fan-out of campaign cells over a spawn pool."""

    def __init__(
        self,
        config: ExecutorConfig = ExecutorConfig(),
        progress: Optional[ProgressFn] = None,
        metrics=None,  # Optional[repro.obs.MetricsHub]
        worker: Callable[..., Dict[str, Any]] = execute_cell,
    ):
        self.config = config
        self.progress = progress
        self.metrics = metrics
        # Injectable for tests (crash drills); must be a module-level
        # function so the spawn pool can pickle it by reference.
        self.worker = worker

    # -- public API --------------------------------------------------------
    def execute(
        self,
        cells: Sequence[CampaignCell],
        config: QuantifyConfig,
    ) -> ExecutionReport:
        """Run every cell, retrying failures, and report in grid order."""
        cells = list(cells)
        indices = [c.index for c in cells]
        if len(set(indices)) != len(indices):
            raise ValueError("campaign cells carry duplicate grid indices")
        outcomes = [CellOutcome(cell=c) for c in cells]

        t0 = time.perf_counter()
        todo = list(range(len(cells)))
        max_attempts = self.config.retries + 1
        while todo:
            todo = self._run_round(cells, outcomes, todo, config, max_attempts)
        wall = time.perf_counter() - t0

        stats = ExecutorStats(
            jobs=self.config.jobs,
            cells=len(cells),
            failed=sum(1 for o in outcomes if not o.ok),
            retried=sum(1 for o in outcomes if o.attempts > 1),
            wall_seconds=wall,
            cell_seconds=sum(o.wall for o in outcomes if o.ok),
        )
        self._record_metrics(outcomes, stats)
        return ExecutionReport(outcomes=outcomes, stats=stats)

    # -- internals ---------------------------------------------------------
    def _run_round(
        self,
        cells: List[CampaignCell],
        outcomes: List[CellOutcome],
        todo: List[int],
        config: QuantifyConfig,
        max_attempts: int,
    ) -> List[int]:
        """One pool round over ``todo``; returns the retryable indices.

        Every round gets a *fresh* pool: a worker dying mid-round breaks
        its ``ProcessPoolExecutor`` permanently (all in-flight futures
        poison with ``BrokenProcessPool``), so reuse would turn one crash
        into a run-wide failure.  Innocent cells poisoned that way burn
        an attempt too, but succeed on the re-run — which is why crash
        survival needs ``retries >= 1``.
        """
        retryable: List[int] = []
        done = len(cells) - len(todo)
        ctx = multiprocessing.get_context("spawn")
        with pinned_hashseed(self.config.hash_seed):
            pool = ProcessPoolExecutor(
                max_workers=min(self.config.jobs, len(todo)),
                mp_context=ctx,
                initializer=worker_init,
            )
            try:
                futures = {
                    pool.submit(self.worker, cells[i], config): i
                    for i in todo
                }
                for fut in as_completed(futures):
                    i = futures[fut]
                    outcome = outcomes[i]
                    outcome.attempts += 1
                    try:
                        payload = fut.result()
                    except BaseException as exc:  # incl. BrokenProcessPool
                        outcome.error = f"{type(exc).__name__}: {exc}"
                        retry = outcome.attempts < max_attempts
                        if retry:
                            retryable.append(i)
                        self._say(
                            f"[{done}/{len(cells)}] {outcome.cell.cell_id} "
                            f"FAILED attempt {outcome.attempts}"
                            f"{' (will retry)' if retry else ''}: "
                            f"{outcome.error}"
                        )
                    else:
                        done += 1
                        outcome.doc = payload["doc"]
                        outcome.wall = float(payload["wall"])
                        outcome.error = None
                        self._say(
                            f"[{done}/{len(cells)}] {outcome.cell.cell_id} "
                            f"ok in {outcome.wall:.1f}s "
                            f"(attempt {outcome.attempts}, "
                            f"pid {payload.get('pid', '?')})"
                        )
            finally:
                pool.shutdown()
        return sorted(retryable)

    def _say(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _record_metrics(
        self, outcomes: List[CellOutcome], stats: ExecutorStats
    ) -> None:
        if self.metrics is None:
            return
        hub = self.metrics
        for outcome in outcomes:
            status = "ok" if outcome.ok else "failed"
            hub.counter("parallel_cells_total", status=status).inc()
            if outcome.ok:
                hub.histogram("parallel_cell_wall_seconds",
                              fault=outcome.cell.fault).observe(outcome.wall)
            if outcome.attempts > 1:
                hub.counter("parallel_cell_retries_total").inc(
                    outcome.attempts - 1)
        hub.gauge("parallel_jobs").set(stats.jobs)
        hub.gauge("parallel_wall_seconds").set(stats.wall_seconds)
        hub.gauge("parallel_speedup").set(stats.speedup)


def run_campaign_cells(
    cells: Sequence[CampaignCell],
    config: QuantifyConfig,
    jobs: int = 2,
    retries: int = 0,
    progress: Optional[ProgressFn] = None,
    metrics=None,
    strict: bool = True,
) -> List[Dict[str, Any]]:
    """Execute a cell grid and return its documents in grid order.

    This is the entry point ``quantify_version(jobs=N)`` fans out
    through.  With ``strict=True`` (the default) any cell that exhausts
    its retry budget raises :class:`CellExecutionError` — the
    quantification merge needs every fault kind — with the partial
    :class:`ExecutionReport` attached for inspection.
    """
    executor = CampaignExecutor(
        ExecutorConfig(jobs=jobs, retries=retries),
        progress=progress,
        metrics=metrics,
    )
    report = executor.execute(cells, config)
    if strict and report.failures:
        raise CellExecutionError(report)
    return report.docs


def quantify_grid(
    specs: Sequence[Union[str, VersionSpec]],
    config: QuantifyConfig = QuantifyConfig(),
    jobs: int = 1,
    retries: int = 0,
    keep_records: bool = False,
    progress: Optional[ProgressFn] = None,
    metrics=None,
    stats_out: Optional[List[ExecutorStats]] = None,
) -> Dict[str, VersionAvailability]:
    """Quantify several versions through one shared cell pool.

    All versions' cells are concatenated into a single grid so the pool
    stays saturated across version boundaries (a 4-version × 5-fault
    study is 20 cells, not 4 sequential 5-cell campaigns).  Results are
    split back per version and merged in grid order; ``jobs=1`` degrades
    to the plain serial pipeline.  ``stats_out``, when given, receives
    the :class:`ExecutorStats` of the fan-out.
    """
    resolved = [version_by_name(s) if isinstance(s, str) else s
                for s in specs]
    names = [s.name for s in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate versions in grid: {names}")
    if jobs <= 1:
        return {
            s.name: quantify_version(s, config, keep_records=keep_records)
            for s in resolved
        }

    all_cells: List[CampaignCell] = []
    for s in resolved:
        all_cells.extend(campaign_cells(s, config,
                                        start_index=len(all_cells)))
    executor = CampaignExecutor(
        ExecutorConfig(jobs=jobs, retries=retries),
        progress=progress,
        metrics=metrics,
    )
    report = executor.execute(all_cells, config)
    if report.failures:
        raise CellExecutionError(report)
    if stats_out is not None:
        stats_out.append(report.stats)

    by_version: Dict[str, List[Dict[str, Any]]] = {}
    for doc in report.docs:
        by_version.setdefault(str(doc["cell"]["version"]), []).append(doc)
    return {
        s.name: quantify_from_cell_docs(
            s, config, by_version.get(s.name, []), keep_records=keep_records)
        for s in resolved
    }
