"""Worker-side half of the parallel campaign executor.

Everything here must be importable at module top level: the executor
uses a **spawn** multiprocessing context, so workers pickle the function
reference (not a closure) and re-import this module in a fresh
interpreter.  Keeping the worker surface to two tiny top-level functions
is what makes :class:`~repro.faults.campaign.CampaignCell` +
:class:`~repro.core.quantify.QuantifyConfig` the entire cross-process
contract.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.core.quantify import QuantifyConfig, run_cell
from repro.faults.campaign import CampaignCell


def worker_init() -> None:
    """Spawn-pool initializer: verify the determinism preconditions.

    The parent pins ``PYTHONHASHSEED`` in its environment *before*
    creating the pool (children read the variable at interpreter
    startup, so an initializer-time ``os.environ`` write would be too
    late).  This bootstrap check only *reads* the variable to fail fast
    if a foreign executor ever runs our workers without the pin — set
    ordering and iteration in the simulator must not vary per process.
    """
    if not os.environ.get("PYTHONHASHSEED"):
        raise RuntimeError(
            "PYTHONHASHSEED is not pinned in this worker; campaign cells "
            "must run under a fixed hash seed (use repro.parallel's "
            "executor, which exports it before spawning the pool)"
        )


def execute_cell(cell: CampaignCell, config: QuantifyConfig) -> Dict[str, Any]:
    """Run one campaign cell and wrap its document with wall-time stats.

    The cell document itself (``payload["doc"]``) is exactly what a
    serial :func:`~repro.core.quantify.run_cell` produces — the timing
    envelope stays *outside* it so merged artifacts remain byte-identical
    to a serial run.  Wall time here is real process time (the speedup
    accounting), not simulated time.
    """
    t0 = time.perf_counter()
    doc = run_cell(cell, config)
    wall = time.perf_counter() - t0
    return {"doc": doc, "wall": wall, "pid": os.getpid()}
