"""PRESS: the cooperative, locality-conscious cluster Web server.

Reimplements the architecture of Section 3 of the paper:

* any node can be the *initial* node for a request; based on the
  cluster-wide cache directory and piggybacked load information it either
  serves locally or forwards to the *service* node caching the file;
* caching actions are broadcast to all peers; load rides on every
  intra-cluster message;
* one main coordinating thread per node, fed by helper threads (per-peer
  send/receive threads over TCP, disk threads) through queues;
* bounded per-peer send queues and a bounded disk queue — in the base
  (COOP) version the main thread **blocks** on a full queue, which is the
  fault-propagation mechanism the paper quantifies;
* a directed heartbeat ring with 3-loss exclusion and a broadcast-based
  rejoin protocol for restarted processes (base reconfiguration).

The high-availability variants (membership callbacks, queue monitoring,
FME) plug in through :class:`repro.press.config.PressConfig` flags and
the hooks on :class:`repro.press.server.PressServer`.

:class:`repro.press.indep.IndepServer` is the non-cooperative version
(INDEP) used as the availability baseline.
"""

from repro.press.config import PressConfig
from repro.press.cache import LruCache, CacheDirectory
from repro.press.server import PressServer, bootstrap_cluster
from repro.press.fabric import ClusterFabric
from repro.press.indep import IndepServer

__all__ = [
    "PressConfig",
    "LruCache",
    "CacheDirectory",
    "PressServer",
    "bootstrap_cluster",
    "ClusterFabric",
    "IndepServer",
]
