"""Per-node LRU cache and the cluster-wide cache directory.

PRESS keeps exactly one cached copy of each file cluster-wide (the whole
point of cooperative caching: the cluster's memories aggregate into one
big cache).  Each node broadcasts "I now cache f" / "I evicted f" to all
peers, so every node maintains an approximate directory of who caches
what (locality information); staleness is tolerated — a forwarded request
that misses is simply served from the service node's disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set

from repro.obs.metrics import NULL_COUNTER


class LruCache:
    """Fixed-capacity LRU set of file ids.

    Optional ``hits``/``misses``/``evictions`` counters (any object with
    ``inc()``; see :mod:`repro.obs.metrics`) let a server account its
    cache behaviour without a wrapper on the lookup hot path.  They
    default to shared null counters — standalone use pays one no-op call.
    """

    __slots__ = ("capacity", "_hits", "_misses", "_evictions", "_entries")

    def __init__(self, capacity: int, hits=NULL_COUNTER, misses=NULL_COUNTER,
                 evictions=NULL_COUNTER):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._hits = hits
        self._misses = misses
        self._evictions = evictions
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fid: int) -> bool:
        return fid in self._entries

    def peek(self, fid: int) -> bool:
        """Hit test with no side effects: recency order and the
        hit/miss counters stay untouched (observability probes)."""
        return fid in self._entries

    def lookup(self, fid: int) -> bool:
        """Hit test; a hit refreshes recency."""
        if fid in self._entries:
            self._entries.move_to_end(fid)
            self._hits.inc()
            return True
        self._misses.inc()
        return False

    def insert(self, fid: int) -> Optional[int]:
        """Cache ``fid``; returns the evicted file id, if any."""
        if self.capacity == 0:
            return None
        if fid in self._entries:
            self._entries.move_to_end(fid)
            return None
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._evictions.inc()
        self._entries[fid] = None
        return evicted

    def remove(self, fid: int) -> bool:
        return self._entries.pop(fid, False) is None

    def contents(self) -> List[int]:
        """Cached ids, LRU -> MRU order (used for cache_sync on rejoin)."""
        return list(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()


class CacheDirectory:
    """This node's view of which peer caches which files."""

    __slots__ = ("_by_node", "_by_file")

    def __init__(self) -> None:
        self._by_node: Dict[int, Set[int]] = {}
        self._by_file: Dict[int, Set[int]] = {}

    # -- updates (driven by broadcasts and cache_sync) ------------------------
    def add(self, node_id: int, fid: int) -> None:
        self._by_node.setdefault(node_id, set()).add(fid)
        self._by_file.setdefault(fid, set()).add(node_id)

    def remove(self, node_id: int, fid: int) -> None:
        self._by_node.get(node_id, set()).discard(fid)
        holders = self._by_file.get(fid)
        if holders is not None:
            holders.discard(node_id)
            if not holders:
                del self._by_file[fid]

    def replace_node(self, node_id: int, fids: Iterable[int]) -> None:
        """Install a full snapshot for a (re)joined peer."""
        self.drop_node(node_id)
        for fid in fids:
            self.add(node_id, fid)

    def drop_node(self, node_id: int) -> None:
        """Forget everything about an excluded peer."""
        for fid in sorted(self._by_node.pop(node_id, set())):
            holders = self._by_file.get(fid)
            if holders is not None:
                holders.discard(node_id)
                if not holders:
                    del self._by_file[fid]

    def clear(self) -> None:
        self._by_node.clear()
        self._by_file.clear()

    # -- queries ------------------------------------------------------------
    def holders(self, fid: int) -> Set[int]:
        return self._by_file.get(fid, set())

    def files_of(self, node_id: int) -> List[int]:
        """Sorted file ids the peer is believed to cache.

        Sorted (not a raw set) so callers that iterate or re-broadcast
        the answer do so in a run-independent order.
        """
        return sorted(self._by_node.get(node_id, ()))

    def known_nodes(self) -> Set[int]:
        return set(self._by_node.keys())
