"""PRESS tunables.

Defaults reflect Section 5 of the paper where the paper gives numbers
(heartbeats every 5 s with 3-loss detection; queue-monitoring thresholds
512 total / 256 request-fail / 128 reroute) and a scaled-down service-time
profile otherwise (see :mod:`repro.experiments.profiles` for calibrated
profiles; absolute service times only set the simulation's request-rate
scale, not the availability shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PressConfig:
    # -- caching -----------------------------------------------------------
    cache_files: int = 100  # per-node cache capacity, in (equal-size) files

    # -- main-thread CPU costs (seconds per operation) -----------------------
    cpu_parse: float = 2.0e-3  # accept + parse + route a client request
    cpu_serve: float = 1.5e-3  # serve a cache hit / assemble a reply
    cpu_forward: float = 1.0e-3  # enqueue a request to a service node
    cpu_remote_serve: float = 1.0e-3  # handle a forwarded request
    cpu_response: float = 1.0e-3  # handle a forwarded response + reply
    cpu_disk_done: float = 1.0e-3  # handle a disk completion
    cpu_control: float = 0.2e-3  # cache broadcast / heartbeat / misc

    # -- queues (Section 5) ---------------------------------------------------
    send_queue_capacity: int = 512  # messages per peer send queue
    disk_queue_capacity: int = 64  # pending disk fetches (PRESS-level)
    accept_backlog: int = 256  # pending client requests
    main_queue_capacity: int = 512  # main event queue (recv threads block on it)
    disk_threads: int = 2  # helper threads doing blocking disk I/O
    rejoin_retry: float = 10.0  # re-broadcast rejoin until a config arrives

    # -- heartbeat ring (base reconfiguration; Section 5) -----------------------
    heartbeat_interval: float = 5.0
    heartbeat_loss_threshold: int = 3
    #: how long the main thread will stay blocked on one full send queue
    #: before giving up on that message (OS send timeout).  Must exceed
    #: the heartbeat detection time so that single-fault stalls are still
    #: resolved by exclusion (the paper's dynamics); it exists to break
    #: the mutual all-queues-full wedge a cold cluster-wide restart can
    #: produce, which no exclusion would resolve.
    send_block_timeout: float = 25.0
    #: suppress heartbeat-loss exclusions for this long after a process
    #: (re)start: during a cold-cache warm-up burst every main thread is
    #: periodically wedged on its disk queue, and without a grace window a
    #: cluster-wide restart would splinter itself before caches fill
    startup_grace: float = 45.0

    # -- queue monitoring (Section 4.3; enabled per version) ----------------------
    queue_monitoring: bool = False
    qmon_reroute_threshold: int = 128  # request msgs: start rerouting away
    qmon_fail_requests: int = 256  # request msgs: declare peer failed
    qmon_fail_total: int = 512  # all msgs: declare peer failed
    qmon_probe_interval: int = 16  # while rerouting, every Nth request probes

    # -- membership integration (Section 4.2; enabled per version) -----------------
    use_membership: bool = False  # coop set driven by membership callbacks
    ring_detection: bool = True  # PRESS's own heartbeat-ring exclusion

    # -- forwarding policy ------------------------------------------------------
    load_slack: int = 16  # serve locally from disk if the best
    # remote holder is this many requests more loaded than we are

    # -- transport ---------------------------------------------------------------
    conn_window: int = 64  # TCP receive window (messages)

    def with_(self, **changes) -> "PressConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)
