"""Connection establishment and the cluster control channel.

The fabric plays the role of the OS socket layer plus the well-known
UDP/multicast addresses PRESS uses: servers register themselves under
their node id, open TCP connections to peers through it, and broadcast
control datagrams (rejoin announcements, node-dead notices) to every
registered server's control inbox.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.message import Message
from repro.net.network import ClusterNetwork
from repro.net.transport import Connection
from repro.sim.kernel import Environment

#: multicast address for PRESS control broadcasts (rejoin, node_dead)
PRESS_CONTROL = "press.control"


class ClusterFabric:
    """Socket layer + well-known addresses for one PRESS cluster."""

    __slots__ = ("env", "net", "_servers")

    def __init__(self, env: Environment, net: ClusterNetwork):
        self.env = env
        self.net = net
        self._servers: Dict[int, object] = {}  # node_id -> PressServer

    # -- registry ------------------------------------------------------------
    def register(self, server) -> None:
        self._servers[server.node_id] = server

    def server(self, node_id: int) -> Optional[object]:
        return self._servers.get(node_id)

    def node_ids(self):
        return list(self._servers.keys())

    # -- TCP ------------------------------------------------------------------
    def open_connection(self, requester, peer_id: int, window: int = 64) -> Optional[Connection]:
        """Connect ``requester`` to peer ``peer_id``.

        Returns None when the connect would fail: peer unknown, peer app
        not listening, or no intra-cluster path.  (A hung peer app still
        accepts — the OS completes the handshake from the listen backlog.)
        """
        peer = self._servers.get(peer_id)
        if peer is None or not peer.alive:
            return None
        if not self.net.reachable(requester.host, peer.host):
            return None
        conn = Connection(self.env, self.net, requester.host, peer.host, window=window)
        peer.accept_connection(conn, requester.node_id)
        return conn

    # -- UDP control plane ----------------------------------------------------------
    def control_broadcast(self, src_server, kind: str, payload=None, size: int = 128,
                          ctx=None) -> None:
        """Datagram to every registered server's control inbox (incl. self).

        ``ctx`` attributes the broadcast to the request that caused it
        (e.g. a cache_add after a demand fetch): one zero-duration "ctl"
        span is recorded under it when that request is being traced.
        """
        spans = self.env.spans
        if ctx is not None and spans is not None:
            spans.event(ctx, "ctl", "route", src_server.host.name, kind=kind)
        for server in self._servers.values():
            if not server.alive:
                continue
            msg = Message(kind, src_server.node_id, server.node_id, payload, size,
                          ctx=ctx)
            self.net.datagram(src_server.host, server.host, msg, server.ctl_q)

    def control_send(self, src_server, dst_id: int, kind: str, payload=None, size: int = 128,
                     ctx=None) -> None:
        dst = self._servers.get(dst_id)
        if dst is None or not dst.alive:
            return
        msg = Message(kind, src_server.node_id, dst_id, payload, size, ctx=ctx)
        self.net.datagram(src_server.host, dst.host, msg, dst.ctl_q)
