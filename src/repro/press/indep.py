"""INDEP: the non-cooperative baseline version of PRESS.

Server processes run completely independently (paper Figure 1a): each
node serves every request it receives from its own cache or its own
disks.  The full document set is replicated at each node, so any node can
serve any file.  There is no intra-cluster communication at all — which
is exactly why faults do not propagate and availability stays high, at a
large cost in throughput (each node's small cache must absorb the whole
working set).
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.host import Host, NodeService
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.press.cache import LruCache
from repro.press.config import PressConfig
from repro.sim.kernel import Event
from repro.sim.series import MarkerLog
from repro.sim.store import Store
from repro.workload.client import Request


class IndepServer(NodeService):
    """One independent server process."""

    __slots__ = ("node_id", "config", "trace", "markers", "_tracer",
                 "_c_hits", "_c_misses", "_c_evict", "_c_served", "_c_disk",
                 "main_q", "disk_q", "_running", "cache", "client_pending",
                 "requests_served", "pending_fetch")

    service_name = "press"  # same application slot as the cooperative server

    def __init__(
        self,
        host: Host,
        node_id: int,
        config: PressConfig,
        trace,
        markers: Optional[MarkerLog] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(host)
        self.node_id = node_id
        self.config = config
        self.trace = trace
        self.markers = markers if markers is not None else MarkerLog()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tracer = tm.tracer
        m, node = tm.metrics, host.name
        self._c_hits = m.counter("press_cache_hits", node=node)
        self._c_misses = m.counter("press_cache_misses", node=node)
        self._c_evict = m.counter("press_cache_evictions", node=node)
        self._c_served = m.counter("press_requests_served", node=node)
        self._c_disk = m.counter("press_disk_fetches", node=node)
        self.main_q = self.group.own_store(
            Store(self.env, capacity=config.main_queue_capacity, name=f"{host.name}.mainq")
        )
        self.disk_q = self.group.own_store(
            Store(self.env, capacity=config.disk_queue_capacity, name=f"{host.name}.diskq")
        )
        self._running = False
        self._reset_state()

    def _reset_state(self) -> None:
        self.cache = LruCache(self.config.cache_files, hits=self._c_hits,
                              misses=self._c_misses, evictions=self._c_evict)
        self.client_pending = 0
        self.requests_served = 0
        # In-flight miss coalescing: fid -> [waiting requests].
        self.pending_fetch = {}

    def start(self) -> None:
        if self._running or self.fault_latched or not self.host.is_up:
            return
        if not self.group.alive:
            return
        self._reset_state()
        self._running = True
        self._tracer.emit(EventKind.SERVER_START, source=self.host.name,
                          node_id=self.node_id)
        self.env.process(self._main_loop(), owner=self.group, name=f"{self.host.name}.main")
        for i in range(self.config.disk_threads):
            self.env.process(self._disk_loop(), owner=self.group, name=f"{self.host.name}.disk{i}")

    def on_crash(self) -> None:
        if self._running:
            self._tracer.emit(EventKind.SERVER_CRASH, source=self.host.name,
                              node_id=self.node_id)
        self._running = False
        self.client_pending = 0

    # -- client interface ---------------------------------------------------
    @property
    def listening(self) -> bool:
        return self._running and self.group.alive and self.host.is_up

    @property
    def load(self) -> int:
        return self.client_pending

    def try_accept(self, req: Request) -> bool:
        if not self.listening:
            return False
        if self.client_pending >= self.config.accept_backlog:
            return False
        self.client_pending += 1
        self.main_q.force_put(("client", req))
        return True

    def http_probe(self) -> Event:
        ev = Event(self.env)
        if self.listening:
            self.main_q.force_put(("probe", ev))
        return ev

    # -- threads -------------------------------------------------------------
    def _main_loop(self):
        cfg = self.config
        timeout = self.env.timeout  # bound once; called on every event
        while True:
            kind, item = yield self.main_q.get()
            if kind == "client":
                yield timeout(cfg.cpu_parse)
                if item.expired:
                    self.client_pending -= 1
                    continue
                fid = item.fid
                if self.cache.lookup(fid):
                    yield timeout(cfg.cpu_serve)
                    self._respond(item)
                else:
                    waiters = self.pending_fetch.get(fid)
                    if waiters is not None:
                        waiters.append(item)
                    else:
                        self.pending_fetch[fid] = [item]
                        self._c_disk.inc()
                        yield self.disk_q.put(fid)  # blocks when disks stall
            elif kind == "disk":
                yield timeout(cfg.cpu_disk_done)
                self.cache.insert(item)
                for req in self.pending_fetch.pop(item, []):
                    if req.expired:
                        self.client_pending -= 1
                        continue
                    yield timeout(cfg.cpu_serve)
                    self._respond(req)
            elif kind == "probe":
                yield timeout(cfg.cpu_control)
                if not item.triggered:
                    item.succeed()

    def _disk_loop(self):
        disks = self.host.disks
        while True:
            fid = yield self.disk_q.get()
            disk = disks[fid % len(disks)]
            sub = disk.submit(self.trace.file_size(fid))
            yield sub.enqueued
            yield sub.done
            self.main_q.force_put(("disk", fid))

    def _respond(self, req: Request) -> None:
        self.client_pending -= 1
        self.requests_served += 1
        self._c_served.inc()
        req.respond()
