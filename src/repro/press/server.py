"""The cooperative PRESS server process.

One instance per node.  Thread structure mirrors Figure 3 of the paper:

* a **main coordinating thread** consuming a single bounded event queue
  (client requests, intra-cluster messages, disk completions);
* per-peer **send threads** draining bounded send queues into TCP
  connections, and **receive threads** pushing inbound messages onto the
  main queue (blocking when it is full — TCP backpressure);
* **disk helper threads** doing blocking device I/O from a bounded disk
  queue;
* a **control thread** handling heartbeats, exclusion, the rejoin
  protocol and (when enabled) membership-view reconciliation.  Heartbeat
  emission is gated on main-thread progress, so a node whose main thread
  is stalled (full queue, disk fault) stops heartbeating and is detected
  by its ring successor — the dynamics of Figure 4.

In the base configuration the main thread **blocks** on full send/disk
queues, propagating one node's stall to the whole cluster.  With
``queue_monitoring`` enabled the send path becomes the self-monitoring
two-threshold queue of Section 4.3.  With ``use_membership`` the
cooperation set additionally follows the external membership service's
published view (Section 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.hardware.host import Host, NodeService
from repro.net.message import Message
from repro.net.transport import CLOSED, Connection, ConnectionClosed
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.press.cache import CacheDirectory, LruCache
from repro.press.config import PressConfig
from repro.press.fabric import ClusterFabric
from repro.sim.conditions import AnyOf
from repro.sim.kernel import Event
from repro.sim.series import MarkerLog
from repro.sim.store import Store
from repro.workload.client import Request

#: byte sizes for the network transfer-time model
_REQ_MSG_SIZE = 256
_CTL_MSG_SIZE = 128


class DiskFetch:
    """A pending disk read: either for a local client or a remote peer."""

    __slots__ = ("fid", "request", "origin", "reqid", "ctx")

    def __init__(self, fid: int, request: Optional[Request] = None,
                 origin: Optional[int] = None, reqid: Optional[int] = None,
                 ctx=None):
        self.fid = fid
        self.request = request
        self.origin = origin
        self.reqid = reqid
        # Trace context: the requester's span at creation; _to_disk
        # replaces it with this fetch's own open "disk" span so
        # _handle_disk_done can close it.  None when tracing is off.
        self.ctx = ctx


class PeerLink:
    """This node's communication state for one cooperating peer."""

    __slots__ = ("peer_id", "conn", "endpoint", "send_q", "pending_requests",
                 "in_flight", "probe_counter", "sender", "receiver")

    def __init__(self, server: "PressServer", peer_id: int, conn: Connection):
        self.peer_id = peer_id
        self.conn = conn
        self.endpoint = conn.endpoint(server.host)
        self.send_q = Store(
            server.env,
            capacity=server.config.send_queue_capacity,
            name=f"{server.host.name}->n{peer_id}.sq",
        )
        self.pending_requests = 0  # fwd_req messages queued or in flight
        self.in_flight = False
        self.probe_counter = 0
        self.sender = None
        self.receiver = None

    @property
    def total_backlog(self) -> int:
        return self.send_q.backlog + (1 if self.in_flight else 0)


class PressServer(NodeService):
    """Cooperative PRESS on one node."""

    __slots__ = ("node_id", "config", "trace", "fabric", "markers", "_tracer",
                 "_spans", "_c_hits", "_c_misses", "_c_evict", "_c_served",
                 "_c_forwards", "_c_remote", "_c_disk", "_c_reroutes",
                 "_c_drops", "_c_qmon", "_c_excl", "_c_hb", "main_q", "ctl_q",
                 "disk_q", "shared_view", "_running", "cache", "directory",
                 "_sat_last", "pending_fetch", "coop", "links", "loads",
                 "fwd_pending", "_q_spans", "_fwd_spans", "client_pending",
                 "_next_reqid", "_progress", "_progress_at_hb", "_hb_seen",
                 "_last_hb_sent", "_joined", "_last_rejoin",
                 "_seen_view_version", "_grace_until", "_warm_mode",
                 "_warm_streak", "requests_served")

    service_name = "press"

    #: minimum spacing (sim seconds) between queue_saturated trace events
    #: for the same queue — saturation is an *episode*, not per message
    _SAT_EMIT_INTERVAL = 5.0

    def __init__(
        self,
        host: Host,
        node_id: int,
        config: PressConfig,
        trace,
        fabric: ClusterFabric,
        markers: Optional[MarkerLog] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(host)
        self.node_id = node_id
        self.config = config
        self.trace = trace
        self.fabric = fabric
        self.markers = markers if markers is not None else MarkerLog()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tracer = tm.tracer
        self._spans = tm.spans
        m, node = tm.metrics, host.name
        self._c_hits = m.counter("press_cache_hits", node=node)
        self._c_misses = m.counter("press_cache_misses", node=node)
        self._c_evict = m.counter("press_cache_evictions", node=node)
        self._c_served = m.counter("press_requests_served", node=node)
        self._c_forwards = m.counter("press_forwards", node=node)
        self._c_remote = m.counter("press_remote_serves", node=node)
        self._c_disk = m.counter("press_disk_fetches", node=node)
        self._c_reroutes = m.counter("press_send_reroutes", node=node)
        self._c_drops = m.counter("press_send_drops", node=node)
        self._c_qmon = m.counter("press_qmon_exclusions", node=node)
        self._c_excl = m.counter("press_exclusions", node=node)
        self._c_hb = m.counter("press_heartbeats_sent", node=node)
        # Queues live for the lifetime of the server object; their contents
        # are volatile (cleared on process crash).
        self.main_q = self.group.own_store(
            Store(self.env, capacity=config.main_queue_capacity, name=f"{host.name}.mainq")
        )
        self.ctl_q = self.group.own_store(
            Store(self.env, name=f"{host.name}.ctlq")
        )
        self.disk_q = self.group.own_store(
            Store(self.env, capacity=config.disk_queue_capacity, name=f"{host.name}.diskq")
        )
        #: optional membership shared-memory segment (set by the runner for
        #: membership-enabled versions); must expose .version and .members
        self.shared_view = None
        self._running = False
        self._reset_state()
        fabric.register(self)

    # ------------------------------------------------------------------
    # state & lifecycle
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self.cache = LruCache(self.config.cache_files, hits=self._c_hits,
                              misses=self._c_misses, evictions=self._c_evict)
        self.directory = CacheDirectory()
        self._sat_last: Dict[str, float] = {}
        # In-flight miss coalescing: fid -> [DiskFetch waiters].  One disk
        # read satisfies every concurrent request for the same file.
        self.pending_fetch: Dict[int, List[DiskFetch]] = {}
        self.coop: Set[int] = {self.node_id}
        self.links: Dict[int, PeerLink] = {}
        self.loads: Dict[int, int] = {}
        self.fwd_pending: Dict[int, Request] = {}
        # Open spans for sampled requests, keyed on deterministic ids:
        # req_id -> main-queue wait span, reqid -> peer-fetch span.
        # Empty whenever tracing is off.
        self._q_spans: Dict[int, object] = {}
        self._fwd_spans: Dict[int, object] = {}
        self.client_pending = 0
        self._next_reqid = 0
        self._progress = 0
        self._progress_at_hb = -1
        self._hb_seen: Dict[int, float] = {}
        self._last_hb_sent = -1e18
        self._joined = False
        self._last_rejoin = -1e18
        self._seen_view_version = -1
        self._grace_until = -1e18
        # Warm-up mode: non-blocking (shedding) sends and no heartbeat-loss
        # exclusions until the cache is demonstrably warm; see
        # PressConfig.startup_grace and _control_tick.
        self._warm_mode = True
        self._warm_streak = 0
        self.requests_served = 0

    def start(self) -> None:
        if self._running or self.fault_latched or not self.host.is_up:
            return
        if not self.group.alive:
            return
        self._reset_state()
        self._running = True
        self._tracer.emit(EventKind.SERVER_START, source=self.host.name,
                          node_id=self.node_id)
        self._grace_until = self.env.now + self.config.startup_grace
        self._warm_mode = True
        env = self.env
        env.process(self._main_loop(), owner=self.group, name=f"{self.host.name}.main")
        env.process(self._control_loop(), owner=self.group, name=f"{self.host.name}.ctl")
        env.process(self._control_timer(), owner=self.group, name=f"{self.host.name}.tick")
        for i in range(self.config.disk_threads):
            env.process(self._disk_loop(), owner=self.group, name=f"{self.host.name}.disk{i}")
        # A restarted process announces itself so the cluster re-admits it
        # (Section 3's rejoin protocol); the very first start is wired
        # statically by bootstrap_cluster instead.
        self._broadcast_rejoin()

    def on_crash(self) -> None:
        # On an *application* crash the OS is still up and resets the
        # process's TCP connections (RST): peers notice the break at once.
        # On a *node* crash there is no RST — peers block on their sends
        # until the heartbeat ring times out (Section 3).
        if self._running:
            self._tracer.emit(EventKind.SERVER_CRASH, source=self.host.name,
                              node_id=self.node_id)
        self._running = False
        if self.host.is_up:
            for link in self.links.values():
                link.conn.reset()
        self.links.clear()
        self.coop = {self.node_id}
        self.fwd_pending.clear()
        self._q_spans.clear()  # their spans stay open; analysis clamps them
        self._fwd_spans.clear()
        self.client_pending = 0

    # ------------------------------------------------------------------
    # public interfaces (clients, FME, monitoring)
    # ------------------------------------------------------------------
    @property
    def listening(self) -> bool:
        return self._running and self.group.alive and self.host.is_up

    @property
    def load(self) -> int:
        """Open client connections: the paper's load metric."""
        return self.client_pending

    def try_accept(self, req: Request) -> bool:
        if not self.listening:
            return False
        if self.client_pending >= self.config.accept_backlog:
            return False
        self.client_pending += 1
        if req.ctx is not None:
            # Queue-wait span: accepted -> dequeued by the main thread.
            # peek() keeps the LRU recency and hit/miss counters untouched.
            self._q_spans[req.req_id] = self._spans.start(
                "mainq", "queue", self.host.name, ctx=req.ctx,
                cached=self.cache.peek(req.fid))
        self.main_q.force_put(("client", req))
        return True

    def http_probe(self) -> Event:
        """FME's local HTTP probe: succeeds when the main loop serves it."""
        ev = Event(self.env)
        if self.listening:
            self.main_q.force_put(("probe", ev))
        return ev

    def coop_view(self) -> Set[int]:
        """Current cooperation set (used by S-FME's global monitor)."""
        return set(self.coop)

    # ------------------------------------------------------------------
    # cluster wiring
    # ------------------------------------------------------------------
    def accept_connection(self, conn: Connection, from_id: int) -> None:
        """Inbound connect from a peer (fabric calls this on the listener)."""
        old = self.links.pop(from_id, None)
        if old is not None:
            self._teardown_link(old)
        rejoining = from_id not in self.coop
        self._adopt_link(from_id, conn)
        self._enqueue_cache_sync(from_id)
        if rejoining and self._joined:
            self.markers.mark(self.env.now, "reintegrated", from_id)

    def _adopt_link(self, peer_id: int, conn: Connection) -> None:
        link = PeerLink(self, peer_id, conn)
        link.sender = self.env.process(
            self._send_loop(link), owner=self.group, name=f"{self.host.name}.snd{peer_id}"
        )
        link.receiver = self.env.process(
            self._recv_loop(link), owner=self.group, name=f"{self.host.name}.rcv{peer_id}"
        )
        self.links[peer_id] = link
        self.coop.add(peer_id)
        self._hb_seen[peer_id] = self.env.now
        self._joined = True
        self._refresh_pred_grace()

    def _enqueue_cache_sync(self, peer_id: int) -> None:
        link = self.links.get(peer_id)
        if link is None:
            return
        fids = self.cache.contents()
        msg = Message("cache_sync", self.node_id, peer_id, {"fids": fids, "load": self.load},
                      size=_CTL_MSG_SIZE + 16 * len(fids))
        link.send_q.try_put(msg)

    # ------------------------------------------------------------------
    # main coordinating thread
    # ------------------------------------------------------------------
    def _main_loop(self):
        cfg = self.config
        while True:
            kind, item = yield self.main_q.get()
            self._progress += 1
            if kind == "client":
                yield from self._handle_client(item)
            elif kind == "net":
                yield from self._handle_net(item)
            elif kind == "disk":
                yield from self._handle_disk_done(item)
            elif kind == "probe":
                yield self.env.timeout(cfg.cpu_control)
                if not item.triggered:
                    item.succeed()

    def _handle_client(self, req: Request):
        cfg = self.config
        if req.ctx is not None:
            self._spans.finish(self._q_spans.pop(req.req_id, None))
        yield self.env.timeout(cfg.cpu_parse)
        if req.expired:  # client gave up while we were queued
            # Commutative counter: every writer does a synchronous
            # += / -= between yields, so any interleaving sums the same.
            self.client_pending -= 1  # reprolint: disable=REP014
            return
        if self.cache.lookup(req.fid):
            serve = self._spans.start("serve", "service", self.host.name,
                                      ctx=req.ctx, cache="hit")
            yield self.env.timeout(cfg.cpu_serve)
            self._spans.finish(serve)
            self._respond(req)
            return
        target = self._pick_service_node(req.fid)
        if target is not None:
            yield from self._forward(req, target)
        else:
            yield from self._to_disk(DiskFetch(req.fid, request=req,
                                               ctx=req.ctx))

    def _pick_service_node(self, fid: int) -> Optional[int]:
        # Sorted so equal-load ties break toward the lowest node id on
        # every run, not by set-iteration order.
        holders = sorted(
            h for h in self.directory.holders(fid)
            if h != self.node_id and h in self.links
        )
        if not holders:
            return None
        best = min(holders, key=lambda h: self.loads.get(h, 0))
        # Locality wins unless the holder is badly overloaded relative to us.
        if self.loads.get(best, 0) > self.load + self.config.load_slack:
            return None
        return best

    def _forward(self, req: Request, target: int):
        cfg = self.config
        yield self.env.timeout(cfg.cpu_forward)
        link = self.links.get(target)
        if link is None:  # excluded while we were parsing
            yield from self._to_disk(DiskFetch(req.fid, request=req,
                                               ctx=req.ctx))
            return
        self._c_forwards.inc()
        self._next_reqid += 1
        reqid = self._next_reqid
        # Peer-fetch span: forward decision -> fwd_resp (or give-up); the
        # context rides on the message so the remote side parents under it.
        fetch_span = self._spans.start("peer_fetch", "network",
                                       self.host.name, ctx=req.ctx,
                                       target=target)
        msg = Message("fwd_req", self.node_id, target,
                      {"fid": req.fid, "reqid": reqid, "load": self.load},
                      size=_REQ_MSG_SIZE, ctx=fetch_span)
        disposition = self._dispatch_to_peer(link, msg, is_request=True)
        if disposition == "blockingly":
            # reqid is unique per request and _handle_net only pops the
            # id it is answering: the writers touch disjoint keys.
            self.fwd_pending[reqid] = req  # reprolint: disable=REP014
            if fetch_span is not None:
                self._fwd_spans[reqid] = fetch_span  # reprolint: disable=REP014
            link.pending_requests += 1
            # COOP: the main thread blocks here (bounded by the OS send
            # timeout; see PressConfig.send_block_timeout).
            delivered = yield from self._blocking_enqueue(link, msg)
            if not delivered:
                link.pending_requests = max(0, link.pending_requests - 1)
                self.fwd_pending.pop(reqid, None)
                self._spans.finish(self._fwd_spans.pop(reqid, None),
                                   outcome="undelivered")
                yield from self._to_disk(DiskFetch(req.fid, request=req,
                                                   ctx=req.ctx))
        elif disposition == "sent":
            self.fwd_pending[reqid] = req
            if fetch_span is not None:
                self._fwd_spans[reqid] = fetch_span
        else:  # rerouted or peer declared failed: serve from our own disk
            self._spans.finish(fetch_span, outcome=disposition)
            yield from self._to_disk(DiskFetch(req.fid, request=req,
                                               ctx=req.ctx))

    #: message kinds that may be dropped under pressure in every version:
    #: caching information is advisory (piggybacked/lossy in real PRESS) and
    #: directory staleness is tolerated by design.
    _DROPPABLE = frozenset({"cache_add", "cache_del"})

    def _dispatch_to_peer(self, link: PeerLink, msg: Message, is_request: bool) -> str:
        """Queue-monitoring policy (Section 4.3) or blocking enqueue."""
        disposition = self._dispatch_policy(link, msg, is_request)
        if disposition == "reroute":
            self._c_reroutes.inc()
            self._note_queue_pressure(link.send_q.name, "reroute")
        elif disposition == "dropped":
            self._c_drops.inc()
            self._note_queue_pressure(link.send_q.name, "dropped")
        elif disposition == "failed":
            self._c_qmon.inc()
            self._note_queue_pressure(link.send_q.name, "qmon_failed")
        return disposition

    def _note_queue_pressure(self, queue: str, action: str) -> None:
        """Trace a saturation episode, at most once per interval per queue."""
        tracer = self._tracer
        if not tracer.enabled:
            return
        now = self.env.now
        if now - self._sat_last.get(queue, -1e18) >= self._SAT_EMIT_INTERVAL:
            self._sat_last[queue] = now
            tracer.emit(EventKind.QUEUE_SATURATED, source=self.host.name,
                        queue=queue, action=action)

    def _dispatch_policy(self, link: PeerLink, msg: Message, is_request: bool) -> str:
        cfg = self.config
        if not cfg.queue_monitoring:
            if msg.kind in self._DROPPABLE:
                return "sent" if link.send_q.try_put(msg) else "dropped"
            if self._warm_mode:
                # Warm-up mode: a cold cluster under full load jams every
                # queue at once; blocking here would wedge the whole mesh
                # with no faulty node to exclude.  Shed to the local disk
                # instead until caches fill.
                if link.send_q.try_put(msg):
                    if is_request:
                        link.pending_requests += 1
                    return "sent"
                return "reroute" if is_request else "dropped"
            return "blockingly"
        if (link.total_backlog >= cfg.qmon_fail_total
                or link.pending_requests >= cfg.qmon_fail_requests):
            self._exclude(link.peer_id, "qmon", announce=False)
            return "failed"
        if is_request and link.pending_requests >= cfg.qmon_reroute_threshold:
            link.probe_counter += 1
            if link.probe_counter % cfg.qmon_probe_interval != 0:
                return "reroute"
        if link.send_q.try_put(msg):
            if is_request:
                link.pending_requests += 1
            return "sent"
        return "reroute" if is_request else "dropped"

    def _to_disk(self, fetch: DiskFetch):
        if fetch.ctx is not None:
            # Swap the requester's context for this fetch's own open
            # "disk" span (queue + device + coalesced wait time);
            # _handle_disk_done closes it.
            fetch.ctx = self._spans.start("disk", "disk", self.host.name,
                                          ctx=fetch.ctx, fid=fetch.fid)
        waiters = self.pending_fetch.get(fetch.fid)
        if waiters is not None:
            waiters.append(fetch)  # a read for this file is already queued
            return
        # _handle_disk_done pops a fid only after its disk read
        # completes, so the pop is ordered after this put through the
        # disk queue — never a same-instant race on the same key.
        self.pending_fetch[fetch.fid] = [fetch]  # reprolint: disable=REP014
        self._c_disk.inc()
        # The disk queue put blocks when full — a node with a dead disk
        # stalls itself here no matter which HA techniques are enabled.
        yield self.disk_q.put(fetch.fid)

    def _handle_net(self, msg: Message):
        cfg = self.config
        payload = msg.payload or {}
        if "load" in payload:
            # Load gossip is last-writer-wins per source key; a
            # one-tick-stale estimate only biases the balancing
            # heuristic, never correctness.
            self.loads[msg.src] = payload["load"]  # reprolint: disable=REP014
        if msg.kind == "fwd_req":
            self._c_remote.inc()
            remote = self._spans.start("remote_serve", "service",
                                       self.host.name, ctx=msg.ctx)
            yield self.env.timeout(cfg.cpu_remote_serve)
            fid = payload["fid"]
            if self.cache.lookup(fid):
                self._spans.finish(remote, cache="hit")
                yield from self._send_fwd_resp(msg.src, payload["reqid"],
                                               fid, ctx=msg.ctx)
            else:
                self._spans.finish(remote, cache="miss")
                yield from self._to_disk(
                    DiskFetch(fid, origin=msg.src, reqid=payload["reqid"],
                              ctx=msg.ctx)
                )
        elif msg.kind == "fwd_resp":
            yield self.env.timeout(cfg.cpu_response)
            req = self.fwd_pending.pop(payload["reqid"], None)
            self._spans.finish(self._fwd_spans.pop(payload["reqid"], None),
                               outcome="ok")
            if req is not None:
                self._respond(req)
        elif msg.kind == "cache_add":
            yield self.env.timeout(cfg.cpu_control)
            # Directory add/remove are idempotent per-(node, fid) set
            # ops; gossip vs control-channel replays reconcile through
            # the periodic cache_sync exchange.
            self.directory.add(msg.src, payload["fid"])  # reprolint: disable=REP014
        elif msg.kind == "cache_del":
            yield self.env.timeout(cfg.cpu_control)
            self.directory.remove(msg.src, payload["fid"])
        elif msg.kind == "cache_sync":
            yield self.env.timeout(cfg.cpu_control)
            self.directory.replace_node(msg.src, payload["fids"])

    def _send_fwd_resp(self, origin: int, reqid: int, fid: int, ctx=None):
        link = self.links.get(origin)
        if link is None:
            return
        msg = Message("fwd_resp", self.node_id, origin,
                      {"reqid": reqid, "fid": fid, "load": self.load},
                      size=self.trace.file_size(fid), ctx=ctx)
        disposition = self._dispatch_to_peer(link, msg, is_request=False)
        if disposition == "blockingly":
            yield from self._blocking_enqueue(link, msg)
            # an undeliverable response is dropped; the client times out

    def _blocking_enqueue(self, link: PeerLink, msg: Message):
        """Enqueue with the OS send timeout; returns True if accepted."""
        put_ev = link.send_q.put(msg)
        if put_ev.triggered:
            return True
        deadline = self.env.timeout(self.config.send_block_timeout)
        yield AnyOf(self.env, [put_ev, deadline])
        if put_ev.triggered:
            return True
        put_ev.cancel()
        return False

    def _handle_disk_done(self, fid: int):
        cfg = self.config
        yield self.env.timeout(cfg.cpu_disk_done)
        waiters = self.pending_fetch.pop(fid, [])
        for fetch in waiters:
            self._spans.finish(fetch.ctx)
        # One cached copy cluster-wide (PRESS's global memory management):
        # a locally-fetched file that some peer already caches is served
        # from disk but *not* cached again — whether the local fetch came
        # from warm-up shedding or a queue-monitor reroute, caching it
        # would duplicate entries, evict useful ones and churn the
        # directory.  A fetch serving a *forwarded* request is different:
        # the peers chose us as the service node for this file, so we must
        # cache it or every future request would hit our disk again.
        serves_remote = any(f.origin is not None for f in waiters)
        cache_it = (
            serves_remote
            or not any(h != self.node_id for h in self.directory.holders(fid))
        )
        if cache_it:
            evicted = self.cache.insert(fid)
            # Blame the cooperation overhead on the request that caused it.
            ctx = next((f.ctx for f in waiters if f.ctx is not None), None)
            yield from self._broadcast_cache_update("cache_add", fid, ctx=ctx)
            if evicted is not None:
                yield from self._broadcast_cache_update("cache_del", evicted,
                                                        ctx=ctx)
        for fetch in waiters:
            if fetch.request is not None:
                if fetch.request.expired:
                    # The client gave up while the read was queued: close
                    # the connection without assembling a reply.
                    self.client_pending -= 1
                    continue
                yield self.env.timeout(cfg.cpu_serve)
                self._respond(fetch.request)
            elif fetch.origin is not None:
                yield from self._send_fwd_resp(fetch.origin, fetch.reqid,
                                               fetch.fid, ctx=fetch.ctx)

    def _broadcast_cache_update(self, kind: str, fid: int, ctx=None):
        # Caching actions are broadcast as datagrams on the control plane:
        # locality information is advisory (lost updates only cost a stale
        # directory entry) and must keep flowing even when the data-path
        # queues are congested, or the cluster could never dedup its way
        # out of a cold start.
        yield self.env.timeout(self.config.cpu_control)
        self.fabric.control_broadcast(
            self, kind, {"fid": fid, "load": self.load}, size=_CTL_MSG_SIZE,
            ctx=ctx
        )

    def _respond(self, req: Request) -> None:
        self.client_pending -= 1
        self.requests_served += 1
        self._c_served.inc()
        req.respond()

    # ------------------------------------------------------------------
    # helper threads
    # ------------------------------------------------------------------
    def _send_loop(self, link: PeerLink):
        while True:
            msg = yield link.send_q.get()
            link.in_flight = True
            try:
                yield link.endpoint.send(msg, size=msg.size, owner=self.group)
            except ConnectionClosed:
                self.ctl_q.force_put(Message("conn_closed", link.peer_id, self.node_id))
                return
            finally:
                link.in_flight = False
                if msg.kind == "fwd_req":
                    link.pending_requests = max(0, link.pending_requests - 1)

    def _recv_loop(self, link: PeerLink):
        while True:
            msg = yield link.endpoint.recv()
            if msg is CLOSED:
                self.ctl_q.force_put(Message("conn_closed", link.peer_id, self.node_id))
                return
            yield self.main_q.put(("net", msg))  # blocks when main is stalled

    def _disk_loop(self):
        disks = self.host.disks
        while True:
            fid = yield self.disk_q.get()
            disk = disks[fid % len(disks)]
            sub = disk.submit(self.trace.file_size(fid))
            yield sub.enqueued
            yield sub.done
            self.main_q.force_put(("disk", fid))

    # ------------------------------------------------------------------
    # control thread: heartbeats, exclusion, rejoin, membership
    # ------------------------------------------------------------------
    def _control_timer(self):
        while True:
            yield self.env.timeout(1.0)
            self.ctl_q.force_put(Message("tick", self.node_id, self.node_id))

    def _control_loop(self):
        while True:
            msg = yield self.ctl_q.get()
            # Per-iteration bindings: msg fields are immutable, and
            # self.coop is only rebound between iterations (rejoin).
            kind = msg.kind
            src = msg.src
            payload = msg.payload
            coop = self.coop
            if kind == "tick":
                self._control_tick()
            elif kind == "hb":
                self._hb_seen[src] = self.env.now
            elif kind == "node_dead":
                # Only honor reconfiguration announcements from current
                # members: a splintered node mis-declaring healthy peers
                # dead must not take down the surviving sub-cluster.
                target = payload
                if (src in coop and target != self.node_id
                        and target in coop):
                    self._exclude(target, "announced", announce=False)
            elif kind == "conn_closed":
                if src in self.links:
                    self._exclude(src, "conn_reset", announce=True)
            elif kind == "rejoin":
                self._handle_rejoin(src)
            elif kind == "config":
                self._handle_config(payload)
            elif kind in ("cache_add", "cache_del"):
                if src in coop and src != self.node_id:
                    payload = payload or {}
                    if "load" in payload:
                        self.loads[src] = payload["load"]
                    if kind == "cache_add":
                        self.directory.add(src, payload["fid"])
                    else:
                        self.directory.remove(src, payload["fid"])

    def _control_tick(self) -> None:
        cfg = self.config
        now = self.env.now
        if self._warm_mode and now >= self._grace_until:
            # Exit warm-up once the in-flight miss set stays small: the
            # cache is carrying the load and normal (blocking) cooperative
            # operation is safe again.  A hard cap bounds the mode for
            # nodes hovering at the threshold.
            if len(self.pending_fetch) <= 8:
                self._warm_streak += 1
                if self._warm_streak >= 3:
                    self._warm_mode = False
            else:
                self._warm_streak = 0
            if now >= self._grace_until + cfg.startup_grace:
                self._warm_mode = False
        if cfg.ring_detection:
            self._heartbeat_duty(now)
        if cfg.use_membership and self.shared_view is not None:
            self._reconcile_membership()
        if not self._joined and now - self._last_rejoin >= cfg.rejoin_retry:
            self._broadcast_rejoin()
        if self.fwd_pending:
            # Reap forwards whose client has given up (response lost to an
            # exclusion or a dropped message): their connections close, so
            # the accept slots must be returned.
            alive = {}
            for rid, req in self.fwd_pending.items():
                if req.expired:
                    self.client_pending -= 1
                    self._spans.finish(self._fwd_spans.pop(rid, None),
                                       outcome="expired")
                else:
                    alive[rid] = req
            self.fwd_pending = alive

    def _heartbeat_duty(self, now: float) -> None:
        cfg = self.config
        succ = self._ring_neighbor(+1)
        if succ is not None and now - self._last_hb_sent >= cfg.heartbeat_interval:
            # Watchdog gating: only heartbeat if the main thread is making
            # progress (or is simply idle).  A stalled main loop silences
            # the node, which is what lets peers detect it.
            if self._progress != self._progress_at_hb or self.main_q.level < 4:
                self.fabric.control_send(self, succ, "hb")
                self._c_hb.inc()
                self._progress_at_hb = self._progress
                self._last_hb_sent = now
        if self._warm_mode:
            return  # cold-start warm-up: don't mistake the burst for death
        pred = self._ring_neighbor(-1)
        if pred is not None:
            last = self._hb_seen.get(pred, now)
            if now - last > cfg.heartbeat_loss_threshold * cfg.heartbeat_interval:
                self._exclude(pred, "heartbeat", announce=True)

    def _enter_warm_mode(self, grace: float) -> None:
        self._warm_mode = True
        self._warm_streak = 0
        self._grace_until = max(self._grace_until, self.env.now + grace)

    def _refresh_pred_grace(self) -> None:
        """Restart the heartbeat-loss count for a *new* ring predecessor.

        After a reconfiguration the node's predecessor changes; the old
        predecessor never sent us heartbeats (it pointed elsewhere), so
        counting losses from its stale timestamp would cascade exclusions
        around the ring.
        """
        pred = self._ring_neighbor(-1)
        if pred is not None:
            prev = self._hb_seen.get(pred, -1e18)
            self._hb_seen[pred] = max(prev, self.env.now)

    def _ring_neighbor(self, direction: int) -> Optional[int]:
        members = sorted(self.coop)
        if len(members) < 2:
            return None
        idx = members.index(self.node_id)
        return members[(idx + direction) % len(members)]

    # -- exclusion ------------------------------------------------------------
    def _exclude(self, peer_id: int, reason: str, announce: bool) -> None:
        if peer_id == self.node_id:
            return
        link = self.links.pop(peer_id, None)
        in_coop = peer_id in self.coop
        if link is None and not in_coop:
            return
        self._c_excl.inc()
        self.markers.mark(self.env.now, "detected", (reason, self.node_id, peer_id))
        self.markers.mark(self.env.now, "excluded", (self.node_id, peer_id))
        # Reconfiguration brings a re-warming burst (the excluded node's
        # cached files must be re-fetched): ride it out in warm-up mode so
        # the survivors shed to their disks instead of wedging each other.
        self._enter_warm_mode(grace=5.0)
        self.coop.discard(peer_id)
        self._hb_seen.pop(peer_id, None)
        self.loads.pop(peer_id, None)
        self.directory.drop_node(peer_id)
        if link is not None:
            self._teardown_link(link)
        self._refresh_pred_grace()
        if announce and self.config.ring_detection:
            # Ring-mode reconfiguration broadcast.  In membership mode the
            # external service owns the global view; local exclusions stay
            # local and the published view drives everyone else.
            self.fabric.control_broadcast(self, "node_dead", peer_id)

    def _teardown_link(self, link: PeerLink) -> None:
        link.conn.reset()  # peers' readers see CLOSED; blocked sends abort
        if link.sender is not None:
            link.sender.kill()
        if link.receiver is not None:
            link.receiver.kill()
        link.send_q.release_putters()  # unblock our own stalled main thread
        link.send_q.clear()

    # -- rejoin protocol --------------------------------------------------------
    def _broadcast_rejoin(self) -> None:
        self._last_rejoin = self.env.now
        self.fabric.control_broadcast(self, "rejoin")

    def _handle_rejoin(self, from_id: int) -> None:
        if from_id == self.node_id:
            return
        # The active node with the lowest id answers with the configuration.
        if self.node_id == min(self.coop):
            self.fabric.control_send(
                self, from_id, "config", {"members": sorted(self.coop)}
            )

    def _handle_config(self, payload) -> None:
        members = [m for m in payload["members"] if m != self.node_id]
        if self._joined:
            return  # already part of a cluster; ignore stray configs
        for m in members:
            if m in self.links:
                continue
            conn = self.fabric.open_connection(self, m, window=self.config.conn_window)
            if conn is not None:
                self._adopt_link(m, conn)
                self._enqueue_cache_sync(m)
        if self.links:
            self.markers.mark(self.env.now, "rejoined", self.node_id)

    # -- membership reconciliation (Section 4.4) ---------------------------------
    def _reconcile_membership(self) -> None:
        view = self.shared_view
        members = set(view.members)
        if self.node_id not in members:
            return  # our own daemon doesn't (yet) list us; nothing to do
        # NodeOut: peers the membership service dropped.
        for peer in sorted(self.coop - members):
            if peer != self.node_id:
                self._exclude(peer, "membership", announce=False)
        # NodeIn: peers the service lists that we do not cooperate with.
        for peer in sorted(members - self.coop):
            self._membership_add(peer)

    def _membership_add(self, peer_id: int) -> None:
        if peer_id == self.node_id or peer_id in self.links:
            return
        # Lower id initiates the connection; the other side waits for the
        # inbound connect (avoids crossed duplicate connections).
        if self.node_id > peer_id:
            return
        conn = self.fabric.open_connection(self, peer_id, window=self.config.conn_window)
        if conn is not None:
            was_out = peer_id not in self.coop
            self._adopt_link(peer_id, conn)
            self._enqueue_cache_sync(peer_id)
            if was_out:
                self.markers.mark(self.env.now, "reintegrated", peer_id)


def bootstrap_cluster(servers: List[PressServer]) -> None:
    """Statically wire the initial cooperation set (cluster bring-up).

    Every server must already be started.  Creates one connection per
    pair and installs the full membership everywhere, mirroring a clean
    simultaneous launch.
    """
    for i, a in enumerate(servers):
        for b in servers[i + 1:]:
            conn = Connection(a.env, a.fabric.net, a.host, b.host,
                              window=a.config.conn_window)
            a._adopt_link(b.node_id, conn)
            b._adopt_link(a.node_id, conn)
    for srv in servers:
        srv._joined = True
