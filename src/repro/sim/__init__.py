"""Discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs: a
deterministic, seedable discrete-event simulator with generator-coroutine
processes, bounded blocking stores (the backpressure primitive that makes
fault propagation in cooperative servers reproducible), condition events,
and time-series recording.

The kernel is intentionally SimPy-like but adds one domain-specific
capability the paper needs: *process ownership*.  Every process may belong
to a :class:`~repro.sim.process.ProcessOwner` (a node or an application
process-group).  When the owner is frozen, event deliveries to its
processes are parked and replayed on thaw; when the owner crashes, its
processes are killed.  This is how "node freeze", "node crash", "app hang"
and "app crash" faults from Table 1 of the paper act on running code.
"""

from repro.sim.kernel import (
    Environment,
    Event,
    Timeout,
    SimulationError,
    URGENT,
    NORMAL,
)
from repro.sim.process import Process, Interrupt, ProcessOwner, KILLED
from repro.sim.store import Store, StoreFullError
from repro.sim.conditions import AnyOf, AllOf
from repro.sim.rng import RngRegistry
from repro.sim.series import ThroughputSeries, MarkerLog

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "SimulationError",
    "URGENT",
    "NORMAL",
    "Process",
    "Interrupt",
    "ProcessOwner",
    "KILLED",
    "Store",
    "StoreFullError",
    "AnyOf",
    "AllOf",
    "RngRegistry",
    "ThroughputSeries",
    "MarkerLog",
]
