"""Composite wait conditions (AnyOf / AllOf).

Used throughout the servers for get-with-timeout patterns::

    get_ev = queue.get()
    cond = yield AnyOf(env, [get_ev, env.timeout(1.0)])
    if get_ev.triggered:
        msg = get_ev.value
    else:
        get_ev.cancel()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.kernel import Environment, Event


class Condition(Event):
    """Base for composite events over a fixed set of sub-events.

    The condition's value is a dict mapping each *triggered-and-ok*
    sub-event to its value at the moment the condition fired.  If any
    sub-event fails before the condition triggers, the condition fails
    with the same exception (the sub-event failure is defused).
    """

    __slots__ = ("events", "_pending")

    def __init__(self, env: Environment, events: List[Event]):
        super().__init__(env)
        for ev in events:
            if ev.env is not env:
                raise ValueError("all condition sub-events must share one Environment")
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._observe)

    def _observe(self, event: Event) -> None:
        if event._ok is False:
            event._defused = True
            if not self.triggered:
                self.fail(event._value)
            return
        if self.triggered:
            return
        self._pending -= 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> Dict[Event, Any]:
        # ``processed`` (callbacks ran), not ``triggered``: Timeout events
        # are born triggered but have not *fired* until the clock reaches
        # them.
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AnyOf(Condition):
    """Triggers as soon as the first sub-event triggers successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending < len(self.events)

    @property
    def first(self) -> Optional[Event]:
        """The earliest-registered sub-event that has fired, if any."""
        for ev in self.events:
            if ev.processed and ev._ok:
                return ev
        return None


class AllOf(Condition):
    """Triggers once every sub-event has triggered successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending == 0
