"""Event loop and primitive events.

The scheduler is a binary heap of ``(time, priority, sequence, event)``
tuples.  The sequence number makes ordering total and deterministic: two
events scheduled for the same instant at the same priority fire in the
order they were scheduled, on every run.  Determinism matters here because
availability experiments are compared across system versions; run-to-run
jitter would show up as noise in the fitted fault templates.

The FIFO tie-break among same-``(time, priority)`` events is a
*convention*, not a causal necessity — and the race detector
(:mod:`repro.analysis.racecheck`) exploits exactly that: constructing the
Environment with a ``tiebreak_seed`` replaces the FIFO tie-break with a
seeded pseudo-random permutation (a splitmix64 salt keyed on the sequence
number), which perturbs the order of *causally unordered* same-instant
events while preserving every happens-before edge (time, priority, and
"scheduled by an already-processed callback" all still order events).
Two perturbed runs that agree on all observable outputs certify that no
simulated component depends on the accidental FIFO order — which is what
makes calendar-queue / lazy-heap refactors of this scheduler safe.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mix (splitmix64 finalizer); pure arithmetic,
    independent of PYTHONHASHSEED."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)

#: Scheduling priorities.  URGENT events at a given time fire before NORMAL
#: ones; interrupts use URGENT so they preempt ordinary deliveries.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, running a stopped env...)."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    schedules it, and when the scheduler processes it, all registered
    callbacks run with the event as argument.  Events are single-use.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("value of untriggered event")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=delay, priority=priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and fn in self.callbacks:
            self.callbacks.remove(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units from now."""

    __slots__ = ("delay")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Environment:
    """The simulation clock and event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=600.0)
    """

    __slots__ = ("_now", "_queue", "_seq", "_processed", "_stopped",
                 "_tiebreak_seed", "_monitor", "_spans", "_spawn_ctx")

    def __init__(self, initial_time: float = 0.0, monitor=None,
                 tiebreak_seed: Optional[int] = None):
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = 0
        self._processed = 0
        self._stopped = False
        # Schedule-perturbation mode (repro.analysis.racecheck).  None is
        # the production FIFO tie-break and the heap holds 4-tuples, as it
        # always has.  With a seed, same-(time, priority) events are
        # ordered by a seeded salt instead of arrival order (5-tuples,
        # with the sequence number after the salt keeping the order total
        # and run-to-run deterministic for a given seed).  The mode is
        # fixed at construction so the two entry shapes never mix in one
        # heap.
        self._tiebreak_seed = tiebreak_seed
        # Opt-in profiling hook (see repro.obs.kernelprof).  The fast path
        # pays one `is not None` check per schedule/step; with no monitor
        # attached the loop is byte-for-byte the unprofiled one.
        self._monitor = monitor
        # Causal-tracing hooks (see repro.obs.spans).  `_spans` is the
        # world's SpanRecorder when request tracing is on (bound by
        # Telemetry.attach), else None.  `_spawn_ctx` is the trace
        # context of the most recently resumed process: process() reads
        # it so children spawned from a traced scope inherit the parent
        # span without explicit plumbing.  Both stay None when tracing
        # is off, so recording cannot perturb an untraced run.
        self._spans = None
        self._spawn_ctx = None

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def scheduled_count(self) -> int:
        """Events scheduled since construction (monotone, monitor-free)."""
        return self._seq

    @property
    def processed_count(self) -> int:
        """Events processed since construction.

        Maintained unconditionally (one integer increment per step), so
        the benchmark harness can compute events/sec without attaching a
        monitor — attaching one would perturb the quantity being measured.
        """
        return self._processed

    @property
    def monitor(self):
        """The attached kernel monitor (profiler), or None."""
        return self._monitor

    @property
    def tiebreak_seed(self) -> Optional[int]:
        """Seed of the perturbed same-instant tie-break, or None (FIFO)."""
        return self._tiebreak_seed

    def set_monitor(self, monitor) -> None:
        """Attach an object with ``on_schedule(depth)``/``on_event(event,
        callbacks)`` hooks; pass None to detach and restore the fast path."""
        self._monitor = monitor

    @property
    def spans(self):
        """The bound :class:`~repro.obs.spans.SpanRecorder`, or None.

        Components without a Telemetry reference (transport endpoints,
        the control-plane fabric) reach the recorder through here.
        """
        return self._spans

    def bind_spans(self, recorder) -> None:
        """Bind (or with None, unbind) the world's span recorder."""
        self._spans = recorder

    # -- scheduling -----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        if self._tiebreak_seed is None:
            heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        else:
            salt = _splitmix64(self._seq ^ self._tiebreak_seed)
            heapq.heappush(self._queue,
                           (self._now + delay, priority, salt, self._seq, event))
        if self._monitor is not None:
            self._monitor.on_schedule(len(self._queue))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator, owner=None, name: Optional[str] = None,
                ctx=None):
        """Spawn a generator coroutine as a :class:`~repro.sim.process.Process`.

        ``ctx`` attaches a trace context (a :class:`~repro.obs.spans.Span`)
        to the process; when omitted, the spawning process's context is
        captured, so e.g. a retry spawned from a traced request scope
        parents its spans under the original request.
        """
        from repro.sim.process import Process

        if ctx is None:
            ctx = self._spawn_ctx
        return Process(self, generator, owner=owner, name=name, ctx=ctx)

    def any_of(self, events: Iterable[Event]):
        from repro.sim.conditions import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]):
        from repro.sim.conditions import AllOf

        return AllOf(self, list(events))

    # -- execution ------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on empty queue")
        entry = heapq.heappop(self._queue)
        time = entry[0]
        event = entry[-1]
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        self._processed += 1
        assert callbacks is not None
        monitor = self._monitor
        if monitor is not None:
            # Profiled path: bracket the callback batch so a timing
            # monitor (repro.obs.kernelprof.TimingProfiler) can charge
            # wall time to this event.  The unprofiled loop below stays
            # free of any per-callback monitor checks.
            monitor.on_event(event, callbacks)
            for cb in callbacks:
                cb(event)
            monitor.on_event_done(event)
        else:
            for cb in callbacks:
                cb(event)
        if event._ok is False and not getattr(event, "_defused", False):
            # An unhandled failure: surface it rather than losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = until
