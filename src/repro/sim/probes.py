"""Instrumentation probes: sampled time series of simulation state.

Availability debugging lives and dies by seeing *where* work piles up.
These probes sample queue depths, disk utilization, or any custom gauge
on a fixed period and expose the result as numpy arrays.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.sim.kernel import Environment
from repro.sim.store import Store


class GaugeProbe:
    """Samples ``gauge()`` every ``period`` seconds."""

    __slots__ = ("env", "gauge", "period", "name", "_times", "_values",
                 "_proc")

    def __init__(self, env: Environment, gauge: Callable[[], float],
                 period: float = 1.0, name: str = ""):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.gauge = gauge
        self.period = period
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []
        self._proc = env.process(self._run(), name=f"probe:{name or 'gauge'}")

    def _run(self):
        while True:
            self._times.append(self.env.now)
            self._values.append(float(self.gauge()))
            yield self.env.timeout(self.period)

    # -- access -----------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def stop(self) -> None:
        self._proc.kill()

    def max(self) -> float:
        return float(self.values.max()) if self._values else 0.0

    def mean(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        if not self._values:
            return 0.0
        times, values = self.times, self.values
        mask = np.ones(len(times), dtype=bool)
        if t0 is not None:
            mask &= times >= t0
        if t1 is not None:
            mask &= times < t1
        selected = values[mask]
        return float(selected.mean()) if selected.size else 0.0

    def time_above(self, threshold: float) -> float:
        """Approximate seconds the gauge spent above ``threshold``."""
        if not self._values:
            return 0.0
        return float((self.values > threshold).sum()) * self.period


class QueueDepthProbe(GaugeProbe):
    """Samples a store's backlog (items + blocked putters)."""

    def __init__(self, env: Environment, store: Store, period: float = 1.0):
        super().__init__(env, lambda: store.backlog, period,
                         name=f"depth:{store.name}")


class DiskUtilizationProbe(GaugeProbe):
    """Samples served-op deltas as a utilization proxy (ops/s x service).

    The proxy needs a representative op size to convert an op count into
    busy time; pass the workload's mean file size (``TraceConfig.file_size``
    for the synthetic trace).  When omitted it falls back to the default
    trace configuration rather than a hard-coded constant.
    """

    def __init__(self, env: Environment, disk, period: float = 1.0,
                 mean_file_size: Optional[int] = None):
        if mean_file_size is None:
            from repro.workload.trace import TraceConfig

            mean_file_size = TraceConfig().file_size
        if mean_file_size <= 0:
            raise ValueError("mean_file_size must be positive")
        self._mean_file_size = int(mean_file_size)
        self._disk = disk
        self._last_ops = disk.ops_served
        super().__init__(env, self._delta, period, name=f"util:{disk.name}")

    def _delta(self) -> float:
        ops = self._disk.ops_served
        delta = ops - self._last_ops
        self._last_ops = ops
        busy = delta * self._disk.params.service_time(self._mean_file_size)
        return min(busy / self.period, 1.0)


def probe_world_queues(world, period: float = 1.0) -> List[QueueDepthProbe]:
    """Attach depth probes to every PRESS server's main/disk queues."""
    probes: List[QueueDepthProbe] = []
    for server in world.servers:
        for attr in ("main_q", "disk_q", "queue"):
            store = getattr(server, attr, None)
            if store is not None:
                probes.append(QueueDepthProbe(world.env, store, period))
    return probes


def probe_world_disks(world, period: float = 1.0) -> List[DiskUtilizationProbe]:
    """Attach utilization probes to every disk, sized from the world's
    workload profile (the mean file size the servers actually read)."""
    size = world.profile.trace.file_size
    return [DiskUtilizationProbe(world.env, disk, period, mean_file_size=size)
            for disk in world.disks.values()]
