"""Generator-coroutine processes with ownership semantics.

A :class:`Process` drives a generator that yields :class:`~repro.sim.kernel.Event`
objects; the process resumes when the yielded event fires.  A process is
itself an event, triggered with the generator's return value, so processes
can wait on each other.

Ownership (:class:`ProcessOwner`) models what the paper's fault types do to
running software:

* **freeze** — event deliveries to the owner's processes are parked and
  replayed in order on :meth:`ProcessOwner.thaw`.  The process "resumes
  where it left off", exactly like a frozen OS or a hung application
  whose state survives.
* **crash** — all of the owner's processes are killed and parked
  deliveries are dropped; state is lost and must be rebuilt by whatever
  restart logic the owner's host implements.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import Environment, Event, SimulationError, URGENT


class _Killed:
    """Sentinel value a killed process's completion event carries."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<KILLED>"


#: Value of a process event whose process was killed (by a crash fault or
#: explicitly).  Waiters should treat it as "the peer died", not a result.
KILLED = _Killed()


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class ProcessOwner:
    """Mixin giving an entity (node, app process-group) fault semantics.

    Subclasses (e.g. :class:`repro.hardware.host.ProcGroup`) call
    :meth:`freeze`/:meth:`thaw`/:meth:`crash`/:meth:`revive` when faults
    are injected and repaired.
    """

    __slots__ = ("_procs", "_parked", "_frozen", "_owner_alive")

    def __init__(self) -> None:
        # Insertion-ordered set: crash() kills processes in spawn order.
        # A plain set would iterate in id()-hash order, which varies from
        # run to run and would leak into the kill/event sequence.
        self._procs: dict = {}
        self._parked: list = []
        self._frozen = False
        self._owner_alive = True

    # -- state queried by the kernel -------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def alive(self) -> bool:
        return self._owner_alive

    def is_runnable(self) -> bool:
        return self._owner_alive and not self._frozen

    # -- registration -----------------------------------------------------
    def attach(self, proc: "Process") -> None:
        self._procs[proc] = None

    def detach(self, proc: "Process") -> None:
        self._procs.pop(proc, None)

    @property
    def processes(self) -> frozenset:
        return frozenset(self._procs)

    # -- fault transitions -------------------------------------------------
    def park(self, deliver: Callable[[], None]) -> None:
        """Hold a pending event delivery until the owner is runnable again."""
        self._parked.append(deliver)

    def freeze(self) -> None:
        if not self._owner_alive:
            raise SimulationError("cannot freeze a crashed owner")
        self._frozen = True

    def thaw(self, env: Environment) -> None:
        """Resume execution, replaying parked deliveries in arrival order."""
        if not self._frozen:
            return
        self._frozen = False
        if not self._parked:
            return
        parked, self._parked = self._parked, []

        replay = Event(env)

        def _replay(_evt: Event) -> None:
            for deliver in parked:
                deliver()

        replay.add_callback(_replay)
        replay.succeed(priority=URGENT)

    def crash(self) -> None:
        """Kill every owned process and drop parked deliveries."""
        self._owner_alive = False
        self._frozen = False
        self._parked.clear()
        for proc in list(self._procs):
            proc.kill()
        self._procs.clear()

    def revive(self) -> None:
        """Mark the owner runnable again (fresh boot; no processes yet)."""
        self._owner_alive = True
        self._frozen = False
        self._parked.clear()


class Process(Event):
    """A running generator coroutine.

    The process event triggers when the generator returns (value = return
    value), raises (the process event *fails* with that exception), or is
    killed (value = :data:`KILLED`).
    """

    __slots__ = ("_generator", "owner", "name", "_target", "ctx")

    def __init__(
        self,
        env: Environment,
        generator,
        owner: Optional[ProcessOwner] = None,
        name: Optional[str] = None,
        ctx=None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.owner = owner
        self.name = name or getattr(generator, "__name__", "process")
        #: trace context (repro.obs.spans.Span) this process runs under;
        #: published to env._spawn_ctx on every resume so child spawns
        #: inherit it (see Environment.process).  Always None when
        #: request tracing is off.
        self.ctx = ctx
        self._target: Optional[Event] = None
        if owner is not None:
            owner.attach(self)
        bootstrap = Event(env)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(priority=URGENT)

    # -- introspection ----------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def code_ref(self) -> tuple:
        """``(filename, qualname, firstlineno)`` of the generator body.

        A stable, instance-independent identity for *which code* this
        process runs — the join key the race detector uses to map a
        running process onto its static effect set in the call graph
        (``repro.analysis.racecheck``).  Survives kill(): the closed
        generator keeps its code object.
        """
        code = getattr(self._generator, "gi_code", None)
        if code is None:  # non-generator coroutine-like object
            return ("", self.name, 0)
        qualname = getattr(code, "co_qualname", code.co_name)
        return (code.co_filename, qualname, code.co_firstlineno)

    # -- event delivery ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            # Late delivery to a finished/killed process: consume failures
            # so the kernel does not raise them as unhandled.
            if event._ok is False:
                event._defused = True
            return
        owner = self.owner
        if owner is not None and not owner.is_runnable():
            if event._ok is False:
                event._defused = True
            if owner.alive:  # frozen: hold for thaw
                owner.park(lambda: self._resume(event))
            # crashed: drop silently (kill() will fire shortly/has fired)
            return
        self._target = None
        # Publish this process's trace context for the duration of the
        # resume: spawns inside the generator body capture it.  A plain
        # store (no save/restore) suffices — the next resume overwrites
        # it, and it is read only synchronously inside spawn calls.
        self.env._spawn_ctx = self.ctx
        try:
            if event._ok:
                nxt = self._generator.send(event._value)
            else:
                event._defused = True
                nxt = self._generator.throw(event._value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            if self.owner is not None:
                self.owner.detach(self)
            self.fail(exc)
            return
        if not isinstance(nxt, Event):
            raise SimulationError(f"process {self.name!r} yielded non-event {nxt!r}")
        if nxt.env is not self.env:
            raise SimulationError("yielded event belongs to a different Environment")
        self._target = nxt
        nxt.add_callback(self._resume)

    def _finish(self, value: Any) -> None:
        if self.owner is not None:
            self.owner.detach(self)
        self.succeed(value)

    # -- external control ---------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator (urgent priority)."""
        if not self.is_alive:
            return
        ev = Event(self.env)

        def _deliver(evt: Event) -> None:
            if not self.is_alive:
                evt._defused = True
                return
            if self._target is not None:
                self._target.remove_callback(self._resume)
                self._detach_from_target()
            self._resume(evt)

        ev.add_callback(_deliver)
        ev.fail(Interrupt(cause), priority=URGENT)

    def kill(self) -> None:
        """Terminate immediately; the process event triggers with KILLED."""
        if not self.is_alive:
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._detach_from_target()
            self._target = None
        self._generator.close()
        if self.owner is not None:
            self.owner.detach(self)
        self.succeed(KILLED)

    def _detach_from_target(self) -> None:
        """Withdraw from a cancellable target (e.g. a queued Store get/put)."""
        target = self._target
        cancel = getattr(target, "cancel", None)
        if cancel is not None and not target.triggered:
            cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} {state}>"
