"""Named, reproducible random streams.

Every stochastic element of an experiment (client arrivals, trace
popularity, fault arrival sampling, per-node service jitter) draws from
its own named stream, so adding a new random consumer never perturbs the
draws seen by existing ones.  Stream seeds are derived from the master
seed and the stream name with a stable cryptographic hash — Python's
builtin ``hash`` is salted per interpreter and must not be used here.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed for stream ``name`` under ``master_seed``."""
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        digest_size=8,
        key=int(master_seed).to_bytes(16, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError("master seed must be non-negative")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self.stream(name).exponential(mean))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
