"""Time-series recording for throughput timelines and event markers.

Phase 1 of the paper's methodology measures "the system's behavior during
the fault" as a throughput-vs-time curve annotated with fault lifecycle
events (injected, detected, repaired, reset).  :class:`ThroughputSeries`
collects completion timestamps; :class:`MarkerLog` collects the annotations
that the 7-stage template fitter (:mod:`repro.core.template`) keys on.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

import numpy as np


class ThroughputSeries:
    """Append-only log of event timestamps (e.g. successful responses)."""

    __slots__ = ("name", "_times")

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []

    def record(self, time: float) -> None:
        if self._times and time < self._times[-1]:
            # Out-of-order recording would corrupt the bisect-based queries.
            raise ValueError(f"non-monotonic record: {time} after {self._times[-1]}")
        self._times.append(time)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    def count(self, t0: float, t1: float) -> int:
        """Number of events with t0 <= t < t1."""
        if t1 < t0:
            raise ValueError("t1 < t0")
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_left(self._times, t1)
        return hi - lo

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average events/second over [t0, t1); 0 for an empty window."""
        if t1 <= t0:
            return 0.0
        return self.count(t0, t1) / (t1 - t0)

    def bucketize(
        self, bin_width: float, start: Optional[float] = None, end: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (bin_left_edges, rates) over [start, end) with fixed bins."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if start is None:
            start = self._times[0] if self._times else 0.0
        if end is None:
            end = self._times[-1] + bin_width if self._times else start + bin_width
        if end <= start:
            raise ValueError("empty bucketize window")
        nbins = int(np.ceil((end - start) / bin_width))
        edges = start + bin_width * np.arange(nbins + 1)
        counts, _ = np.histogram(self.times, bins=edges)
        return edges[:-1], counts / bin_width


class MarkerLog:
    """Timestamped labels annotating an experiment timeline."""

    def __init__(self) -> None:
        self._entries: List[Tuple[float, str, Any]] = []

    def mark(self, time: float, label: str, data: Any = None) -> None:
        self._entries.append((float(time), label, data))

    @property
    def entries(self) -> List[Tuple[float, str, Any]]:
        return list(self._entries)

    def all(self, label: str) -> List[Tuple[float, Any]]:
        return [(t, d) for (t, lbl, d) in self._entries if lbl == label]

    def first(self, label: str) -> Optional[float]:
        """Earliest time of ``label``, or None if never marked."""
        hits = self.all(label)
        return min(t for t, _ in hits) if hits else None

    def last(self, label: str) -> Optional[float]:
        hits = self.all(label)
        return max(t for t, _ in hits) if hits else None

    def labels(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _, lbl, _ in self._entries:
            out[lbl] = out.get(lbl, 0) + 1
        return out
