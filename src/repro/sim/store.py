"""Bounded blocking FIFO stores.

The store is the paper's central fault-propagation primitive: PRESS's
per-peer send queues and per-disk request queues are bounded, and a
producer whose queue is full *blocks*.  When one node stops draining its
queue (disk fault, freeze, hang), every cooperating peer eventually blocks
on a full send queue to it — which is exactly how a single-component fault
stalls the whole cluster (Figure 4 of the paper).

``put``/``get`` return events; both are cancellable while still queued so
that get-with-timeout and process-kill work without leaking slots.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.kernel import Environment, Event, SimulationError


class StoreFullError(SimulationError):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class StorePut(Event):
    """Pending put; triggers (value=None) when the item is accepted."""

    __slots__ = ("item", "_store")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        self._store = store

    def cancel(self) -> None:
        """Withdraw the put if it has not been accepted yet."""
        if not self.triggered:
            try:
                self._store._put_waiters.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    """Pending get; triggers with the item as value."""

    __slots__ = ("_store")

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self._store = store

    def cancel(self) -> None:
        """Withdraw the get if it has not been satisfied yet."""
        if not self.triggered:
            try:
                self._store._get_waiters.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO queue of Python objects with optional capacity bound."""

    __slots__ = ("env", "capacity", "name", "items", "_put_waiters",
                 "_get_waiters")

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        # deques, not lists: _reconcile pops from the head on every
        # admitted put/get, and a list.pop(0) is O(n) in queued waiters
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    # -- introspection ----------------------------------------------------
    @property
    def level(self) -> int:
        """Number of stored items (excludes queued putters)."""
        return len(self.items)

    @property
    def backlog(self) -> int:
        """Stored items plus blocked putters — the 'queue length' a
        monitoring threshold should see, since a blocked producer's item is
        logically destined for this queue."""
        return len(self.items) + len(self._put_waiters)

    @property
    def full(self) -> bool:
        return len(self.items) >= self.capacity

    def peek(self) -> Any:
        if not self.items:
            raise SimulationError(f"peek on empty store {self.name!r}")
        return self.items[0]

    # -- operations ---------------------------------------------------------
    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._put_waiters.append(ev)
        self._reconcile()
        return ev

    def put_nowait(self, item: Any) -> None:
        """Insert immediately; raise :class:`StoreFullError` if at capacity
        or if earlier putters are still queued (FIFO fairness)."""
        if self._put_waiters or self.full:
            raise StoreFullError(f"store {self.name!r} full (capacity={self.capacity})")
        self.items.append(item)
        self._reconcile()

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False instead of raising when full."""
        try:
            self.put_nowait(item)
        except StoreFullError:
            return False
        return True

    def get(self) -> StoreGet:
        ev = StoreGet(self)
        self._get_waiters.append(ev)
        self._reconcile()
        return ev

    def get_nowait(self) -> Any:
        """Remove and return the head item; raise if empty."""
        if not self.items:
            raise SimulationError(f"get_nowait on empty store {self.name!r}")
        item = self.items.popleft()
        self._reconcile()
        return item

    def release_putters(self) -> int:
        """Unblock every queued putter, *dropping* their items.

        Used when a queue is torn down (peer excluded): producers blocked
        on the dead queue must resume, and the undelivered messages are
        lost — exactly TCP-send semantics on a reset connection.
        Returns the number of putters released.
        """
        waiters, self._put_waiters = self._put_waiters, deque()
        for put in waiters:
            put.succeed()
        return len(waiters)

    def force_put(self, item: Any, front: bool = False) -> None:
        """Insert ignoring the capacity bound (e.g. control sentinels that
        must reach the reader even when the buffer is full)."""
        if front:
            self.items.appendleft(item)
        else:
            self.items.append(item)
        self._reconcile()

    def clear(self) -> list:
        """Drop all stored items (crash/state-loss); returns what was dropped.

        Queued putters and getters are left queued: their owning processes
        are expected to be killed/cancelled by the same fault.
        """
        dropped = list(self.items)
        self.items.clear()
        self._reconcile()
        return dropped

    # -- matching -------------------------------------------------------------
    def _reconcile(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit queued putters while there is room.
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy queued getters while there are items.
            while self._get_waiters and self.items:
                get = self._get_waiters.popleft()
                get.succeed(self.items.popleft())
                progress = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Store {self.name!r} level={self.level}/{self.capacity} "
            f"+{len(self._put_waiters)}p/{len(self._get_waiters)}g>"
        )
