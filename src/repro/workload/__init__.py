"""Workload generation and request accounting.

Stands in for the paper's four client machines replaying the Rutgers
trace: an open-loop Poisson arrival process over a Zipf-popularity file
set with every file the same size (the paper normalized sizes to 27 KB to
keep fault-free throughput stable, a precondition of the methodology).
Requests time out after 2 s if a connection cannot be established and 6 s
if an established request is not answered — both from Section 5.
"""

from repro.workload.trace import TraceConfig, SyntheticTrace
from repro.workload.stats import RequestStats, Outcome
from repro.workload.client import (
    Request,
    ClientPool,
    ClientConfig,
    DnsRouter,
    Router,
)

__all__ = [
    "TraceConfig",
    "SyntheticTrace",
    "RequestStats",
    "Outcome",
    "Request",
    "ClientPool",
    "ClientConfig",
    "DnsRouter",
    "Router",
]
