"""Open-loop Poisson clients with the paper's timeout discipline.

Clients generate an aggregate Poisson request stream at a configured
rate, route each request (round-robin DNS or through a front-end), and
enforce Section 5's timeouts: 2 s to establish a connection, 6 s for an
established request to complete.

A *backend* is anything exposing::

    backend.host        -- the Host it runs on (pingable check = SYN-ACK)
    backend.listening   -- bool: the process has a listen socket (RST if not)
    backend.try_accept(request) -> bool   -- enqueue; False = backlog full

Both PRESS server variants and the test doubles in the suite satisfy it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.conditions import AnyOf
from repro.sim.kernel import Environment, Event
from repro.workload.stats import Outcome, RequestStats
from repro.workload.trace import SyntheticTrace


@dataclass(frozen=True, slots=True)
class ClientConfig:
    """Aggregate client behaviour (the paper's 4 client machines)."""

    request_rate: float = 200.0  # aggregate requests/second (Poisson)
    connect_timeout: float = 2.0  # Section 5
    request_timeout: float = 6.0  # Section 5
    network_rtt: float = 0.5e-3  # client <-> server round trip
    #: warm-up ramp: load grows linearly from ramp_start*rate to rate over
    #: this many seconds (the paper warms PRESS to peak over 5 minutes)
    ramp_time: float = 0.0
    ramp_start: float = 0.15

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if self.ramp_time < 0 or not 0.0 < self.ramp_start <= 1.0:
            raise ValueError("invalid ramp parameters")

    def rate_at(self, t: float) -> float:
        """Offered rate at time ``t`` given the warm-up ramp."""
        if self.ramp_time <= 0 or t >= self.ramp_time:
            return self.request_rate
        frac = self.ramp_start + (1.0 - self.ramp_start) * (t / self.ramp_time)
        return self.request_rate * frac


class Request:
    """One HTTP request for one file."""

    __slots__ = ("fid", "created", "response", "expired", "size",
                 "req_id", "ctx")

    def __init__(self, env: Environment, fid: int, size: int):
        self.fid = fid
        self.size = size
        self.created = env.now
        self.response = Event(env)
        self.expired = False  # set when the client gave up
        # Deterministic monotone id assigned by the issuing ClientPool
        # (0 = never pooled, e.g. a test double), and the trace context:
        # the root Span when this request was head-sampled, else None.
        self.req_id = 0
        self.ctx = None

    def respond(self) -> None:
        """Server-side completion; harmless after client timeout."""
        if not self.response.triggered:
            self.response.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request fid={self.fid} t={self.created:.3f}>"


class Router:
    """Chooses a backend for each request; None = connection impossible."""

    __slots__ = ()


    def pick(self, request: Request):  # pragma: no cover - abstract
        raise NotImplementedError


class DnsRouter(Router):
    """Round-robin DNS: rotates over the configured node list, oblivious
    to failures — exactly why the INDEP and COOP versions lose the
    requests routed to a dead node."""

    def __init__(self, backends: Sequence):
        if not backends:
            raise ValueError("DnsRouter needs at least one backend")
        self.backends = list(backends)
        self._next = 0

    def pick(self, request: Request):
        backend = self.backends[self._next % len(self.backends)]
        self._next += 1
        return backend


class ClientPool:
    """The aggregate open-loop client population."""

    __slots__ = ("env", "trace", "router", "stats", "config", "rng",
                 "_started", "_tracer", "_trace_ok", "_spans", "_next_req_id",
                 "_c_issued", "_c_ok", "_h_latency", "_h_latency_expired",
                 "_c_fail")

    def __init__(
        self,
        env: Environment,
        trace: SyntheticTrace,
        router: Router,
        stats: RequestStats,
        config: ClientConfig,
        rng: np.random.Generator,
        telemetry: Optional[Telemetry] = None,
    ):
        self.env = env
        self.trace = trace
        self.router = router
        self.stats = stats
        self.config = config
        self.rng = rng
        self._started = False
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tracer = tm.tracer
        self._trace_ok = tm.trace_requests
        self._spans = tm.spans
        self._next_req_id = 0
        m = tm.metrics
        self._c_issued = m.counter("client_requests_issued")
        self._c_ok = m.counter("client_requests_ok")
        self._h_latency = m.histogram("client_request_latency")
        # Censored samples: give-up latency of requests the client
        # abandoned.  A separate labelled series, so success percentiles
        # stay comparable while fault-window tails avoid survivorship bias.
        self._h_latency_expired = m.histogram("client_request_latency",
                                              outcome="expired")
        self._c_fail = {
            outcome: m.counter("client_requests_failed", outcome=outcome.value)
            for outcome in Outcome if outcome is not Outcome.SUCCESS
        }

    def start(self) -> None:
        """Begin generating requests (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._arrivals(), name="client-arrivals")

    # -- generation ------------------------------------------------------------
    def _arrivals(self):
        while True:
            mean_gap = 1.0 / self.config.rate_at(self.env.now)
            yield self.env.timeout(float(self.rng.exponential(mean_gap)))
            fid = self.trace.sample_file()
            req = Request(self.env, fid, self.trace.file_size(fid))
            self._next_req_id += 1
            req.req_id = self._next_req_id
            self.stats.record_issue(self.env.now)
            self._c_issued.inc()
            req.ctx = self._spans.root(req.req_id, "request", "clients",
                                       fid=fid)
            self.env.process(self._issue(req), name="client-req", ctx=req.ctx)

    # -- per-request lifecycle ----------------------------------------------------
    def _issue(self, req: Request):
        cfg = self.config
        spans = self._spans
        conn = spans.start("connect", "network", "clients", ctx=req.ctx)
        backend = self.router.pick(req)
        if backend is None:
            # No route (front-end dead): SYNs vanish, client gives up at 2 s.
            yield self.env.timeout(cfg.connect_timeout)
            spans.finish(conn, outcome="no_route")
            self._fail(req, Outcome.CONNECT_TIMEOUT)
            return
        yield self.env.timeout(cfg.network_rtt)  # SYN -> SYN-ACK attempt
        if not backend.host.pingable:
            yield self.env.timeout(cfg.connect_timeout)
            spans.finish(conn, outcome="syn_timeout")
            self._fail(req, Outcome.CONNECT_TIMEOUT)
            return
        if not backend.listening:
            spans.finish(conn, outcome="rst")
            self._fail(req, Outcome.REFUSED)  # RST comes back immediately
            return
        if not backend.try_accept(req):
            spans.finish(conn, outcome="backlog")
            self._fail(req, Outcome.REFUSED)  # listen backlog overflow
            return
        spans.finish(conn, outcome="established")
        wait = spans.start("await_reply", "wait", "clients", ctx=req.ctx)
        deadline = self.env.timeout(cfg.request_timeout)
        yield AnyOf(self.env, [req.response, deadline])
        if req.response.triggered:
            latency = self.env.now - req.created
            self.stats.record_success(self.env.now, latency)
            self._c_ok.inc()
            self._h_latency.observe(latency)
            spans.finish(wait, outcome="ok")
            spans.finish(req.ctx, outcome="ok")
            if self._trace_ok:
                # Opt-in: one event per served request is a lot of volume.
                self._tracer.emit(EventKind.REQUEST_OK, source="clients",
                                  fid=req.fid, latency=latency)
        else:
            req.expired = True
            spans.finish(wait, outcome="expired")
            self._fail(req, Outcome.REQUEST_TIMEOUT)

    def _fail(self, req: Request, outcome: Outcome) -> None:
        req.expired = True
        # The give-up latency is a censored sample of the request's true
        # latency; recording it keeps fault-window p99s honest.
        latency = self.env.now - req.created
        self.stats.record_failure(self.env.now, outcome, latency=latency)
        self._c_fail[outcome].inc()
        self._h_latency_expired.observe(latency)
        self._spans.finish(req.ctx, outcome=outcome.value)
        self._tracer.emit(EventKind.REQUEST_FAILED, source="clients",
                          fid=req.fid, outcome=outcome.value)
