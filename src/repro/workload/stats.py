"""Request accounting.

Availability in the paper is "the percentage of requests served
successfully"; throughput is successful requests per second.  The stats
object therefore records, with timestamps, every issue and every success,
plus categorized failures.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from repro.sim.series import ThroughputSeries


class LatencyReservoir:
    """Fixed-size uniform reservoir of response latencies.

    Keeps percentile queries O(k) in memory regardless of run length
    (Vitter's algorithm R); deterministic given a seed.
    """

    __slots__ = ("capacity", "_samples", "_seen", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: list = []
        self._seen = 0
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._samples[j] = value

    def percentile(self, q: float) -> float:
        """q in [0, 100]; 0.0 when no samples were recorded."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def seen(self) -> int:
        return self._seen


class Outcome(str, enum.Enum):
    SUCCESS = "success"
    CONNECT_TIMEOUT = "connect_timeout"  # 2 s, no connection established
    REQUEST_TIMEOUT = "request_timeout"  # 6 s, connected but unanswered
    REFUSED = "refused"  # RST / backlog overflow


class RequestStats:
    """Counters + time series for one experiment run."""

    __slots__ = ("issued", "outcomes", "series", "issued_series",
                 "latency_sum", "latencies", "censored_latencies")

    def __init__(self) -> None:
        self.issued = 0
        self.outcomes: Dict[Outcome, int] = {o: 0 for o in Outcome}
        self.series = ThroughputSeries("success")  # successful completions
        self.issued_series = ThroughputSeries("issued")
        self.latency_sum = 0.0
        self.latencies = LatencyReservoir()
        # Censored samples: the give-up latency of failed requests (time
        # until the client abandoned them).  Kept in a separate reservoir
        # so the success percentiles stay comparable with earlier runs,
        # while tail queries during faults can avoid survivorship bias.
        self.censored_latencies = LatencyReservoir(seed=1)

    # -- recording ----------------------------------------------------------
    def record_issue(self, time: float) -> None:
        self.issued += 1
        self.issued_series.record(time)

    def record_success(self, time: float, latency: float) -> None:
        self.outcomes[Outcome.SUCCESS] += 1
        self.latency_sum += latency
        self.latencies.add(latency)
        self.series.record(time)

    def record_failure(self, time: float, outcome: Outcome,
                       latency: Optional[float] = None) -> None:
        """Count a failed request; ``latency`` (when known) is the
        censored give-up latency — time from issue to abandonment."""
        if outcome is Outcome.SUCCESS:
            raise ValueError("use record_success for successes")
        self.outcomes[outcome] += 1
        if latency is not None:
            self.censored_latencies.add(latency)

    # -- summary -------------------------------------------------------------
    @property
    def succeeded(self) -> int:
        return self.outcomes[Outcome.SUCCESS]

    @property
    def failed(self) -> int:
        return sum(n for o, n in self.outcomes.items() if o is not Outcome.SUCCESS)

    @property
    def completed(self) -> int:
        return self.succeeded + self.failed

    def availability(self) -> float:
        """Fraction of completed requests that succeeded."""
        done = self.completed
        return self.succeeded / done if done else 1.0

    def mean_latency(self) -> float:
        return self.latency_sum / self.succeeded if self.succeeded else 0.0

    def latency_percentile(self, q: float) -> float:
        """Approximate latency percentile from the success reservoir."""
        return self.latencies.percentile(q)

    def censored_latency_percentile(self, q: float) -> float:
        """Give-up latency percentile of failed (expired) requests."""
        return self.censored_latencies.percentile(q)

    def window(self, t0: float, t1: float) -> Dict[str, float]:
        """Issue/success counts and rates within [t0, t1)."""
        issued = self.issued_series.count(t0, t1)
        ok = self.series.count(t0, t1)
        dt = max(t1 - t0, 1e-12)
        return {
            "issued": issued,
            "succeeded": ok,
            "issue_rate": issued / dt,
            "success_rate": ok / dt,
            "availability": ok / issued if issued else 1.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RequestStats issued={self.issued} ok={self.succeeded} "
            f"fail={self.failed} avail={self.availability():.4f}>"
        )
