"""Synthetic Web trace with Zipf-distributed file popularity.

Substitution note (see DESIGN.md): the paper replays a trace collected at
Rutgers, modified so that (1) all files have the same size (stable
throughput decouples measurements from fault injection time) and (2) the
average size is 27 KB so that misses still occur with 5 server nodes.
What the methodology actually depends on is the *shape*: a working set
larger than one node's cache but comparable to the global cache.  A
Zipf(alpha) popularity law over ``n_files`` equal-size files reproduces
that shape and is the standard model for Web-server file popularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceConfig:
    """Shape of the synthetic trace."""

    n_files: int = 3000
    file_size: int = 27_000  # bytes; paper Section 5
    zipf_alpha: float = 0.9

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ValueError("n_files must be >= 1")
        if self.file_size <= 0:
            raise ValueError("file_size must be positive")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative")


class SyntheticTrace:
    """Samples file ids 0..n-1 with Zipf(alpha) popularity.

    File id equals popularity rank (id 0 is the hottest file); servers
    treat ids as opaque names, so the identification is harmless and makes
    tests easy to reason about.
    """

    __slots__ = ("config", "rng", "_pmf", "_cdf")

    def __init__(self, config: TraceConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        ranks = np.arange(1, config.n_files + 1, dtype=float)
        weights = ranks ** (-config.zipf_alpha)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._cdf[-1] = 1.0  # guard against fp drift

    @property
    def n_files(self) -> int:
        return self.config.n_files

    def file_size(self, fid: int) -> int:
        if not 0 <= fid < self.config.n_files:
            raise IndexError(f"file id {fid} out of range")
        return self.config.file_size

    def sample_file(self) -> int:
        """Draw one file id."""
        u = self.rng.random()
        return int(np.searchsorted(self._cdf, u, side="right"))

    def sample_files(self, n: int) -> np.ndarray:
        """Vectorized draw of ``n`` file ids."""
        u = self.rng.random(n)
        return np.searchsorted(self._cdf, u, side="right")

    def hit_fraction(self, top_k: int) -> float:
        """Probability mass of the ``top_k`` hottest files.

        The expected steady-state hit rate of an LRU cache holding k files
        is well approximated by this for Zipf workloads; used for
        calibration and sanity tests.
        """
        if top_k <= 0:
            return 0.0
        return float(self._pmf[: min(top_k, self.config.n_files)].sum())
