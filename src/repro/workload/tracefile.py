"""File-backed request traces (log replay).

The paper replays a trace collected at Rutgers.  We cannot ship that
trace, but the workload layer supports the same *shape* of input: a
request log replayed in order (with its inter-arrival structure either
preserved or re-timed to a Poisson process at a target rate).

``synthesize_trace_file`` writes a log in the supported format so the
substitution is explicit and reproducible: anyone with a real server log
can convert it to this format and replay it through the same machinery.

Format: one request per line, ``<file-id> <size-bytes>``, ``#`` comments
allowed.  (Timestamps are deliberately not part of the format — the
methodology requires a stable offered rate, so arrivals are re-timed.)
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.workload.trace import SyntheticTrace, TraceConfig


class TraceFile:
    """A replayable request log with the SyntheticTrace interface."""

    def __init__(self, fids: Sequence[int], sizes: Sequence[int]):
        if len(fids) == 0:
            raise ValueError("empty trace")
        if len(fids) != len(sizes):
            raise ValueError("fids and sizes must align")
        self._fids = np.asarray(fids, dtype=np.int64)
        self._sizes = np.asarray(sizes, dtype=np.int64)
        if self._fids.min() < 0:
            raise ValueError("negative file id in trace")
        self.n_files = int(self._fids.max()) + 1
        self._file_sizes = np.zeros(self.n_files, dtype=np.int64)
        self._file_sizes[self._fids] = self._sizes  # last write wins
        self._cursor = 0

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceFile":
        fids: List[int] = []
        sizes: List[int] = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise ValueError(f"{path}:{lineno}: expected '<fid> <size>'")
                fids.append(int(parts[0]))
                sizes.append(int(parts[1]))
        return cls(fids, sizes)

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("# repro request trace: <file-id> <size-bytes>\n")
            for fid, size in zip(self._fids, self._sizes):
                fh.write(f"{fid} {size}\n")

    # -- SyntheticTrace interface ------------------------------------------------
    def sample_file(self) -> int:
        """Replay in order, wrapping around at the end."""
        fid = int(self._fids[self._cursor])
        self._cursor = (self._cursor + 1) % len(self._fids)
        return fid

    def file_size(self, fid: int) -> int:
        if not 0 <= fid < self.n_files:
            raise IndexError(f"file id {fid} out of range")
        return int(self._file_sizes[fid])

    def hit_fraction(self, top_k: int) -> float:
        """Request mass of the ``top_k`` most popular files in the log."""
        if top_k <= 0:
            return 0.0
        counts = np.bincount(self._fids, minlength=self.n_files)
        top = np.sort(counts)[::-1][:top_k]
        return float(top.sum() / len(self._fids))

    def __len__(self) -> int:
        return len(self._fids)

    def reset(self) -> None:
        self._cursor = 0


def normalize_sizes(trace: TraceFile, size: int = 27_000) -> TraceFile:
    """The paper's trace modification: make every file the same size so
    fault-free throughput is stable (Section 5)."""
    return TraceFile(trace._fids, np.full(len(trace._fids), size))


def synthesize_trace_file(
    path: Union[str, Path],
    n_requests: int = 50_000,
    config: TraceConfig = TraceConfig(),
    seed: int = 0,
) -> TraceFile:
    """Generate a Zipf request log on disk (the documented substitution
    for the Rutgers trace) and return it loaded."""
    rng = np.random.default_rng(seed)
    synthetic = SyntheticTrace(config, rng)
    fids = synthetic.sample_files(n_requests)
    sizes = np.full(n_requests, config.file_size)
    trace = TraceFile(fids, sizes)
    trace.save(path)
    return trace
