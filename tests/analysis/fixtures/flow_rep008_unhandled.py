"""REP008: a kind is sent but no receiver branch matches it."""


class Message:
    def __init__(self, kind, payload=None):
        self.kind = kind
        self.payload = payload


class Receiver:
    def handle(self, msg):
        if msg.kind == "ping":
            return "pong"
        return None


def send_ok():
    return Message("ping")


def send_orphan():
    return Message("orphan")  # BAD REP008


def send_orphan_kw():
    return Message(kind="orphan")  # BAD REP008
