"""REP009: a handler branch matches a kind nothing constructs."""


class Message:
    def __init__(self, kind):
        self.kind = kind


def send():
    return Message("ping")


class Receiver:
    def handle(self, msg):
        if msg.kind == "ping":
            return 1
        if msg.kind == "ghost":  # BAD REP009
            return 2
        return 0
