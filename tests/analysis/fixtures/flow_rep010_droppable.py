"""REP010: a droppable kind with no dispatch branch is always dropped."""


class Message:
    def __init__(self, kind):
        self.kind = kind


def send_bulk():
    return Message("bulk")


class Server:  # BAD REP010
    _DROPPABLE = frozenset({"bulk", "stat"})

    def dispatch(self, msg):
        kind = msg.kind
        if kind in self._DROPPABLE and self.overloaded():
            return None
        if kind == "bulk":
            return self.apply(msg)
        # "stat" has no branch: it is *always* dropped
        return None

    def overloaded(self):
        return False

    def apply(self, msg):
        return msg
