"""REP011: generator called as a bare statement never runs its body."""


def proto_step():
    yield 1
    yield 2


def broken_driver():
    proto_step()  # BAD REP011
    return True


def good_driver():
    yield from proto_step()


def good_loop():
    total = 0
    for item in proto_step():
        total += item
    return total


def good_argument(env):
    env.process(proto_step())
