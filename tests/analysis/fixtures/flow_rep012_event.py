"""REP012: an Event never referenced again can never fire."""


class Event:
    def __init__(self, env):
        self.env = env

    def succeed(self):
        return self


def orphan(env):
    evt = Event(env)  # BAD REP012
    return None


def discarded(env):
    Event(env)  # BAD REP012


def used(env):
    evt = Event(env)
    evt.succeed()
    return evt


def returned(env):
    evt = Event(env)
    return evt
