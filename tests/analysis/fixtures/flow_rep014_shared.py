"""REP014: two process generators write the same attribute, unordered."""


class Shared:
    def __init__(self, env):
        self.env = env
        self.count = 0
        self.own = 0
        self.watch = 0.0

    def start(self):
        self.env.process(self._bumper())
        self.env.process(self._resetter())
        self.env.process(self._loner())

    def _bumper(self):
        yield self.env.timeout(1.0)
        self.count = self.count + 1  # BAD REP014

    def _resetter(self):
        yield self.env.timeout(1.0)
        self.count = 0

    def _loner(self):
        # single writer: no ordering to get wrong, no finding
        yield self.env.timeout(1.0)
        self.own = 1

    def _helper(self):
        # writes in synchronous helpers are atomic between yields and
        # never counted as a second generator writer
        self.watch = self.env.now


class Suppressed:
    def __init__(self, env):
        self.env = env
        self.flag = 0

    def start(self):
        self.env.process(self._a())
        self.env.process(self._b())

    def _a(self):
        yield self.env.timeout(1.0)
        self.flag = 1  # reprolint: disable=REP014 -- idempotent writers

    def _b(self):
        yield self.env.timeout(1.0)
        self.flag = 1
