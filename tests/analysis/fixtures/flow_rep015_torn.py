"""REP015: read-modify-write of shared state torn across a yield."""


class Counter:
    def __init__(self, env):
        self.env = env
        self.value = 0
        self.private = 0

    def start(self):
        self.env.process(self._torn())
        self.env.process(self._other())
        self.env.process(self._atomic())
        self.env.process(self._unshared())

    def _torn(self):
        v = self.value
        yield self.env.timeout(0.5)
        self.value = v + 1  # BAD REP015

    def _other(self):
        yield self.env.timeout(0.5)
        self.value = 2

    def _atomic(self):
        # whole read-modify-write between yields: fine
        yield self.env.timeout(0.5)
        self.value = self.value + 1

    def _unshared(self):
        # no other generator touches .private: torn shape, but no race
        p = self.private
        yield self.env.timeout(0.5)
        self.private = p + 1
