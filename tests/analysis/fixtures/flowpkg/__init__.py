"""Mini package exercising the call-graph builder (imports, methods,
constructor assignment, cycles)."""
