"""Upper layer: imports transport, typed attribute calls, nested defs."""

from flowpkg.transport import Queue, ping


class Server:
    def __init__(self, inbox: Queue):
        self.inbox = inbox
        self.spare = Queue()

    def enqueue(self, item):
        self.inbox.put(item)

    def flush(self):
        self.spare.drain()

    def boot(self):
        def warmup():
            return ping(3)

        warmup()
        self.enqueue("hello")


def build():
    q = Queue()
    server = Server(q)
    server.boot()
    return server
