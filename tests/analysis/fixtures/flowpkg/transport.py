"""Lower layer: a queue class and mutually recursive helpers (a cycle)."""


class Queue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)

    def drain(self):
        while self.items:
            self.items.pop()


def ping(n):
    if n > 0:
        return pong(n - 1)
    return 0


def pong(n):
    return ping(n)
