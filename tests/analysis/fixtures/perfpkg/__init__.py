"""Mini package exercising the perf pass (hot set, REP017-REP021)."""
