"""Mini event loop: every function here seeds the hot set by path."""


class MiniEnv:
    __slots__ = ("queue",)

    def __init__(self):
        self.queue = []

    def process(self, gen, name=""):
        self.queue.append(gen)
        return gen

    def run(self):
        while self.queue:
            gen = self.queue.pop(0)
            gen.send(None)
