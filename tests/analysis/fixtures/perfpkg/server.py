"""Hot handlers reached via dynamic dispatch and spawn roots, plus one
deliberate specimen of each perf rule (REP017-REP021)."""

from dataclasses import dataclass

from perfpkg.kernel import MiniEnv


@dataclass(frozen=True, slots=True)
class Config:
    """Slots via the decorator: REP018 must stay quiet."""

    limit: int = 3

    def cap(self):
        return self.limit


class Log:
    __slots__ = ("enabled", "lines")

    def __init__(self):
        self.enabled = False
        self.lines = []

    def emit(self, text):
        if self.enabled:
            self.lines.append(text)


class Msg:
    __slots__ = ("kind",)

    def __init__(self, kind):
        self.kind = kind


class Server:
    """Hot methods but no __slots__: REP018 fires here."""

    def __init__(self, env: MiniEnv):
        self.env = env
        self.cfg = Config()
        self.log = Log()
        self.pending = []

    def dispatch(self, msg: Msg):
        handler = getattr(self, f"_on_{msg.kind}")
        return handler(msg)

    def _on_hit(self, msg):
        return self.cfg.cap()

    def _on_miss(self, msg):
        return msg

    def main_loop(self):
        while True:
            batch = list(self.pending)
            self.log.emit(f"tick {len(batch)}")
            if self.log.enabled:
                self.log.emit(f"debug {len(batch)}")
            if len(self.env.queue) > 0 and self.env.queue is not None:
                batch.append(self.env.queue)
            for msg in sorted(batch):
                if msg in self.pending:
                    continue
                self.dispatch(msg)
            yield batch


def cold_helper():
    """Unreachable from the kernel and from every spawn root."""
    return 42


class ColdReport:
    """No hot methods: REP018 must stay quiet despite no __slots__."""

    def render(self):
        return cold_helper()


def build():
    env = MiniEnv()
    srv = Server(env)
    env.process(srv.main_loop(), name="main")
    return srv
