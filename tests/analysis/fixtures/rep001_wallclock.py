"""REP001 fixture: wall-clock calls in simulated code."""

import time
from datetime import datetime
from time import monotonic as mono


def bad_time():
    return time.time()  # BAD REP001


def bad_datetime():
    return datetime.now()  # BAD REP001


def bad_from_import():
    return mono()  # BAD REP001


def good_sim_clock(env):
    return env.now  # GOOD: simulated clock


def good_local_shadow():
    class Clock:
        def time(self):
            return 0.0

    clock = Clock()
    return clock.time()  # GOOD: local object, not the time module
