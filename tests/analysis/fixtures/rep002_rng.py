"""REP002 fixture: RNGs that bypass the named-stream registry."""

import random

import numpy as np
from numpy import random as npr


def bad_global_random():
    return random.random()  # BAD REP002


def bad_random_choice(items):
    return random.choice(items)  # BAD REP002


def bad_adhoc_default_rng():
    return np.random.default_rng(42)  # BAD REP002


def bad_aliased_numpy_random():
    return npr.default_rng(7)  # BAD REP002


def good_registry_stream(rngs):
    return rngs.stream("arrivals").exponential(1.0)  # GOOD: named stream


def good_local_name():
    class Jar:
        def random(self):
            return 4

    rnd = Jar()
    return rnd.random()  # GOOD: not the random module
