"""REP003 fixture: swallowed exceptions in fault handlers."""


def bad_bare(queue):
    try:
        queue.drain()
    except:  # BAD REP003 (noqa-style comments intentionally absent)
        pass


def bad_broad_discard(node):
    try:
        node.exclude()
    except Exception:  # BAD REP003
        return None


def bad_bound_but_unused(node):
    try:
        node.exclude()
    except Exception as exc:  # BAD REP003: exc never used
        return None


def good_narrow(mapping, key):
    try:
        return mapping[key]
    except KeyError:  # GOOD: narrow
        return None


def good_broad_reraise(node):
    try:
        node.exclude()
    except Exception:  # GOOD: re-raised
        node.mark_failed()
        raise


def good_broad_used(node, log):
    try:
        node.exclude()
    except Exception as exc:  # GOOD: exception is recorded
        log.append(exc)
