"""REP004 fixture: trace payloads that hash differently across runs."""


def bad_set_payload(tracer, members):
    tracer.emit("memb_view", members=set(members))  # BAD REP004


def bad_set_literal(tracer, a, b):
    tracer.emit("memb_view", members={a, b})  # BAD REP004


def bad_identity(tracer, obj):
    tracer.emit("server_start", node=id(obj))  # BAD REP004


def bad_marker_set(markers, now, dropped: set):
    markers.mark(now, "memb_excluded", dropped)  # BAD REP004


def good_sorted_payload(tracer, members):
    tracer.emit("memb_view", members=sorted(members))  # GOOD


def good_literals(tracer):
    tracer.emit("server_start", node_id=3, name="n3")  # GOOD
