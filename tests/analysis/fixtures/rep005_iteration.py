"""REP005 fixture: unordered iteration in effectful loops."""

from typing import Set


class Daemon:
    def __init__(self):
        self.view: Set[int] = {1}
        self.loads = {}

    def bad_send_loop(self, mnet):
        for member in self.view - {0}:  # BAD REP005
            mnet.send(self, member, "prepare")

    def bad_setcall_loop(self, peers, net):
        for peer in set(peers):  # BAD REP005
            net.datagram(self, peer, "hb")

    def bad_mutating_loop(self, dropped: Set[int]):
        for nid in dropped:  # BAD REP005
            self.loads.pop(nid, None)

    def bad_keys_loop(self, queue):
        for name in self.loads.keys():  # BAD REP005
            queue.put(name)

    def bad_popped_set(self, table, node_id, out):
        for fid in table.pop(node_id, set()):  # BAD REP005
            out.remove(fid)

    def bad_tiebreak(self, holders: Set[int]):
        return min(holders, key=lambda h: self.loads.get(h, 0))  # BAD REP005

    def bad_materialize(self, holders: Set[int]):
        return [h for h in holders if h != 0]  # BAD REP005 (warning)

    def good_sorted_loop(self, mnet):
        for member in sorted(self.view - {0}):  # GOOD
            mnet.send(self, member, "prepare")

    def good_pure_read(self, holders: Set[int]):
        total = 0
        for h in holders:  # GOOD: order-insensitive reduction over ints
            total += 1
        return total

    def good_list_iteration(self, members):
        ordered = sorted(members)
        for m in ordered:  # GOOD: sorted first
            self.loads[m] = 0
