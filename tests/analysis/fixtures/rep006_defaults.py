"""REP006 fixture: mutable default arguments."""


def bad_list_default(items=[]):  # BAD REP006
    items.append(1)
    return items


def bad_dict_default(table={}):  # BAD REP006
    return table


def bad_ctor_default(seen=set()):  # BAD REP006
    return seen


def bad_kwonly_default(*, acc=[]):  # BAD REP006
    return acc


def good_none_default(items=None):
    if items is None:
        items = []
    return items


def good_immutable_defaults(count=0, name="x", pair=(1, 2)):
    return count, name, pair
