"""REP007 fixture: suspicious scheduler delays."""


def bad_negative_timeout(env):
    return env.timeout(-1.0)  # BAD REP007 (error)


def bad_negative_schedule(env, event):
    env.schedule(event, delay=-0.5)  # BAD REP007 (error)


def bad_zero_timeout(env):
    return env.timeout(0)  # BAD REP007 (warning)


def bad_zero_succeed(event):
    event.succeed(delay=0.0)  # BAD REP007 (warning)


def good_positive(env):
    return env.timeout(0.25)  # GOOD


def good_variable(env, delay):
    return env.timeout(delay)  # GOOD: not a literal
