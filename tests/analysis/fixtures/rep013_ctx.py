"""REP013 fixture: trace-context loss in span-aware code.

A function is span-aware when it takes a ``ctx`` parameter or binds the
result of a span-opening call; inside one, every Message construction
and env.process spawn must pass ctx= (ctx=None is an explicit opt-out).
"""


def bad_ctx_param(env, req, ctx):
    msg = Message("fwd_req", 1, 2, {"fid": req.fid})  # BAD REP013
    env.process(serve(req))  # BAD REP013
    return msg


def bad_span_opener(env, spans, req):
    span = spans.start("peer_fetch", "network", "n1", ctx=req.ctx)
    msg = Message("fwd_req", 1, 2, size=64)  # BAD REP013
    spans.finish(span)
    return msg


def bad_self_recorder(self, req):
    fetch = self._spans.start("disk", "disk", "n1", ctx=req.ctx)
    self.env.process(self._disk_loop())  # BAD REP013
    return fetch


def good_threads_ctx(env, req, ctx):
    msg = Message("fwd_req", 1, 2, {"fid": req.fid}, ctx=ctx)  # GOOD
    env.process(serve(req), ctx=ctx)  # GOOD
    return msg


def good_explicit_none(env, req, ctx):
    return Message("tick", 1, 1, ctx=None)  # GOOD: explicitly untraced


def good_splat(env, req, ctx, kw):
    return Message("fwd_req", 1, 2, **kw)  # GOOD: splat may carry ctx


def good_not_span_scope(env, req):
    msg = Message("cache_sync", 1, 2, {"fids": []})  # GOOD: no spans here
    env.process(serve(req))  # GOOD: not span-aware
    return msg


def good_bare_event(env, spans, req):
    # Annotating a caller-owned span does not make this function
    # responsible for context propagation.
    spans.event(req.ctx, "route", "route", "fe")
    return Message("tick", 1, 1)  # GOOD: bare event() isn't span scope


def good_nested_scope(env, spans, req):
    span = spans.start("serve", "service", "n1", ctx=req.ctx)

    def _later():
        return Message("tick", 1, 1)  # GOOD: nested fn assessed on its own

    spans.finish(span)
    return _later


def good_non_env_process(ctx, pool, item):
    return pool.process(item)  # GOOD: not an env spawn
