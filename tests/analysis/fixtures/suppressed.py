"""Suppression fixture: every violation here carries a disable comment."""

import time


def suppressed_wallclock():
    return time.time()  # reprolint: disable=REP001


def suppressed_multi(items=[]):  # reprolint: disable=REP006,REP001
    return items


def suppressed_all(table={}):  # reprolint: disable=all
    return table


def unsuppressed(seen=set()):  # a finding must still be reported here
    return seen
