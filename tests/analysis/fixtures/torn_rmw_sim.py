"""A deliberately torn read-modify-write, detectable by both tiers.

``_alpha`` runs ``ROUNDS`` iterations of *read the shared counter,
yield for zero time, write back the stale local plus one*; ``_beta``
increments the counter freshly each round.  Everything happens at t=0,
so the interleaving is decided purely by the kernel's same-instant
tie-break — and every one of ``_beta``'s increments that lands inside
``_alpha``'s read/yield/write window is silently overwritten by the
stale value.  How many survive, and therefore the final count, depends
on the tie-break order alone.

The static tier flags the pattern as REP015 (and the two writers as
REP014); the schedule-perturbation sanitizer sees the final count
diverge and attributes the divergence to the same ``TornCounter.count``
attribute with both process stacks.
"""

ROUNDS = 8


class TornCounter:
    def __init__(self, env):
        self.env = env
        self.count = 0

    def start(self):
        self.env.process(self._alpha())
        self.env.process(self._beta())

    def _alpha(self):
        for _ in range(ROUNDS):
            v = self.count
            yield self.env.timeout(0.0)
            self.count = v + 1

    def _beta(self):
        for _ in range(ROUNDS):
            yield self.env.timeout(0.0)
            self.count = self.count + 1
