"""The call-graph builder: module naming, indexing, edge resolution over
the ``flowpkg`` fixture package, and cycle-safe reachability."""

from pathlib import Path

import pytest

from repro.analysis.callgraph import build_callgraph, module_name_for

FLOWPKG = Path(__file__).parent / "fixtures" / "flowpkg"


@pytest.fixture(scope="module")
def graph():
    return build_callgraph([str(FLOWPKG)])


class TestIndexing:
    def test_module_naming(self):
        root = FLOWPKG
        assert module_name_for(str(FLOWPKG / "server.py"), root) == \
            "flowpkg.server"
        assert module_name_for(str(FLOWPKG / "__init__.py"), root) == \
            "flowpkg"

    def test_modules_indexed(self, graph):
        assert set(graph.modules) == {
            "flowpkg", "flowpkg.server", "flowpkg.transport"}

    def test_functions_indexed(self, graph):
        quals = set(graph.functions)
        assert "flowpkg.transport.Queue.put" in quals
        assert "flowpkg.transport.ping" in quals
        assert "flowpkg.server.Server.boot" in quals
        # nested functions get a <locals> segment
        assert "flowpkg.server.Server.boot.<locals>.warmup" in quals

    def test_classes_indexed(self, graph):
        assert "flowpkg.transport.Queue" in graph.classes
        cls = graph.classes["flowpkg.transport.Queue"]
        assert set(cls.methods) == {"__init__", "put", "drain"}

    def test_attr_types_inferred(self, graph):
        server = graph.classes["flowpkg.server.Server"]
        # annotated param assigned to self.inbox; ctor assigned to spare
        assert server.attr_types["inbox"] == "flowpkg.transport.Queue"
        assert server.attr_types["spare"] == "flowpkg.transport.Queue"


class TestEdges:
    def test_import_resolved_call(self, graph):
        # warmup() calls ping, imported from flowpkg.transport
        callees = graph.callees("flowpkg.server.Server.boot.<locals>.warmup")
        assert "flowpkg.transport.ping" in callees

    def test_typed_attribute_call(self, graph):
        assert "flowpkg.transport.Queue.put" in \
            graph.callees("flowpkg.server.Server.enqueue")
        assert "flowpkg.transport.Queue.drain" in \
            graph.callees("flowpkg.server.Server.flush")

    def test_self_method_and_nested_call(self, graph):
        callees = graph.callees("flowpkg.server.Server.boot")
        assert "flowpkg.server.Server.enqueue" in callees
        assert "flowpkg.server.Server.boot.<locals>.warmup" in callees

    def test_constructor_edge(self, graph):
        callees = graph.callees("flowpkg.server.build")
        assert "flowpkg.transport.Queue.__init__" in callees
        assert "flowpkg.server.Server.__init__" in callees
        assert "flowpkg.server.Server.boot" in callees

    def test_cycle_edges(self, graph):
        assert "flowpkg.transport.pong" in \
            graph.callees("flowpkg.transport.ping")
        assert "flowpkg.transport.ping" in \
            graph.callees("flowpkg.transport.pong")


class TestReachability:
    def test_cycle_safe_bfs(self, graph):
        reach = graph.reachable_from(["flowpkg.transport.ping"])
        assert reach == {"flowpkg.transport.ping", "flowpkg.transport.pong"}

    def test_transitive_closure(self, graph):
        reach = graph.reachable_from(["flowpkg.server.build"])
        assert "flowpkg.transport.ping" in reach  # build→boot→warmup→ping
        assert "flowpkg.transport.Queue.put" in reach

    def test_unknown_seed_ignored(self, graph):
        assert graph.reachable_from(["no.such.function"]) == set()


class TestExport:
    def test_json_covers_every_module(self, graph):
        doc = graph.to_json()
        assert set(doc["modules"]) == set(graph.modules)
        assert len(doc["functions"]) == len(graph.functions)
        edge_pairs = {(a, b) for a, b in doc["edges"]}
        assert ("flowpkg.transport.ping", "flowpkg.transport.pong") in \
            edge_pairs

    def test_json_flags_sim_scope(self, graph):
        doc = graph.to_json(
            sim_seeds={"flowpkg.server.build"},
            sim_reachable={"flowpkg.server.build", "flowpkg.transport.ping"},
        )
        by_name = {f["qualname"]: f for f in doc["functions"]}
        assert by_name["flowpkg.server.build"]["sim_seed"]
        assert by_name["flowpkg.transport.ping"]["sim_reachable"]
        assert not by_name["flowpkg.transport.pong"]["sim_reachable"]
