"""The docs cross-reference checker (`repro lint --docs`)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.doccheck import (
    DOCCHECK_SCHEMA,
    check_docs,
    format_doccheck,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _tree(tmp_path, readme, extra=None):
    (tmp_path / "docs").mkdir(exist_ok=True)
    (tmp_path / "README.md").write_text(readme, encoding="utf-8")
    (tmp_path / "Makefile").write_text(
        "lint:\n\techo ok\n\ntest:\n\techo ok\n", encoding="utf-8")
    for rel, content in (extra or {}).items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(content, encoding="utf-8")
    return tmp_path


class TestCleanCorpus:
    def test_valid_references_pass(self, tmp_path):
        root = _tree(tmp_path,
                     "Run `repro lint` or `make test`.\n"
                     "See `docs/GUIDE.md` and [guide](docs/GUIDE.md).\n",
                     extra={"docs/GUIDE.md": "# hi\n"})
        result = check_docs(root=str(root))
        assert result.ok, result.to_dict()
        assert result.docs_scanned == 2
        assert result.refs_checked >= 4

    def test_placeholders_globs_results_skipped(self, tmp_path):
        root = _tree(tmp_path,
                     "Write to `results/out.json`; pass `--only <name>`\n"
                     "or `docs/*.md`, `$HOME/x.py`.\n")
        assert check_docs(root=str(root)).ok

    def test_prose_words_not_mistaken_for_commands(self, tmp_path):
        root = _tree(tmp_path,
                     "The repro effort reproduces the paper; "
                     "`from repro import sim` works.\n")
        assert check_docs(root=str(root)).ok


class TestStaleReferences:
    def test_all_reference_kinds_detected(self, tmp_path):
        root = _tree(tmp_path,
                     "See `src/nope.py`, run `repro frobnicate`, then\n"
                     "`make bogus`. Rule REP999; BENCH_ghost.json;\n"
                     "and [link](missing.md).\n")
        result = check_docs(root=str(root))
        categories = {f.category for f in result.findings}
        assert categories == {"path", "cli", "make", "rule",
                              "bench", "link"}
        assert not result.ok

    def test_fenced_command_lines_scanned(self, tmp_path):
        root = _tree(tmp_path,
                     "```bash\npython -m repro frobnicate src/nope.py\n```\n")
        result = check_docs(root=str(root))
        categories = {f.category for f in result.findings}
        assert "cli" in categories and "path" in categories

    def test_findings_carry_location(self, tmp_path):
        root = _tree(tmp_path, "line one\n\nsee `src/nope.py`\n")
        (finding,) = check_docs(root=str(root)).findings
        assert finding.doc == "README.md"
        assert finding.line == 3
        assert finding.token == "src/nope.py"

    def test_report_round_trip_and_rendering(self, tmp_path):
        root = _tree(tmp_path, "see `src/nope.py`\n")
        result = check_docs(root=str(root))
        doc = result.to_dict()
        assert doc["schema"] == DOCCHECK_SCHEMA
        assert doc["ok"] is False
        assert doc["findings"][0]["token"] == "src/nope.py"
        text = format_doccheck(result)
        assert "FAILED" in text and "src/nope.py" in text


def test_real_repository_docs_are_clean():
    """The gate itself: this repo's documentation has no stale refs."""
    result = check_docs(root=str(REPO_ROOT))
    assert result.docs_scanned >= 10
    assert result.ok, format_doccheck(result)
