"""The whole-program flow pass: one fixture per rule REP008–REP012,
dynamic-dispatch handling, the propagation-superset regression, and the
real tree staying clean under ``--flow``."""

from pathlib import Path

import pytest

from repro.analysis.flow import analyze_flow
from repro.analysis.lint import path_is_sim_scope
from repro.analysis.rules import RULES, Severity

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def flow_findings(name: str, rule: str):
    result = analyze_flow([str(FIXTURES / name)])
    return [f for f in result.findings if f.rule == rule]


def expected_bad_lines(name: str, rule: str):
    out = []
    for lineno, line in enumerate(
            (FIXTURES / name).read_text().splitlines(), 1):
        if f"BAD {rule}" in line:
            out.append(lineno)
    return out


def check_fixture(name: str, rule: str):
    flagged = sorted(f.line for f in flow_findings(name, rule))
    assert flagged == expected_bad_lines(name, rule), \
        f"{name}: {rule} findings {flagged} != annotated BAD lines"


class TestProtocolRules:
    def test_rep008_sent_but_unhandled(self):
        check_fixture("flow_rep008_unhandled.py", "REP008")

    def test_rep008_is_an_error(self):
        findings = flow_findings("flow_rep008_unhandled.py", "REP008")
        assert findings and all(
            f.severity is Severity.ERROR for f in findings)

    def test_rep009_dead_handler(self):
        check_fixture("flow_rep009_dead.py", "REP009")

    def test_rep010_undispatched_droppable(self):
        check_fixture("flow_rep010_droppable.py", "REP010")

    def test_rep010_names_the_kind(self):
        (finding,) = flow_findings("flow_rep010_droppable.py", "REP010")
        assert "'stat'" in finding.message

    def test_handled_kind_produces_no_rep008(self):
        # "ping" is sent and handled in the REP008 fixture: never flagged
        findings = flow_findings("flow_rep008_unhandled.py", "REP008")
        assert all("'ping'" not in f.message for f in findings)


class TestGeneratorRules:
    def test_rep011_bare_generator(self):
        check_fixture("flow_rep011_generator.py", "REP011")

    def test_rep011_wrapped_calls_are_clean(self):
        # yield from / for / env.process(...) wrappers never flagged
        findings = flow_findings("flow_rep011_generator.py", "REP011")
        assert len(findings) == 1  # only the annotated bare call

    def test_rep012_orphan_event(self):
        check_fixture("flow_rep012_event.py", "REP012")


class TestDynamicDispatch:
    def test_getattr_dispatch_counts_as_handled(self, tmp_path):
        src = (
            "class Message:\n"
            "    def __init__(self, kind):\n"
            "        self.kind = kind\n"
            "\n"
            "def send():\n"
            "    return Message('probe')\n"
            "\n"
            "class Daemon:\n"
            "    def loop(self, msg):\n"
            "        handler = getattr(self, f'_on_{msg.kind}', None)\n"
            "        if handler is not None:\n"
            "            handler(msg)\n"
            "\n"
            "    def _on_probe(self, msg):\n"
            "        return msg\n"
        )
        mod = tmp_path / "dispatchmod.py"
        mod.write_text(src)
        result = analyze_flow([str(mod)])
        assert "probe" in result.handled
        assert not [f for f in result.findings if f.rule == "REP008"]
        # dispatch also adds call edges so propagation reaches handlers
        # (module names are rooted at the analyzed dir, so match by suffix)
        loop = next(q for q in result.graph.functions
                    if q.endswith("Daemon.loop"))
        assert any(c.endswith("Daemon._on_probe")
                   for c in result.graph.callees(loop))

    def test_suppression_respected(self, tmp_path):
        src = (
            "class Message:\n"
            "    def __init__(self, kind):\n"
            "        self.kind = kind\n"
            "\n"
            "def send():\n"
            "    return Message('lost')  # reprolint: disable=REP008\n"
        )
        mod = tmp_path / "suppressedmod.py"
        mod.write_text(src)
        result = analyze_flow([str(mod)])
        assert not result.findings
        assert result.suppressed == 1


class TestSimScopePropagation:
    @pytest.fixture(scope="class")
    def result(self):
        return analyze_flow([str(SRC)])

    def test_superset_of_path_heuristic(self, result):
        """The propagated sim scope contains every function the old
        path-suffix heuristic covered..."""
        path_scope = {
            qual for qual, fn in result.graph.functions.items()
            if path_is_sim_scope(fn.path)
        }
        assert path_scope == result.sim_seeds
        assert result.sim_reachable >= path_scope

    def test_strictly_more_than_path_heuristic(self, result):
        """...and strictly more: sim code calls into obs/ helpers the
        suffix heuristic never saw."""
        assert len(result.newly_covered) > 0
        assert result.sim_reachable > result.sim_seeds
        assert any(qual.startswith("repro.obs.")
                   for qual in result.newly_covered)

    def test_newly_covered_are_not_sim_paths(self, result):
        for qual in result.newly_covered:
            assert not path_is_sim_scope(result.graph.functions[qual].path)

    def test_real_tree_has_no_unsuppressed_errors(self, result):
        errors = [f for f in result.findings
                  if f.severity is Severity.ERROR]
        assert errors == [], [str(f) for f in errors]

    def test_callgraph_covers_every_module(self, result):
        src_modules = {p for p in SRC.rglob("*.py")
                       if "__pycache__" not in p.parts}
        assert len(result.graph.modules) == len(src_modules)

    def test_protocol_vocabulary_matches_registry(self, result):
        """Kinds observed on the PRESS/HA wire == the runtime registry."""
        from repro.net.message import WIRE_KINDS

        wire_dirs = ("/press/", "/ha/", "/net/")
        observed = set()
        for kind, sites in list(result.sent.items()) + \
                list(result.handled.items()):
            for site in sites:
                if any(d in site.path for d in wire_dirs):
                    observed.add(kind)
        assert observed == WIRE_KINDS


class TestRuleRegistry:
    def test_flow_rules_registered(self):
        for rid in ("REP008", "REP009", "REP010", "REP011", "REP012"):
            assert rid in RULES
            assert RULES[rid].flow

    def test_non_flow_rules_unchanged(self):
        for rid in ("REP001", "REP002", "REP003"):
            assert not RULES[rid].flow
