"""The ``repro lint`` CLI surface added by the flow pass: --flow,
--callgraph-out, and --diff (with the git call monkeypatched)."""

import json
from pathlib import Path

import pytest

import repro.cli as cli
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = str(Path(__file__).parent.parent.parent / "src" / "repro")


class TestFlowFlag:
    def test_flow_clean_tree_exits_zero(self, capsys):
        assert main(["lint", SRC, "--flow"]) == 0
        out = capsys.readouterr().out
        assert "flow:" in out
        assert "sim-reachable" in out

    def test_flow_json_includes_flow_section(self, capsys):
        assert main(["lint", SRC, "--flow", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"]
        flow = doc["flow"]
        assert flow["sim_reachable"] >= flow["sim_seeds"] > 0
        assert flow["newly_covered"]
        assert set(flow["protocol"]) == {
            "sent_kinds", "handled_kinds", "droppable", "dynamic_sends"}

    def test_flow_error_fails_gate(self, capsys):
        fixture = str(FIXTURES / "flow_rep008_unhandled.py")
        assert main(["lint", fixture, "--flow"]) == 1
        assert "REP008" in capsys.readouterr().out

    def test_without_flow_flag_flow_rules_silent(self, capsys):
        fixture = str(FIXTURES / "flow_rep008_unhandled.py")
        assert main(["lint", fixture]) == 0
        assert "REP008" not in capsys.readouterr().out


class TestCallgraphOut:
    def test_writes_graph_and_implies_flow(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        assert main(["lint", SRC, "--callgraph-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == 1
        # every module under src/repro appears
        expected = {p for p in Path(SRC).rglob("*.py")
                    if "__pycache__" not in p.parts}
        assert len(doc["modules"]) == len(expected)
        assert any(f["sim_reachable"] and not f["sim_seed"]
                   for f in doc["functions"])
        assert "flow:" in capsys.readouterr().out


class TestDiffMode:
    def test_diff_restricts_reported_findings(self, monkeypatch, capsys):
        bad = str(FIXTURES / "flow_rep008_unhandled.py")
        clean = str(FIXTURES / "flowpkg" / "transport.py")
        # only the clean file "changed": the REP008 in the other file
        # must not be reported
        monkeypatch.setattr(cli, "_git_changed_files", lambda ref: [clean])
        assert main(["lint", bad, clean, "--flow", "--diff", "HEAD"]) == 0
        assert "REP008" not in capsys.readouterr().out

    def test_diff_keeps_findings_in_changed_files(self, monkeypatch, capsys):
        bad = str(FIXTURES / "flow_rep008_unhandled.py")
        monkeypatch.setattr(cli, "_git_changed_files", lambda ref: [bad])
        assert main(["lint", bad, "--flow", "--diff", "HEAD"]) == 1
        assert "REP008" in capsys.readouterr().out

    def test_diff_ignores_changes_outside_targets(self, monkeypatch, capsys):
        clean = str(FIXTURES / "flowpkg" / "transport.py")
        monkeypatch.setattr(
            cli, "_git_changed_files",
            lambda ref: [clean, "somewhere/else/module.py"])
        assert main(["lint", clean, "--diff", "HEAD"]) == 0

    def test_diff_failure_is_a_clean_exit(self, monkeypatch):
        def boom(ref):
            raise SystemExit("error: git diff no-such-ref failed")
        monkeypatch.setattr(cli, "_git_changed_files", boom)
        with pytest.raises(SystemExit, match="git diff"):
            main(["lint", SRC, "--diff", "no-such-ref"])
