"""Per-rule coverage for reprolint: every fixture's BAD lines are found,
no GOOD line is flagged, suppressions and allowlists hold."""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    path_is_sim_scope,
)
from repro.analysis.rules import RULES, Severity

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_findings(name: str):
    return lint_file(str(FIXTURES / name), is_sim=True).findings


def expected_bad_lines(name: str, rule: str):
    """Lines marked ``# BAD <rule>`` in the fixture source."""
    out = []
    for lineno, line in enumerate(
            (FIXTURES / name).read_text().splitlines(), 1):
        if f"BAD {rule}" in line:
            out.append(lineno)
    return out


def check_fixture(name: str, rule: str):
    findings = fixture_findings(name)
    flagged = sorted(f.line for f in findings if f.rule == rule)
    assert flagged == expected_bad_lines(name, rule), \
        f"{name}: {rule} findings {flagged} != annotated BAD lines"
    # No rule fires on a line without a BAD annotation (GOOD snippets stay
    # clean, and no *other* rule fires either).
    source_lines = (FIXTURES / name).read_text().splitlines()
    for f in findings:
        assert "BAD" in source_lines[f.line - 1], \
            f"{name}:{f.line} unexpected finding {f.rule}: {f.message}"


class TestRules:
    def test_rep001_wallclock(self):
        check_fixture("rep001_wallclock.py", "REP001")

    def test_rep002_rng(self):
        check_fixture("rep002_rng.py", "REP002")

    def test_rep003_swallowed_exception(self):
        check_fixture("rep003_except.py", "REP003")

    def test_rep004_trace_payload(self):
        check_fixture("rep004_payload.py", "REP004")

    def test_rep005_unordered_iteration(self):
        check_fixture("rep005_iteration.py", "REP005")

    def test_rep005_severities(self):
        findings = [f for f in fixture_findings("rep005_iteration.py")
                    if f.rule == "REP005"]
        by_kind = {f.severity for f in findings}
        # effectful loops are errors; materialization/tie-break are warnings
        assert Severity.ERROR in by_kind and Severity.WARNING in by_kind

    def test_rep006_mutable_defaults(self):
        check_fixture("rep006_defaults.py", "REP006")

    def test_rep007_delays(self):
        check_fixture("rep007_delay.py", "REP007")

    def test_rep013_trace_context_loss(self):
        check_fixture("rep013_ctx.py", "REP013")

    def test_rep013_only_in_sim_scope(self):
        src = ("def f(env, ctx):\n"
               "    return Message('x', 1, 2)\n")
        assert lint_source(src, "src/repro/analysis/report.py").findings == []
        assert [f.rule for f in
                lint_source(src, "src/repro/press/server.py").findings] == \
            ["REP013"]

    def test_rep007_negative_is_error_zero_is_warning(self):
        findings = [f for f in fixture_findings("rep007_delay.py")
                    if f.rule == "REP007"]
        negatives = [f for f in findings if "negative" in f.message]
        zeros = [f for f in findings if "zero" in f.message]
        assert all(f.severity is Severity.ERROR for f in negatives)
        assert all(f.severity is Severity.WARNING for f in zeros)
        assert negatives and zeros


class TestSuppression:
    def test_disable_comment_suppresses(self):
        result = lint_file(str(FIXTURES / "suppressed.py"), is_sim=True)
        # only the deliberately unsuppressed REP006 remains
        assert [f.rule for f in result.findings] == ["REP006"]
        assert result.suppressed == 3

    def test_disable_is_rule_specific(self):
        src = "def f(xs=[]):  # reprolint: disable=REP001\n    return xs\n"
        result = lint_source(src, "x.py")
        assert [f.rule for f in result.findings] == ["REP006"]


class TestScopeAndAllowlist:
    def test_sim_only_rules_skip_analysis_code(self):
        src = "import time\n\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, "src/repro/analysis/lint.py").findings == []
        assert [f.rule for f in
                lint_source(src, "src/repro/press/cache.py").findings] == \
            ["REP001"]

    def test_rng_factory_is_allowlisted(self):
        src = ("import numpy as np\n\n\n"
               "def stream(seed):\n    return np.random.default_rng(seed)\n")
        assert lint_source(src, "src/repro/sim/rng.py").findings == []
        flagged = lint_source(src, "src/repro/sim/kernel.py").findings
        assert [f.rule for f in flagged] == ["REP002"]

    def test_workload_seed_plumbing_allowlisted(self):
        for sfx in RULES["REP002"].allowlist:
            assert path_is_sim_scope(f"src/repro/{sfx}") or sfx == "sim/rng.py"

    def test_parallel_executor_allowlisted_for_wallclock(self):
        # the executor's perf_counter reads time real worker processes
        # (speedup accounting), reachable from sim scope only through
        # Sweep.run(jobs=N); the allowlist keeps flow-propagated REP001
        # findings from flagging them
        for sfx in ("parallel/executor.py", "parallel/worker.py"):
            assert sfx in RULES["REP001"].allowlist
        src = "import time\n\n\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, "src/repro/parallel/executor.py").findings == []

    def test_path_classification(self):
        assert path_is_sim_scope("src/repro/press/server.py")
        assert path_is_sim_scope("src/repro/ha/membership.py")
        assert not path_is_sim_scope("src/repro/analysis/lint.py")
        assert not path_is_sim_scope("src/repro/core/model.py")
        assert not path_is_sim_scope("src/repro/cli.py")


class TestEngine:
    def test_scoped_set_names_do_not_leak_across_functions(self):
        src = (
            "def a(view):\n"
            "    members = set(view)\n"
            "    for m in members:\n"
            "        view.send(m)\n"
            "\n"
            "def b(payload, links):\n"
            "    members = [m for m in payload]\n"
            "    for m in members:\n"
            "        links.send(m)\n"
        )
        result = lint_source(src, "src/repro/ha/x.py")
        assert [f.line for f in result.findings] == [3]

    def test_self_attr_set_tracking(self):
        src = (
            "from typing import Set\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.coop: Set[int] = {1}\n"
            "    def f(self, net):\n"
            "        for p in self.coop:\n"
            "            net.send(p)\n"
        )
        result = lint_source(src, "src/repro/press/x.py")
        assert [f.rule for f in result.findings] == ["REP005"]

    def test_lint_paths_walks_directories(self):
        result = lint_paths([str(FIXTURES)])
        assert result.files_scanned >= 8
        # fixtures outside forced-sim mode: sim_only rules drop out, but
        # repo-wide ones (REP003/4/6) still fire
        rules_seen = {f.rule for f in result.findings}
        assert "REP006" in rules_seen

    def test_repo_tree_is_clean(self):
        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        result = lint_paths([str(repo_src)])
        assert result.errors == [], "\n".join(map(str, result.errors))
        assert result.warnings == [], "\n".join(map(str, result.warnings))

    def test_finding_str_and_dict(self):
        f = Finding(rule="REP001", severity=Severity.ERROR, path="a.py",
                    line=3, col=4, message="m")
        assert "a.py:3:4" in str(f) and "REP001" in str(f)
        assert f.to_dict()["severity"] == "error"

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "x.py")
