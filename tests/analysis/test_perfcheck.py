"""The perf pass: hot-set reachability (kernel seeds, spawn roots,
dynamic dispatch), the REP017-REP021 detectors over the ``perfpkg``
fixture, suppression handling, and the ``--perf`` CLI surface."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.perfcheck import (
    analyze_perf,
    compute_hot_set,
    validate_against_profile,
)

PERFPKG = Path(__file__).parent / "fixtures" / "perfpkg"
REPO = Path(__file__).parent.parent.parent
SRC = str(REPO / "src" / "repro")


@pytest.fixture(scope="module")
def result():
    return analyze_perf([str(PERFPKG)])


class TestHotSet:
    def test_kernel_functions_seed_the_hot_set(self, result):
        assert "perfpkg.kernel.MiniEnv.run" in result.kernel_seeds
        assert "perfpkg.kernel.MiniEnv.run" in result.hot

    def test_env_process_argument_is_a_spawn_root(self, result):
        # srv.main_loop() appears only as the argument of env.process(...)
        # — no static call edge drives it, it must be seeded explicitly
        assert result.spawn_roots == {"perfpkg.server.Server.main_loop"}
        assert "perfpkg.server.Server.main_loop" in result.hot

    def test_dynamic_dispatch_handlers_are_hot(self, result):
        # reached only via getattr(self, f"_on_{msg.kind}")
        assert "perfpkg.server.Server._on_hit" in result.hot
        assert "perfpkg.server.Server._on_miss" in result.hot

    def test_callees_of_handlers_are_hot(self, result):
        # _on_hit -> self.cfg.cap() via constructor-assigned attr type
        assert "perfpkg.server.Config.cap" in result.hot

    def test_cold_code_stays_cold(self, result):
        assert "perfpkg.server.cold_helper" not in result.hot
        assert "perfpkg.server.ColdReport.render" not in result.hot
        # build() spawns the root but is itself unreachable from the kernel
        assert "perfpkg.server.build" not in result.hot

    def test_compute_hot_set_splits_seed_kinds(self, result):
        hot, kernel_seeds, spawn_roots = compute_hot_set(result.graph)
        assert kernel_seeds == result.kernel_seeds
        assert spawn_roots == result.spawn_roots
        assert hot == result.hot


class TestDetectors:
    def _rules_at(self, result, fname):
        return {(f.rule, f.line) for f in result.findings
                if f.path.endswith(fname)}

    def test_rep017_allocation_in_hot_loop(self, result):
        assert any(f.rule == "REP017" and "list()" in f.message
                   for f in result.findings)

    def test_rep018_hot_class_without_slots(self, result):
        flagged = {f.message.split("class ")[1].split(" ")[0]
                   for f in result.findings if f.rule == "REP018"}
        assert flagged == {"Server"}

    def test_rep018_respects_dataclass_slots_true(self, result):
        # Config is @dataclass(slots=True); Msg/Log declare __slots__
        for f in result.findings:
            if f.rule == "REP018":
                assert "Config" not in f.message
                assert "Msg" not in f.message
                assert "Log" not in f.message

    def test_rep018_ignores_cold_classes(self, result):
        for f in result.findings:
            if f.rule == "REP018":
                assert "ColdReport" not in f.message

    def test_rep019_unguarded_fstring_emit(self, result):
        hits = [f for f in result.findings if f.rule == "REP019"]
        assert len(hits) == 1  # the guarded emit two lines below is free
        assert "f-string" in hits[0].message

    def test_rep020_repeated_chain(self, result):
        hits = [f for f in result.findings if f.rule == "REP020"]
        assert len(hits) == 1
        assert "self.env.queue" in hits[0].message
        assert "3x" in hits[0].message

    def test_rep021_pop0_in_kernel_loop(self, result):
        assert any(f.rule == "REP021" and ".pop(0)" in f.message
                   and f.path.endswith("kernel.py")
                   for f in result.findings)

    def test_rep021_sorted_in_nested_for_iter(self, result):
        # sorted(batch) sits in a nested for's iterable: it still runs
        # once per outer iteration and must be caught
        assert any(f.rule == "REP021" and "sorted()" in f.message
                   for f in result.findings)

    def test_rep021_list_membership(self, result):
        assert any(f.rule == "REP021" and "self.pending" in f.message
                   for f in result.findings)

    def test_all_findings_are_perf_rules(self, result):
        from repro.analysis.rules import RULES

        assert result.findings  # the fixture plants one of each
        assert all(RULES[f.rule].perf for f in result.findings)


class TestSuppression:
    def test_per_line_suppression_drops_finding(self, tmp_path):
        pkg = tmp_path / "suppkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "kernel.py").write_text(
            "class Env:\n"
            "    __slots__ = ('q',)\n\n"
            "    def __init__(self):\n"
            "        self.q = []\n\n"
            "    def run(self):\n"
            "        while self.q:\n"
            "            self.q.pop(0)  "
            "# reprolint: disable=REP021 -- bounded by test size\n")
        res = analyze_perf([str(pkg)])
        assert all(f.rule != "REP021" for f in res.findings)
        assert res.suppressed == 1
        assert res.used_suppressions  # feeds the REP016 audit


class TestRepoIsClean:
    def test_src_repro_has_no_unsuppressed_perf_findings(self):
        res = analyze_perf([SRC])
        assert res.findings == [], [str(f) for f in res.findings]

    def test_src_repro_hot_set_covers_core_subsystems(self):
        res = analyze_perf([SRC])
        by_sub = res.hot_by_subsystem()
        for sub in ("kernel", "press", "net", "workload", "hardware"):
            assert by_sub.get(sub, 0) > 0, (sub, by_sub)


class TestValidation:
    @pytest.mark.slow
    def test_validate_meets_recall_bar(self):
        res = analyze_perf([SRC])
        doc = validate_against_profile(res, scenario="steady")
        assert doc is res.validation
        assert doc["recall"] >= 0.8
        assert 0.0 <= doc["precision"] <= 1.0
        assert doc["total_seconds"] > 0


class TestPerfCli:
    def _lint(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True, text=True, cwd=REPO,
        )

    def test_perf_flag_reports_hot_set(self):
        proc = self._lint(SRC, "--perf")
        assert proc.returncode == 0, proc.stdout
        assert "hot function(s)" in proc.stdout
        assert "kernel seed(s)" in proc.stdout

    def test_perf_json_document(self):
        proc = self._lint(SRC, "--perf", "--format", "json")
        doc = json.loads(proc.stdout)
        assert doc["schema"] == 4
        perf = doc["perf"]
        assert perf["hot_functions"] > 0
        assert perf["kernel_seeds"] > 0
        assert perf["spawn_roots"]
        assert perf["hot_by_subsystem"].get("kernel", 0) > 0

    def test_without_perf_flag_no_perf_section(self):
        proc = self._lint(SRC, "--format", "json")
        doc = json.loads(proc.stdout)
        assert "perf" not in doc

    def test_perf_findings_gate_exit_code(self, tmp_path):
        pkg = tmp_path / "hotpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "kernel.py").write_text(
            "class Env:\n"
            "    __slots__ = ('q',)\n\n"
            "    def __init__(self):\n"
            "        self.q = []\n\n"
            "    def run(self):\n"
            "        while self.q:\n"
            "            self.q.pop(0)\n")
        proc = self._lint(str(pkg), "--perf")
        assert proc.returncode == 1  # REP021 is an error
        assert "REP021" in proc.stdout

    def test_list_rules_shows_perf_scope(self):
        proc = self._lint("--list-rules")
        assert "kernel hot set, --perf only" in proc.stdout
        for rid in ("REP017", "REP018", "REP019", "REP020", "REP021"):
            assert rid in proc.stdout
