"""The race detector, both tiers: REP014/REP015 static effect analysis,
the schedule-perturbation sanitizer, and the runtime-to-static
attribution that joins them."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.callgraph import build_callgraph
from repro.analysis.flow import analyze_flow
from repro.analysis.racecheck import (
    RunCapture,
    ScheduleRecorder,
    _values_close,
    analyze_races,
    compare_captures,
    find_divergence,
    schedule_digest,
)
from repro.analysis.rules import Severity
from repro.sim.kernel import Environment

FIXTURES = Path(__file__).parent / "fixtures"
TORN_SIM = FIXTURES / "torn_rmw_sim.py"


def flow_findings(name, rule):
    result = analyze_flow([str(FIXTURES / name)])
    return [f for f in result.findings if f.rule == rule]


def expected_bad_lines(name, rule):
    out = []
    for lineno, line in enumerate(
            (FIXTURES / name).read_text().splitlines(), 1):
        if f"BAD {rule}" in line:
            out.append(lineno)
    return out


class TestRep014:
    def test_fixture_lines(self):
        flagged = sorted(f.line for f in
                         flow_findings("flow_rep014_shared.py", "REP014"))
        assert flagged == expected_bad_lines("flow_rep014_shared.py",
                                             "REP014")

    def test_is_a_warning_naming_both_writers(self):
        (finding,) = flow_findings("flow_rep014_shared.py", "REP014")
        assert finding.severity is Severity.WARNING
        assert "_bumper" in finding.message and "_resetter" in finding.message
        assert "Shared.count" in finding.message

    def test_single_writer_not_flagged(self):
        findings = flow_findings("flow_rep014_shared.py", "REP014")
        assert all("Shared.own" not in f.message for f in findings)

    def test_sync_helper_not_a_writer(self):
        # _helper writes Shared.watch but is not a process generator
        findings = flow_findings("flow_rep014_shared.py", "REP014")
        assert all("Shared.watch" not in f.message for f in findings)

    def test_suppression_honoured(self):
        result = analyze_flow([str(FIXTURES / "flow_rep014_shared.py")])
        assert all("Suppressed.flag" not in f.message
                   for f in result.findings)
        assert result.suppressed >= 1


class TestRep015:
    def test_fixture_lines(self):
        flagged = sorted(f.line for f in
                         flow_findings("flow_rep015_torn.py", "REP015"))
        assert flagged == expected_bad_lines("flow_rep015_torn.py", "REP015")

    def test_is_an_error_naming_the_torn_window(self):
        (finding,) = flow_findings("flow_rep015_torn.py", "REP015")
        assert finding.severity is Severity.ERROR
        assert "Counter.value" in finding.message
        assert "'v'" in finding.message  # the stale local, by name

    def test_atomic_rmw_not_flagged(self):
        # _atomic does the whole read-modify-write between yields
        flagged = {f.line for f in
                   flow_findings("flow_rep015_torn.py", "REP015")}
        src = (FIXTURES / "flow_rep015_torn.py").read_text().splitlines()
        atomic_write = next(i for i, l in enumerate(src, 1)
                            if "self.value = self.value + 1" in l)
        assert atomic_write not in flagged

    def test_unshared_rmw_not_flagged(self):
        # .private has one toucher: torn shape, but nothing to race with
        findings = flow_findings("flow_rep015_torn.py", "REP015")
        assert all("private" not in f.message for f in findings)


class TestEffectAnalysis:
    def test_torn_fixture_summary(self):
        analysis = analyze_races(build_callgraph([str(TORN_SIM)]))
        doc = analysis.to_dict()
        assert doc["roots"] >= 2  # _alpha and _beta
        assert doc["rep014"] == 1 and doc["rep015"] == 1
        (label,) = doc["shared_writes"]
        assert label.endswith("TornCounter.count")

    def test_real_tree_races_are_justified(self):
        # every REP014/REP015 in src/repro is fixed or carries an
        # in-repo justification (suppression comment at the site)
        result = analyze_flow(["src/repro"])
        races = [f for f in result.findings
                 if f.rule in ("REP014", "REP015")]
        assert races == []


def _load_torn_module():
    spec = importlib.util.spec_from_file_location("torn_rmw_sim",
                                                  str(TORN_SIM))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _run_torn(tiebreak_seed):
    mod = _load_torn_module()
    rec = ScheduleRecorder()
    env = Environment(tiebreak_seed=tiebreak_seed, monitor=rec)
    rec.bind(env)
    counter = mod.TornCounter(env)
    counter.start()
    env.run()
    return RunCapture(tiebreak_seed=tiebreak_seed,
                      schedule=rec.schedule(),
                      ordered_schedule=rec.ordered(),
                      proc_refs=rec.proc_refs(),
                      observables={"count": counter.count},
                      processed=env.processed_count)


class TestPerturbation:
    def test_fifo_baseline_is_deterministic(self):
        a, b = _run_torn(None), _run_torn(None)
        assert a.observables == b.observables
        assert a.schedule_digest == b.schedule_digest

    def test_same_tiebreak_seed_is_deterministic(self):
        a, b = _run_torn(7), _run_torn(7)
        assert a.observables == b.observables
        assert a.schedule_digest == b.schedule_digest

    @pytest.mark.parametrize("seed", [1, 2])
    def test_torn_rmw_diverges_under_perturbation(self, seed):
        base, perturbed = _run_torn(None), _run_torn(seed)
        assert base.observables != perturbed.observables

    @pytest.mark.parametrize("seed", [1, 2])
    def test_divergence_attributed_to_the_torn_attribute(self, seed):
        analysis = analyze_races(build_callgraph([str(TORN_SIM)]))
        cmp = compare_captures(_run_torn(None), _run_torn(seed), analysis)
        assert not cmp.ok and not cmp.observables_match
        assert cmp.divergence is not None
        # the dynamic tier blames the same attribute the static tier
        # flagged (REP015 on TornCounter.count), with both stacks
        (rep15,) = [f for f in analysis.findings if f.rule == "REP015"]
        assert "TornCounter.count" in rep15.message
        conflicts = [c for c in cmp.conflicts if c.key[1] == "count"]
        assert conflicts and conflicts[0].kind == "write-write"
        stacks = " ".join(conflicts[0].stack_a + conflicts[0].stack_b)
        assert "_alpha" in stacks and "_beta" in stacks

    def test_divergence_names_both_process_stacks(self):
        cmp = compare_captures(_run_torn(None), _run_torn(1))
        quals = {q for _, q, _ in cmp.divergence.procs}
        assert any(q.endswith("_alpha") for q in quals)
        assert any(q.endswith("_beta") for q in quals)


class TestCanonicalDigests:
    def test_schedule_digest_order_insensitive_within_timestamp(self):
        a = [(0.0, ("x", "y")), (1.0, ("z",))]
        assert schedule_digest(a) == schedule_digest(
            [(0.0, tuple(sorted(("y", "x")))), (1.0, ("z",))])
        assert schedule_digest(a) != schedule_digest(
            [(0.0, ("x",)), (1.0, ("y", "z"))])

    def test_find_divergence_sources(self):
        def cap(schedule, ordered=()):
            return RunCapture(tiebreak_seed=None, schedule=list(schedule),
                              ordered_schedule=list(ordered or schedule),
                              proc_refs=[frozenset()] * len(schedule),
                              observables={})

        a = cap([(0.0, ("x",)), (1.0, ("y",))])
        b = cap([(0.0, ("x",)), (1.0, ("z",))])
        div = find_divergence(a, b)
        assert div.source == "schedule" and div.time == 1.0
        assert div.only_a == ["y"] and div.only_b == ["z"]

        longer = cap([(0.0, ("x",)), (1.0, ("y",)), (2.0, ("y",))])
        assert find_divergence(a, longer).source == "length"

        # same canonical multiset, different same-instant order
        o1 = cap([(0.0, ("x", "y"))], ordered=[(0.0, ("x", "y"))])
        o2 = cap([(0.0, ("x", "y"))], ordered=[(0.0, ("y", "x"))])
        div = find_divergence(o1, o2)
        assert div.source == "order" and div.index == 0
        assert find_divergence(o1, o1) is None


class TestComparisonSemantics:
    def _caps(self, metrics_b, observables_b=None):
        a = RunCapture(tiebreak_seed=None, schedule=[], ordered_schedule=[],
                       proc_refs=[], observables={"n": 1},
                       metrics_digest="da", metrics={"sum": 1.0})
        b = RunCapture(tiebreak_seed=3, schedule=[], ordered_schedule=[],
                       proc_refs=[], observables=observables_b or {"n": 1},
                       metrics_digest="db", metrics=metrics_b)
        return a, b

    def test_float_drift_within_tolerance_is_ok(self):
        cmp = compare_captures(*self._caps({"sum": 1.0 + 1e-9}))
        assert cmp.metrics_close and not cmp.metrics_match
        assert cmp.ok and not cmp.exact

    def test_float_drift_beyond_tolerance_fails(self):
        cmp = compare_captures(*self._caps({"sum": 1.01}))
        assert not cmp.metrics_close and not cmp.ok

    def test_observable_divergence_fails(self):
        cmp = compare_captures(*self._caps({"sum": 1.0},
                                           observables_b={"n": 2}))
        assert not cmp.ok and not cmp.observables_match

    def test_values_close(self):
        assert _values_close({"a": [1, 2.0]}, {"a": [1, 2.0 + 1e-12]})
        assert not _values_close({"a": 1}, {"a": 2})
        assert not _values_close({"a": 1}, {"b": 1})
        assert not _values_close([1], [1, 2])
        assert not _values_close(True, 1.0)  # bools are not floats


class TestRacecheckCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "racecheck", *args],
            capture_output=True, text=True,
            cwd=Path(__file__).parent.parent.parent,
        )

    def test_static_only_fails_on_fixture_rep015(self, tmp_path):
        out = tmp_path / "deep" / "dir" / "race.json"
        proc = self._run("--no-dynamic", "--paths", str(TORN_SIM),
                         "--out", str(out), "--json")
        assert proc.returncode == 1, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["schema"] == 1 and not doc["ok"]
        assert not doc["static"]["ok"]
        rules = {f["rule"] for f in doc["static"]["findings"]}
        assert rules == {"REP014", "REP015"}
        # --out creates parent directories and writes the same report
        on_disk = json.loads(out.read_text())
        assert on_disk["static"]["findings"] == doc["static"]["findings"]

    def test_static_only_clean_tree_passes(self):
        proc = self._run("--no-dynamic", "--paths", "src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 unsuppressed finding(s)" in proc.stdout
